//! Deterministic fault injection for the real dataplane.
//!
//! A [`FaultPlan`] is installed into the client, server, or verbs layer
//! and consulted at named [`Hook`] points. Each hook owns a private
//! [`DetRng`] stream forked from the plan seed, so the *sequence of
//! decisions at a hook* depends only on the seed and how many times the
//! hook has fired — not on thread scheduling or on activity at other
//! hooks. Same seed, same per-hook fault sequence, every run.
//!
//! When no plan is installed the hooks are `Option::None` checks —
//! no locks, no rng draws, no overhead on the production path.

use jbs_des::DetRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Named interception points in the dataplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hook {
    /// Client dialing a supplier.
    ClientConnect,
    /// Client reading a fetch response.
    ClientReadResponse,
    /// Server accepting a connection.
    ServerAccept,
    /// Server about to write a fetch response.
    ServerWriteResponse,
    /// Verbs connection establishment.
    VerbsConnect,
    /// Verbs one-sided read.
    VerbsRead,
    /// Server admission decision for one request (busy storms: force
    /// typed `Busy` pushback even when capacity remains).
    ServerAdmission,
    /// Server payload about to ship, checksum already computed
    /// (payload corruption the frame structure cannot catch — only the
    /// end-to-end CRC32C can; also hosts the boundary-truncation
    /// clean-EOF lie).
    ServerPayload,
    /// Store spill-extent write to the local spill file (disk faults:
    /// short write, EIO) — consulted via the store's
    /// [`jbs_store_hybrid::DiskFaultInjector`] config hook.
    DiskSpillWrite,
    /// Store manifest-record append (disk faults: short write, EIO) —
    /// consulted via [`jbs_store_hybrid::DiskFaultInjector`].
    DiskManifestAppend,
}

impl Hook {
    const COUNT: usize = 10;

    /// All hooks, in index order.
    pub const ALL: [Hook; Hook::COUNT] = [
        Hook::ClientConnect,
        Hook::ClientReadResponse,
        Hook::ServerAccept,
        Hook::ServerWriteResponse,
        Hook::VerbsConnect,
        Hook::VerbsRead,
        Hook::ServerAdmission,
        Hook::ServerPayload,
        Hook::DiskSpillWrite,
        Hook::DiskManifestAppend,
    ];

    fn index(self) -> usize {
        match self {
            Hook::ClientConnect => 0,
            Hook::ClientReadResponse => 1,
            Hook::ServerAccept => 2,
            Hook::ServerWriteResponse => 3,
            Hook::VerbsConnect => 4,
            Hook::VerbsRead => 5,
            Hook::ServerAdmission => 6,
            Hook::ServerPayload => 7,
            Hook::DiskSpillWrite => 8,
            Hook::DiskManifestAppend => 9,
        }
    }
}

/// What a hook should do for one occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Proceed normally.
    Allow,
    /// Refuse / drop the connection before any exchange.
    RefuseConnect,
    /// Drop the connection mid-exchange (peer sees a reset/EOF).
    Reset,
    /// Send only a prefix of the frame, then drop the connection.
    Truncate,
    /// Flip bits in the frame header so it fails to decode.
    Corrupt,
    /// Pause for the given duration before proceeding (drives the
    /// peer's read deadline).
    Stall(Duration),
    /// Reply `Busy` pushback regardless of real capacity (busy storm).
    Busy,
    /// Flip one payload byte *after* the checksum was computed: the
    /// frame stays structurally valid and only end-to-end verification
    /// can catch it.
    CorruptPayload,
    /// Serve an empty payload as if the segment cleanly ended here —
    /// the boundary-truncation lie that v2 cannot distinguish from a
    /// real end-of-segment.
    CleanEof,
    /// Disk write lands only a prefix of the buffer (meaningful at the
    /// `Disk*` hooks, surfaced to the store as a short write).
    ShortWrite,
    /// Disk write fails outright with an I/O error (meaningful at the
    /// `Disk*` hooks).
    DiskError,
}

/// Fault kinds, for forcing a specific action at a specific occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// See [`FaultAction::RefuseConnect`].
    RefuseConnect,
    /// See [`FaultAction::Reset`].
    Reset,
    /// See [`FaultAction::Truncate`].
    Truncate,
    /// See [`FaultAction::Corrupt`].
    Corrupt,
    /// See [`FaultAction::Stall`].
    Stall,
    /// See [`FaultAction::Busy`].
    Busy,
    /// See [`FaultAction::CorruptPayload`].
    CorruptPayload,
    /// See [`FaultAction::CleanEof`].
    CleanEof,
    /// See [`FaultAction::ShortWrite`].
    ShortWrite,
    /// See [`FaultAction::DiskError`].
    DiskError,
}

/// Per-hook probabilities and forced occurrences.
#[derive(Debug, Clone, Default)]
struct HookRules {
    p_refuse: f64,
    p_reset: f64,
    p_truncate: f64,
    p_corrupt: f64,
    p_stall: f64,
    p_busy: f64,
    p_corrupt_payload: f64,
    p_clean_eof: f64,
    p_short_write: f64,
    p_disk_error: f64,
    stall: Duration,
    /// `(occurrence, kind)`: the `occurrence`-th firing (0-based) of
    /// this hook takes `kind` unconditionally.
    forced: Vec<(u64, FaultKind)>,
}

impl HookRules {
    fn action_for(&self, kind: FaultKind) -> FaultAction {
        match kind {
            FaultKind::RefuseConnect => FaultAction::RefuseConnect,
            FaultKind::Reset => FaultAction::Reset,
            FaultKind::Truncate => FaultAction::Truncate,
            FaultKind::Corrupt => FaultAction::Corrupt,
            FaultKind::Stall => FaultAction::Stall(self.stall),
            FaultKind::Busy => FaultAction::Busy,
            FaultKind::CorruptPayload => FaultAction::CorruptPayload,
            FaultKind::CleanEof => FaultAction::CleanEof,
            FaultKind::ShortWrite => FaultAction::ShortWrite,
            FaultKind::DiskError => FaultAction::DiskError,
        }
    }
}

/// Counters of faults actually injected, one per kind.
#[derive(Debug, Default)]
pub struct FaultStats {
    refusals: AtomicU64,
    resets: AtomicU64,
    truncations: AtomicU64,
    corruptions: AtomicU64,
    stalls: AtomicU64,
    busy_storms: AtomicU64,
    payload_corruptions: AtomicU64,
    clean_eof_lies: AtomicU64,
    short_writes: AtomicU64,
    disk_errors: AtomicU64,
}

/// A point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// Connections refused or dropped at accept.
    pub refusals: u64,
    /// Mid-exchange drops injected.
    pub resets: u64,
    /// Truncated frames injected.
    pub truncations: u64,
    /// Corrupted frames injected.
    pub corruptions: u64,
    /// Artificial stalls injected.
    pub stalls: u64,
    /// Forced `Busy` pushback replies injected.
    pub busy_storms: u64,
    /// Post-checksum payload corruptions injected.
    pub payload_corruptions: u64,
    /// Clean-EOF truncation lies injected.
    pub clean_eof_lies: u64,
    /// Disk short writes injected.
    pub short_writes: u64,
    /// Disk I/O errors injected.
    pub disk_errors: u64,
}

impl FaultStatsSnapshot {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.refusals
            + self.resets
            + self.truncations
            + self.corruptions
            + self.stalls
            + self.busy_storms
            + self.payload_corruptions
            + self.clean_eof_lies
            + self.short_writes
            + self.disk_errors
    }
}

/// Deterministic, seeded schedule of faults across all hooks.
///
/// Build with [`FaultPlan::builder`]; install by handing an
/// `Arc<FaultPlan>` to the client/server/verbs options.
pub struct FaultPlan {
    // One (rng, occurrence counter) pair per hook, forked from the plan
    // seed by hook index, so hooks are mutually decorrelated and each
    // hook's decision sequence is a pure function of (seed, occurrence).
    hooks: Vec<Mutex<(DetRng, u64)>>,
    rules: Vec<HookRules>,
    stats: FaultStats,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("rules", &self.rules)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl FaultPlan {
    /// Start building a plan from a seed.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            rules: vec![HookRules::default(); Hook::COUNT],
        }
    }

    /// Decide what the `hook`'s current occurrence should do, and count
    /// any injected fault in [`FaultPlan::stats`].
    pub fn decide(&self, hook: Hook) -> FaultAction {
        let idx = hook.index();
        let rules = &self.rules[idx];
        let action = {
            let mut guard = self.hooks[idx].lock().unwrap_or_else(|e| e.into_inner());
            let (rng, occurrence) = &mut *guard;
            let n = *occurrence;
            *occurrence += 1;
            // Exactly one rng draw per decision keeps the stream aligned
            // with the occurrence counter even when rules change.
            let u = rng.uniform_f64(0.0, 1.0);
            if let Some(&(_, kind)) = rules.forced.iter().find(|(at, _)| *at == n) {
                rules.action_for(kind)
            } else {
                let mut acc = 0.0;
                let ladder = [
                    (rules.p_refuse, FaultKind::RefuseConnect),
                    (rules.p_reset, FaultKind::Reset),
                    (rules.p_truncate, FaultKind::Truncate),
                    (rules.p_corrupt, FaultKind::Corrupt),
                    (rules.p_stall, FaultKind::Stall),
                    (rules.p_busy, FaultKind::Busy),
                    (rules.p_corrupt_payload, FaultKind::CorruptPayload),
                    (rules.p_clean_eof, FaultKind::CleanEof),
                    (rules.p_short_write, FaultKind::ShortWrite),
                    (rules.p_disk_error, FaultKind::DiskError),
                ];
                let mut chosen = FaultAction::Allow;
                for (p, kind) in ladder {
                    acc += p;
                    if u < acc {
                        chosen = rules.action_for(kind);
                        break;
                    }
                }
                chosen
            }
        };
        match action {
            FaultAction::Allow => {}
            FaultAction::RefuseConnect => {
                self.stats.refusals.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Reset => {
                self.stats.resets.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Truncate => {
                self.stats.truncations.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Corrupt => {
                self.stats.corruptions.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Stall(_) => {
                self.stats.stalls.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Busy => {
                self.stats.busy_storms.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::CorruptPayload => {
                self.stats.payload_corruptions.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::CleanEof => {
                self.stats.clean_eof_lies.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::ShortWrite => {
                self.stats.short_writes.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::DiskError => {
                self.stats.disk_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        action
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            refusals: self.stats.refusals.load(Ordering::Relaxed),
            resets: self.stats.resets.load(Ordering::Relaxed),
            truncations: self.stats.truncations.load(Ordering::Relaxed),
            corruptions: self.stats.corruptions.load(Ordering::Relaxed),
            stalls: self.stats.stalls.load(Ordering::Relaxed),
            busy_storms: self.stats.busy_storms.load(Ordering::Relaxed),
            payload_corruptions: self.stats.payload_corruptions.load(Ordering::Relaxed),
            clean_eof_lies: self.stats.clean_eof_lies.load(Ordering::Relaxed),
            short_writes: self.stats.short_writes.load(Ordering::Relaxed),
            disk_errors: self.stats.disk_errors.load(Ordering::Relaxed),
        }
    }
}

/// The store consults its [`jbs_store_hybrid::DiskFaultInjector`] on
/// every spill-extent and manifest-record write; routing those calls
/// through the plan's per-hook rng streams gives disk faults the same
/// determinism contract as the network hooks: the decision at the
/// `n`-th occurrence is a pure function of `(seed, occurrence)`.
impl jbs_store_hybrid::DiskFaultInjector for FaultPlan {
    fn disk_write(&self, site: jbs_store_hybrid::DiskWriteSite) -> jbs_store_hybrid::DiskWriteFault {
        let hook = match site {
            jbs_store_hybrid::DiskWriteSite::SpillWrite => Hook::DiskSpillWrite,
            jbs_store_hybrid::DiskWriteSite::ManifestAppend => Hook::DiskManifestAppend,
        };
        match self.decide(hook) {
            FaultAction::ShortWrite => jbs_store_hybrid::DiskWriteFault::ShortWrite,
            FaultAction::DiskError => jbs_store_hybrid::DiskWriteFault::Error,
            // Network-shaped actions are meaningless on a disk path;
            // treat anything else as a clean write.
            _ => jbs_store_hybrid::DiskWriteFault::Allow,
        }
    }
}

/// Consult an optional plan at a hook; `Allow` when none is installed.
///
/// This is the zero-cost form used on production paths: without a plan
/// it compiles to a null check.
#[inline]
pub fn decide(plan: &Option<Arc<FaultPlan>>, hook: Hook) -> FaultAction {
    match plan {
        Some(p) => p.decide(hook),
        None => FaultAction::Allow,
    }
}

/// Builder for [`FaultPlan`]. Probabilities at a hook are evaluated as
/// a single cumulative ladder, so their sum should stay ≤ 1.
#[derive(Debug)]
pub struct FaultPlanBuilder {
    seed: u64,
    rules: Vec<HookRules>,
}

impl FaultPlanBuilder {
    /// Refuse/drop connections at `hook` with probability `p`.
    pub fn refuse(mut self, hook: Hook, p: f64) -> Self {
        self.rules[hook.index()].p_refuse = p;
        self
    }

    /// Drop the connection mid-exchange at `hook` with probability `p`.
    pub fn reset(mut self, hook: Hook, p: f64) -> Self {
        self.rules[hook.index()].p_reset = p;
        self
    }

    /// Truncate the frame at `hook` with probability `p`.
    pub fn truncate(mut self, hook: Hook, p: f64) -> Self {
        self.rules[hook.index()].p_truncate = p;
        self
    }

    /// Corrupt the frame header at `hook` with probability `p`.
    pub fn corrupt(mut self, hook: Hook, p: f64) -> Self {
        self.rules[hook.index()].p_corrupt = p;
        self
    }

    /// Stall for `d` at `hook` with probability `p`.
    pub fn stall(mut self, hook: Hook, p: f64, d: Duration) -> Self {
        let r = &mut self.rules[hook.index()];
        r.p_stall = p;
        r.stall = d;
        self
    }

    /// Force `Busy` pushback at `hook` with probability `p` (meaningful
    /// at [`Hook::ServerAdmission`]).
    pub fn busy(mut self, hook: Hook, p: f64) -> Self {
        self.rules[hook.index()].p_busy = p;
        self
    }

    /// Flip a payload byte after the checksum at `hook` with
    /// probability `p` (meaningful at [`Hook::ServerPayload`]).
    pub fn corrupt_payload(mut self, hook: Hook, p: f64) -> Self {
        self.rules[hook.index()].p_corrupt_payload = p;
        self
    }

    /// Serve a lying clean EOF at `hook` with probability `p`
    /// (meaningful at [`Hook::ServerPayload`]).
    pub fn clean_eof(mut self, hook: Hook, p: f64) -> Self {
        self.rules[hook.index()].p_clean_eof = p;
        self
    }

    /// Land only a prefix of disk writes at `hook` with probability `p`
    /// (meaningful at [`Hook::DiskSpillWrite`] and
    /// [`Hook::DiskManifestAppend`]).
    pub fn short_write(mut self, hook: Hook, p: f64) -> Self {
        self.rules[hook.index()].p_short_write = p;
        self
    }

    /// Fail disk writes with an I/O error at `hook` with probability
    /// `p` (meaningful at [`Hook::DiskSpillWrite`] and
    /// [`Hook::DiskManifestAppend`]).
    pub fn disk_error(mut self, hook: Hook, p: f64) -> Self {
        self.rules[hook.index()].p_disk_error = p;
        self
    }

    /// Force the `occurrence`-th firing (0-based) of `hook` to take
    /// `kind`, regardless of probabilities.
    pub fn force(mut self, hook: Hook, occurrence: u64, kind: FaultKind) -> Self {
        self.rules[hook.index()].forced.push((occurrence, kind));
        self
    }

    /// Finish the plan.
    pub fn build(self) -> Arc<FaultPlan> {
        let mut root = DetRng::new(self.seed);
        let hooks = Hook::ALL
            .iter()
            .map(|h| Mutex::new((root.fork(h.index() as u64 + 1), 0u64)))
            .collect();
        Arc::new(FaultPlan {
            hooks,
            rules: self.rules,
            stats: FaultStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> Arc<FaultPlan> {
        FaultPlan::builder(seed)
            .reset(Hook::ServerWriteResponse, 0.2)
            .stall(Hook::ServerWriteResponse, 0.1, Duration::from_millis(50))
            .refuse(Hook::ClientConnect, 0.3)
            .force(Hook::ServerWriteResponse, 2, FaultKind::Truncate)
            .build()
    }

    #[test]
    fn same_seed_same_decision_sequence() {
        let a = plan(99);
        let b = plan(99);
        for _ in 0..200 {
            assert_eq!(
                a.decide(Hook::ServerWriteResponse),
                b.decide(Hook::ServerWriteResponse)
            );
            assert_eq!(a.decide(Hook::ClientConnect), b.decide(Hook::ClientConnect));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0);
    }

    #[test]
    fn hooks_are_independent_streams() {
        // Interleaving calls to another hook must not perturb a hook's
        // own decision sequence.
        let a = plan(7);
        let b = plan(7);
        let seq_a: Vec<_> = (0..100)
            .map(|_| a.decide(Hook::ServerWriteResponse))
            .collect();
        let seq_b: Vec<_> = (0..100)
            .map(|i| {
                if i % 3 == 0 {
                    b.decide(Hook::ClientConnect);
                    b.decide(Hook::VerbsRead);
                }
                b.decide(Hook::ServerWriteResponse)
            })
            .collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn forced_occurrence_fires() {
        let p = plan(3);
        let mut third = FaultAction::Allow;
        for i in 0..5 {
            let act = p.decide(Hook::ServerWriteResponse);
            if i == 2 {
                third = act;
            }
        }
        assert_eq!(third, FaultAction::Truncate);
        assert!(p.stats().truncations >= 1);
    }

    #[test]
    fn no_plan_allows_everything() {
        let none: Option<Arc<FaultPlan>> = None;
        for h in Hook::ALL {
            assert_eq!(decide(&none, h), FaultAction::Allow);
        }
    }

    #[test]
    fn unconfigured_hook_never_fires() {
        let p = plan(11);
        for _ in 0..500 {
            assert_eq!(p.decide(Hook::VerbsConnect), FaultAction::Allow);
        }
    }

    #[test]
    fn robustness_hooks_fire_and_count() {
        let p = FaultPlan::builder(17)
            .busy(Hook::ServerAdmission, 0.5)
            .corrupt_payload(Hook::ServerPayload, 0.3)
            .clean_eof(Hook::ServerPayload, 0.3)
            .force(Hook::ServerPayload, 0, FaultKind::CorruptPayload)
            .force(Hook::ServerPayload, 1, FaultKind::CleanEof)
            .build();
        assert_eq!(p.decide(Hook::ServerPayload), FaultAction::CorruptPayload);
        assert_eq!(p.decide(Hook::ServerPayload), FaultAction::CleanEof);
        for _ in 0..200 {
            let a = p.decide(Hook::ServerAdmission);
            assert!(matches!(a, FaultAction::Allow | FaultAction::Busy));
        }
        let s = p.stats();
        assert!(s.busy_storms > 0, "busy storm never fired");
        assert!(s.payload_corruptions >= 1);
        assert!(s.clean_eof_lies >= 1);
        assert_eq!(
            s.total(),
            s.busy_storms + s.payload_corruptions + s.clean_eof_lies
        );
    }

    #[test]
    fn disk_faults_are_deterministic_per_seed_and_occurrence() {
        use jbs_store_hybrid::{DiskFaultInjector, DiskWriteFault, DiskWriteSite};
        let build = || {
            FaultPlan::builder(41)
                .short_write(Hook::DiskSpillWrite, 0.3)
                .disk_error(Hook::DiskSpillWrite, 0.2)
                .disk_error(Hook::DiskManifestAppend, 0.4)
                .force(Hook::DiskManifestAppend, 1, FaultKind::ShortWrite)
                .build()
        };
        let a = build();
        let b = build();
        let mut saw_short = false;
        let mut saw_error = false;
        for i in 0..200 {
            let fa = a.disk_write(DiskWriteSite::SpillWrite);
            assert_eq!(fa, b.disk_write(DiskWriteSite::SpillWrite));
            saw_short |= fa == DiskWriteFault::ShortWrite;
            saw_error |= fa == DiskWriteFault::Error;
            let ma = a.disk_write(DiskWriteSite::ManifestAppend);
            assert_eq!(ma, b.disk_write(DiskWriteSite::ManifestAppend));
            if i == 1 {
                assert_eq!(ma, DiskWriteFault::ShortWrite, "forced occurrence 1");
            }
        }
        assert!(saw_short && saw_error, "both disk fault kinds must fire");
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().short_writes >= 1);
        assert!(a.stats().disk_errors >= 1);
    }

    #[test]
    fn disk_hooks_do_not_perturb_network_hooks() {
        use jbs_store_hybrid::{DiskFaultInjector, DiskWriteSite};
        let mk = || {
            FaultPlan::builder(23)
                .reset(Hook::ServerWriteResponse, 0.4)
                .disk_error(Hook::DiskSpillWrite, 0.5)
                .build()
        };
        let a = mk();
        let b = mk();
        let seq_a: Vec<_> = (0..100)
            .map(|_| a.decide(Hook::ServerWriteResponse))
            .collect();
        let seq_b: Vec<_> = (0..100)
            .map(|i| {
                if i % 2 == 0 {
                    b.disk_write(DiskWriteSite::SpillWrite);
                }
                b.decide(Hook::ServerWriteResponse)
            })
            .collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn probabilities_roughly_respected() {
        let p = FaultPlan::builder(5).reset(Hook::VerbsRead, 0.5).build();
        let fired = (0..2000)
            .filter(|_| p.decide(Hook::VerbsRead) == FaultAction::Reset)
            .count();
        assert!((800..1200).contains(&fired), "fired {fired}/2000");
    }
}
