//! Synchronization layer for the dataplane, swappable to the loom model
//! checker.
//!
//! Every mutex on the dataplane is acquired through [`lock`], which
//! gives the crate two properties at once:
//!
//! * **poison tolerance** — a fetch worker that panicked while holding a
//!   connection must not wedge every later fetch (the data a dataplane
//!   mutex guards is a connection or cache, not an invariant that a
//!   panic can half-update);
//! * **a syntactic anchor** — `cargo xtask analyze`'s lock-order lint
//!   treats each `lock(&path)` call as an acquisition of the lock named
//!   by `path`'s last segment and checks the crate-wide acquisition
//!   graph against the documented order in `crates/xtask/allow.toml`.
//!
//! Building with `RUSTFLAGS="--cfg loom"` swaps these types for the
//! vendored loom model checker's (see `shims/loom`), under which the
//! `loom_` tests in [`crate::slot`] and [`crate::staging`] explore every
//! bounded interleaving of the production slot/staging logic. The loom
//! `Mutex::lock` also returns `std::sync::LockResult`, so this one
//! [`lock`] body serves both builds.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicUsize};
#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex, MutexGuard};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::AtomicBool;
#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard};

pub(crate) use std::sync::atomic::Ordering;

/// Lock a mutex, tolerating poison.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Wait on `cv` until woken, tolerating poison. The guard is released
/// for the duration of the wait and reacquired on wake — the same
/// contract as `std::sync::Condvar::wait`, which `cargo xtask analyze`
/// recognizes when judging blocking-under-lock.
pub(crate) fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}
