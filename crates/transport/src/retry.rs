//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! The NetMerger client retries transient dataplane failures (see
//! [`crate::error::TransportError::is_retryable`]) under a
//! [`RetryPolicy`]: each attempt after the first sleeps for an
//! exponentially growing backoff, jittered by a [`jbs_des::DetRng`]
//! stream so a given seed always produces the same sleep schedule.

use jbs_des::DetRng;
use std::time::Duration;

/// Retry budget and backoff shape for one logical operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed after the initial attempt. 0 disables retry.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Upper clamp on any single backoff sleep.
    pub max_backoff: Duration,
    /// Multiplicative jitter: each sleep is scaled uniformly in
    /// `[1 - jitter_frac, 1 + jitter_frac]`.
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_frac: 0.2,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries; failures surface on first error.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// Sleep duration before retry number `attempt` (1-based: the
    /// first retry is attempt 1). Exponential in `attempt`, clamped to
    /// `max_backoff`, then jittered from `rng`.
    pub fn backoff(&self, attempt: u32, rng: &mut DetRng) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        if self.jitter_frac <= 0.0 {
            return raw;
        }
        let lo = (1.0 - self.jitter_frac).max(0.0);
        let hi = 1.0 + self.jitter_frac;
        raw.mul_f64(rng.uniform_f64(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_clamps() {
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter_frac: 0.0,
        };
        let mut rng = DetRng::new(1);
        assert_eq!(p.backoff(1, &mut rng), Duration::from_millis(10));
        assert_eq!(p.backoff(2, &mut rng), Duration::from_millis(20));
        assert_eq!(p.backoff(3, &mut rng), Duration::from_millis(40));
        // Clamped past the cap.
        assert_eq!(p.backoff(6, &mut rng), Duration::from_millis(100));
        assert_eq!(p.backoff(30, &mut rng), Duration::from_millis(100));
    }

    #[test]
    fn jitter_is_bounded_and_seed_deterministic() {
        let p = RetryPolicy::default();
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for attempt in 1..=6 {
            let da = p.backoff(attempt, &mut a);
            let db = p.backoff(attempt, &mut b);
            assert_eq!(da, db);
            let raw = p
                .base_backoff
                .saturating_mul(1 << (attempt - 1))
                .min(p.max_backoff);
            assert!(da >= raw.mul_f64(1.0 - p.jitter_frac - 1e-9));
            assert!(da <= raw.mul_f64(1.0 + p.jitter_frac + 1e-9));
        }
    }

    #[test]
    fn none_disables_retry() {
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }
}
