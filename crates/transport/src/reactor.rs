//! The event-driven supplier serve loop: nonblocking sockets, a
//! `poll(2)` readiness set, and zero-copy vectored transmits straight
//! out of the DataCache slab.
//!
//! The threaded server spends a kernel thread per connection and one
//! memcpy per served chunk (staged range → pooled payload buffer). This
//! module replaces both on the hot path:
//!
//! * **one reactor thread** (or a few — [`crate::server::ServerOptions::
//!   reactor_threads`]) owns every admitted connection as a small state
//!   machine: read-buffer framing, a per-request sequence number, and a
//!   FIFO of outgoing responses with a byte cursor for partial-write
//!   resumption;
//! * **zero-copy serving**: a DataCache hit clones the staged range's
//!   refcounted [`Lease`] ([`crate::staging::StageCache::hit_lease`])
//!   and transmits `head + lease[window]` with a single vectored
//!   syscall — the payload bytes are never copied between the slab and
//!   the socket, and the lease pins the buffer against recycling for
//!   exactly as long as partial writes keep it in flight;
//! * **no blocking in the loop**: every disk, hybrid-store, or index
//!   touch is shipped to the permit-bounded disk-worker pool through
//!   the same grouped prefetch queue the threaded server uses (Fig. 5
//!   discipline preserved), and the finished frame comes back through a
//!   [`CompletionQueue`] plus a [`Waker`] byte. The reactor itself only
//!   ever does nonblocking socket I/O and lock-free-short map touches —
//!   a rule `cargo xtask analyze` enforces (`nonblocking_context`): no
//!   blocking primitive may be *reachable* from this file at all.
//!
//! Responses go out strictly in request order per connection (the wire
//! contract): completions arriving out of order — the disk thread
//! round-robins across MOF groups — park in a per-connection
//! `BTreeMap` until their predecessors are written.
//!
//! Fault injection carries over with event-loop semantics: a `Stall`
//! becomes a transmit deadline (the loop never sleeps), `Reset` drops
//! the connection, `Truncate` halves the frame and closes after the
//! flush, `Corrupt` flips the length header — all at the same
//! [`Hook::ServerWriteResponse`] point the threaded path uses.

use crate::bufpool::Lease;
use crate::faults::{self, FaultAction, Hook};
use crate::poll::{sys_poll, PollFd, Waker, POLLIN, POLLOUT};
use crate::prefetch::{Reply, StageJob};
use crate::server::{release, Shared};
use crate::sync::{lock, Mutex};
use crate::wire::{
    self, FetchRequest, Status, WireVersion, REQUEST_LEN, REQUEST_LEN_V3, REQUEST_MAGIC,
    REQUEST_MAGIC_V3,
};
use jbs_obs::{Entity, OwnedSpan};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{IpAddr, TcpStream};
use std::ops::Range;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Cap on IoSlice entries per vectored write (2 per response). Linux's
/// `UIO_MAXIOV` is 1024; staying far below it keeps one syscall's work
/// bounded without a second code path.
const MAX_BATCH_RESPONSES: usize = 32;

/// Upper bound on buffered unparsed request bytes per connection; a
/// peer that streams garbage without ever framing a request is cut off
/// rather than ballooning the read buffer.
const MAX_RBUF: usize = 64 << 10;

// ---------------------------------------------------------------------
// Outgoing responses
// ---------------------------------------------------------------------

/// One response staged for transmission: an encoded head and a payload
/// *window* over a refcounted lease. For DataCache hits the lease is a
/// clone of the staged range itself — transmitting never copies the
/// payload. `cursor` tracks bytes already written across partial
/// writes.
pub(crate) struct OutResp {
    status: Status,
    /// MOF/offset of the originating request, for trace entities.
    mof: u64,
    offset: u64,
    head: [u8; wire::RESPONSE_HEADER_LEN + wire::CRC_EXT_LEN],
    head_len: usize,
    payload: Lease,
    range: Range<usize>,
    cursor: usize,
    /// Whether the write-fault decision was drawn and the xmit span
    /// opened (once per response, at first transmit attempt).
    started: bool,
    /// Truncate fault: close the connection once this frame's
    /// (shortened) bytes are flushed.
    close_after: bool,
    span: Option<OwnedSpan>,
}

impl std::fmt::Debug for OutResp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutResp")
            .field("status", &self.status)
            .field("mof", &self.mof)
            .field("offset", &self.offset)
            .field("len", &self.range.len())
            .field("cursor", &self.cursor)
            .finish()
    }
}

impl OutResp {
    fn total_len(&self) -> usize {
        self.head_len + self.range.len()
    }

    fn remaining(&self) -> usize {
        self.total_len().saturating_sub(self.cursor)
    }
}

/// Build a served-bytes response in the request's dialect, applying the
/// post-checksum payload faults exactly like the threaded path: the CRC
/// is computed *before* a `CorruptPayload` flip (only end-to-end
/// verification can catch the damage), and `CleanEof` rewrites the
/// frame to a clean empty chunk.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_ok(
    shared: &Shared,
    id: u64,
    version: WireVersion,
    seg_len: Option<u64>,
    lease: Lease,
    range: Range<usize>,
    mof: u64,
    offset: u64,
) -> OutResp {
    let (status, mut crc_seg) = {
        let window = lease.as_slice().get(range.clone()).unwrap_or_default();
        match (version, seg_len) {
            (WireVersion::V2, _) | (WireVersion::V3, None) => (Status::Ok, None),
            (WireVersion::V3, Some(sl)) => {
                shared.options.trace.instant(
                    "integrity.seal",
                    Entity::mof(mof),
                    offset,
                    window.len() as u64,
                );
                (Status::OkCrc, Some((jbs_checksum::crc32c(window), sl)))
            }
        }
    };
    let mut lease = lease;
    let mut range = range;
    if !range.is_empty() {
        match faults::decide(&shared.options.faults, Hook::ServerPayload) {
            FaultAction::CorruptPayload => {
                // Copy-out so the shared staged bytes stay pristine;
                // the flip damages only this frame.
                let mut owned = lease
                    .as_slice()
                    .get(range.clone())
                    .unwrap_or_default()
                    .to_vec();
                if let Some(b) = owned.first_mut() {
                    *b ^= 0x01;
                }
                shared
                    .stats
                    .copied_bytes
                    .fetch_add(owned.len() as u64, Ordering::Relaxed);
                range = 0..owned.len();
                lease = Lease::detached(owned);
            }
            FaultAction::CleanEof => {
                // Pretend the segment cleanly ended before this chunk.
                if let Some((crc, _)) = crc_seg.as_mut() {
                    *crc = jbs_checksum::crc32c(&[]);
                }
                range = 0..0;
                lease = Lease::detached(Vec::new());
            }
            _ => {}
        }
    }
    let (head, head_len) = wire::encode_head_parts(status, id, range.len() as u64, crc_seg);
    OutResp {
        status,
        mof,
        offset,
        head,
        head_len,
        payload: lease,
        range,
        cursor: 0,
        started: false,
        close_after: false,
        span: None,
    }
}

/// An error response (no payload).
pub(crate) fn build_error(id: u64, status: Status, mof: u64, offset: u64) -> OutResp {
    let (head, head_len) = wire::encode_head_parts(status, id, 0, None);
    OutResp {
        status,
        mof,
        offset,
        head,
        head_len,
        payload: Lease::detached(Vec::new()),
        range: 0..0,
        cursor: 0,
        started: false,
        close_after: false,
        span: None,
    }
}

/// A `Busy` pushback frame (v3): the len field carries the retry hint.
fn build_busy(id: u64, retry_after_ms: u64, mof: u64, offset: u64) -> OutResp {
    let (head, head_len) =
        wire::encode_head_parts(Status::Busy, id, retry_after_ms.min(60_000), None);
    OutResp {
        status: Status::Busy,
        mof,
        offset,
        head,
        head_len,
        payload: Lease::detached(Vec::new()),
        range: 0..0,
        cursor: 0,
        started: false,
        close_after: false,
        span: None,
    }
}

// ---------------------------------------------------------------------
// Disk-thread completions
// ---------------------------------------------------------------------

/// A finished disk-thread job headed back to its reactor.
pub(crate) struct Completion {
    pub(crate) slot: usize,
    pub(crate) gen: u64,
    pub(crate) seq: u64,
    /// `(mof, reducer)` for Stage jobs: the reactor uses it to retire
    /// the connection's in-flight stage count and re-evaluate requests
    /// parked behind this staging (see [`Conn::parked`]).
    pub(crate) key: Option<(u64, u32)>,
    pub(crate) resp: OutResp,
}

/// The disk-thread → reactor handoff: a closable mailbox. `close`
/// drains and marks closed so a post-shutdown push is refused — the
/// rejected completion's lease drops on the pushing side and the buffer
/// recycles, never leaks (the `loom_` model below pins this down).
pub(crate) struct CompletionQueue {
    inner: Mutex<CqInner>,
}

struct CqInner {
    items: Vec<Completion>,
    closed: bool,
}

impl CompletionQueue {
    pub(crate) fn new() -> Self {
        CompletionQueue {
            inner: Mutex::new(CqInner {
                items: Vec::new(),
                closed: false,
            }),
        }
    }

    /// Deliver one completion. `Err` hands the completion back because
    /// the queue already closed; the caller must release its lease —
    /// returning the value (not a boxed copy) is the point, so the
    /// large-`Err` clippy lint is waived here.
    #[allow(clippy::result_large_err)]
    pub(crate) fn push(&self, c: Completion) -> Result<(), Completion> {
        let mut q = lock(&self.inner);
        if q.closed {
            return Err(c);
        }
        q.items.push(c);
        Ok(())
    }

    /// Take everything currently queued.
    pub(crate) fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut lock(&self.inner).items)
    }

    /// Drain and refuse all future pushes.
    pub(crate) fn close(&self) -> Vec<Completion> {
        let mut q = lock(&self.inner);
        q.closed = true;
        std::mem::take(&mut q.items)
    }
}

/// Everything the disk thread needs to finish a reactor-dispatched
/// request: what to do ([`JobKind`]), how to frame it (id + dialect),
/// and where to deliver the frame (queue, waker, generation-tagged
/// connection slot, in-order sequence number).
pub(crate) struct JobTicket {
    pub(crate) cq: Arc<CompletionQueue>,
    pub(crate) waker: Arc<Waker>,
    pub(crate) slot: usize,
    pub(crate) gen: u64,
    pub(crate) seq: u64,
    pub(crate) id: u64,
    pub(crate) version: WireVersion,
    pub(crate) kind: JobKind,
    /// `(mof, reducer)` when `kind` is [`JobKind::Stage`]; carried back
    /// in the completion so the reactor can unpark requests waiting on
    /// this staging.
    pub(crate) stage_key: Option<(u64, u32)>,
}

/// What the disk thread does for a reactor job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JobKind {
    /// Read-ahead + stage, serve the request's window zero-copy from
    /// the freshly staged lease (the DataCache miss path).
    Stage,
    /// Direct store read, DataCache untouched (cache-bypass re-fetch
    /// and whole-segment requests; `want == 0` reads to segment end).
    Direct,
    /// Serve from the attached hybrid store's tiers.
    Hybrid,
}

impl JobTicket {
    /// Deliver `resp` to the owning reactor and wake its poll loop. A
    /// closed queue (reactor shut down) just drops the frame — the
    /// payload lease recycles on this thread.
    pub(crate) fn deliver(self, resp: OutResp) {
        let c = Completion {
            slot: self.slot,
            gen: self.gen,
            seq: self.seq,
            key: self.stage_key,
            resp,
        };
        if self.cq.push(c).is_ok() {
            self.waker.wake();
        }
    }
}

// ---------------------------------------------------------------------
// The reactor
// ---------------------------------------------------------------------

/// An admitted connection handed over by the accept thread.
pub(crate) struct NewConn {
    pub(crate) stream: TcpStream,
    pub(crate) peer_ip: Option<IpAddr>,
    pub(crate) conn_no: u64,
}

/// The accept thread's handle to one reactor: an inbox of admitted
/// sockets plus the waker that interrupts the poll loop, and the
/// completion queue the disk thread delivers into.
pub(crate) struct ReactorHandle {
    /// Reactor index, for trace labeling.
    pub(crate) idx: u64,
    pub(crate) waker: Arc<Waker>,
    inbox: Mutex<Vec<NewConn>>,
    pub(crate) completions: Arc<CompletionQueue>,
}

impl ReactorHandle {
    pub(crate) fn new(idx: u64) -> io::Result<Arc<Self>> {
        Ok(Arc::new(ReactorHandle {
            idx,
            waker: Arc::new(Waker::new()?),
            inbox: Mutex::new(Vec::new()),
            completions: Arc::new(CompletionQueue::new()),
        }))
    }

    /// Hand an admitted connection to this reactor (accept thread).
    pub(crate) fn submit(&self, conn: NewConn) {
        lock(&self.inbox).push(conn);
        self.waker.wake();
    }

    fn take_inbox(&self) -> Vec<NewConn> {
        std::mem::take(&mut lock(&self.inbox))
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    peer_ip: Option<IpAddr>,
    conn_no: u64,
    gen: u64,
    /// Unparsed request bytes.
    rbuf: Vec<u8>,
    /// Next sequence number to assign to an accepted request.
    next_seq: u64,
    /// Next sequence number to move into the write queue.
    next_send: u64,
    /// Finished responses waiting for their predecessors (the disk
    /// thread completes out of order across MOF groups).
    pending: BTreeMap<u64, OutResp>,
    /// In-order responses being written.
    outq: VecDeque<OutResp>,
    /// Disk jobs dispatched, completion not yet delivered.
    inflight: u64,
    /// In-flight Stage jobs per `(mof, reducer)`. A request that misses
    /// while a stage for its key is already in flight parks instead of
    /// dispatching — the staging that is about to finish almost always
    /// covers it, and round-tripping it through the disk queue would
    /// serialize a cheap cache hit behind other groups' disk reads.
    stage_inflight: HashMap<(u64, u32), u32>,
    /// Requests parked behind an in-flight staging, with their assigned
    /// response sequence numbers. Re-evaluated (serve from cache, or
    /// dispatch if genuinely past the staged range) when a completion
    /// for their key arrives.
    parked: VecDeque<Parked>,
    /// Injected stall: no transmit until this deadline.
    stall_until: Option<Instant>,
    /// Read half done (peer EOF, v2 pushback, or drain).
    eof: bool,
    /// A fault or protocol decision closed the write half; drop the
    /// connection once already-queued bytes are flushed.
    close_when_flushed: bool,
}

/// A request waiting for an in-flight staging of its key to finish.
struct Parked {
    req: FetchRequest,
    version: WireVersion,
    /// Sequence number reserved at parse time, so the response slots
    /// into the connection's in-order stream wherever it resolves.
    seq: u64,
}

enum ConnEvent {
    /// Keep serving.
    Continue,
    /// Close cleanly (no error counted): EOF, drain, injected fault.
    Close,
}

/// Run one reactor until the supplier stops. Owns its connections
/// exclusively; everything shared sits behind `Shared`'s own locks.
pub(crate) fn run(shared: &Arc<Shared>, handle: &Arc<ReactorHandle>) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut next_gen: u64 = 0;
    let mut scratch = vec![0u8; 64 << 10];
    let mut fds: Vec<PollFd> = Vec::new();
    let mut slots: Vec<usize> = Vec::new();
    while !shared.stop.load(Ordering::Acquire) {
        let draining = shared.draining.load(Ordering::Acquire);
        fds.clear();
        slots.clear();
        fds.push(PollFd::new(handle.waker.fd(), POLLIN));
        let now = Instant::now();
        // Bounded timeout so stop/drain flags are observed promptly
        // even with no traffic.
        let mut timeout_ms: i32 = 100;
        for (slot, c) in conns.iter_mut().enumerate() {
            let Some(conn) = c.as_mut() else { continue };
            if let Some(t) = conn.stall_until {
                if t <= now {
                    conn.stall_until = None;
                } else {
                    let ms = t.duration_since(now).as_millis() as i32;
                    timeout_ms = timeout_ms.min(ms.max(1));
                }
            }
            let mut interest = 0i16;
            if !conn.eof && !draining {
                interest |= POLLIN;
            }
            if conn.stall_until.is_none() && !conn.outq.is_empty() {
                interest |= POLLOUT;
            }
            if interest != 0 {
                fds.push(PollFd::new(conn.stream.as_raw_fd(), interest));
                slots.push(slot);
            }
        }
        if sys_poll(&mut fds, timeout_ms).is_err() {
            // poll(2) failing (EBADF after a lost socket, ENOMEM) is not
            // recoverable from inside the loop; drop everything.
            break;
        }
        if fds.first().is_some_and(|w| w.readable()) {
            handle.waker.drain();
            shared.stats.reactor_wakes.fetch_add(1, Ordering::Relaxed);
            shared
                .options
                .trace
                .instant("reactor.wake", Entity::node(handle.idx), 0, 0);
        }

        // Phase 1: adopt admitted connections.
        for nc in handle.take_inbox() {
            let ok = nc.stream.set_nonblocking(true).is_ok() && nc.stream.set_nodelay(true).is_ok();
            if !ok {
                release(shared, nc.peer_ip);
                continue;
            }
            next_gen += 1;
            let adopted = Some(Conn {
                stream: nc.stream,
                peer_ip: nc.peer_ip,
                conn_no: nc.conn_no,
                gen: next_gen,
                rbuf: Vec::new(),
                next_seq: 0,
                next_send: 0,
                pending: BTreeMap::new(),
                outq: VecDeque::new(),
                inflight: 0,
                stage_inflight: HashMap::new(),
                parked: VecDeque::new(),
                stall_until: None,
                eof: false,
                close_when_flushed: false,
            });
            match conns.iter_mut().find(|c| c.is_none()) {
                Some(free) => *free = adopted,
                None => conns.push(adopted),
            }
        }

        // Phase 2: disk-thread completions → per-connection reorder
        // buffers. A stale generation means the slot was reused; the
        // orphaned response just drops (its lease recycles).
        for c in handle.completions.drain() {
            let Some(conn) = conns.get_mut(c.slot).and_then(Option::as_mut) else {
                continue;
            };
            if conn.gen != c.gen {
                continue;
            }
            conn.inflight = conn.inflight.saturating_sub(1);
            if let Some(k) = c.key {
                if let Some(n) = conn.stage_inflight.get_mut(&k) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        conn.stage_inflight.remove(&k);
                    }
                }
            }
            conn.pending.insert(c.seq, c.resp);
            promote(shared, conn);
            if let Some(k) = c.key {
                unpark(shared, handle, conn, c.slot, k);
            }
        }

        // Phase 3: socket readiness — reads first (may queue responses),
        // then transmit for every connection with queued output.
        for (i, fd) in fds.iter().enumerate().skip(1) {
            let Some(&slot) = slots.get(i - 1) else { break };
            if !fd.readable() {
                continue;
            }
            let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
                continue;
            };
            match handle_read(shared, handle, conn, slot, &mut scratch) {
                Ok(ConnEvent::Continue) => {}
                Ok(ConnEvent::Close) => close_conn(shared, &mut conns, slot),
                Err(_) => {
                    shared.fetch_stats.record_reset();
                    close_conn(shared, &mut conns, slot);
                }
            }
        }
        for slot in 0..conns.len() {
            let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
                continue;
            };
            if conn.outq.is_empty() || conn.stall_until.is_some() {
                continue;
            }
            match try_xmit(shared, conn) {
                Ok(ConnEvent::Continue) => {}
                Ok(ConnEvent::Close) => close_conn(shared, &mut conns, slot),
                Err(_) => {
                    shared.fetch_stats.record_reset();
                    close_conn(shared, &mut conns, slot);
                }
            }
        }

        // Phase 4: reap connections that have nothing left to say.
        for slot in 0..conns.len() {
            let done = conns.get(slot).and_then(Option::as_ref).is_some_and(|c| {
                (c.eof || draining)
                    && c.outq.is_empty()
                    && c.pending.is_empty()
                    && c.inflight == 0
                    && c.parked.is_empty()
            });
            if done {
                close_conn(shared, &mut conns, slot);
            }
        }
    }
    // Shutdown: refuse further completions (in-flight leases recycle on
    // the disk thread) and release every admission slot.
    drop(handle.completions.close());
    for slot in 0..conns.len() {
        close_conn(shared, &mut conns, slot);
    }
}

fn close_conn(shared: &Shared, conns: &mut [Option<Conn>], slot: usize) {
    if let Some(conn) = conns.get_mut(slot).and_then(Option::take) {
        release(shared, conn.peer_ip);
        // Dropping the Conn drops queued leases (recycling buffers) and
        // closes the socket.
    }
}

/// Move completed responses into the write queue in request order,
/// counting them served exactly when they become peer-visible work —
/// the same "count before the response is written" contract as the
/// threaded path.
fn promote(shared: &Shared, conn: &mut Conn) {
    while let Some(resp) = conn.pending.remove(&conn.next_send) {
        conn.next_send += 1;
        if resp.status != Status::Busy {
            shared.stats.requests.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .bytes
                .fetch_add(resp.range.len() as u64, Ordering::Relaxed);
        }
        conn.outq.push_back(resp);
    }
}

/// Drain the socket's read buffer and serve every complete request
/// frame found in it.
fn handle_read(
    shared: &Arc<Shared>,
    handle: &Arc<ReactorHandle>,
    conn: &mut Conn,
    slot: usize,
    scratch: &mut [u8],
) -> io::Result<ConnEvent> {
    loop {
        match (&conn.stream).read(scratch) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                shared.stats.read_syscalls.fetch_add(1, Ordering::Relaxed);
                conn.rbuf
                    .extend_from_slice(scratch.get(..n).unwrap_or_default());
                if conn.rbuf.len() > MAX_RBUF {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unframed request flood",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let mut consumed = 0usize;
    while !conn.eof || conn.rbuf.len() > consumed {
        let buf = conn.rbuf.get(consumed..).unwrap_or_default();
        if buf.len() < 4 {
            break;
        }
        let magic = buf
            .get(..4)
            .and_then(|b| b.try_into().ok())
            .map(u32::from_be_bytes)
            .unwrap_or(0);
        let total = match magic {
            REQUEST_MAGIC => REQUEST_LEN,
            REQUEST_MAGIC_V3 => REQUEST_LEN_V3,
            _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic")),
        };
        if buf.len() < total {
            break;
        }
        let (req, version) = FetchRequest::decode(buf.get(..total).unwrap_or_default())?;
        consumed += total;
        match serve_request(shared, handle, conn, slot, req, version) {
            ConnEvent::Continue => {}
            ConnEvent::Close => {
                conn.rbuf.drain(..consumed);
                return Ok(ConnEvent::Continue); // flush outq, then reap via eof
            }
        }
    }
    conn.rbuf.drain(..consumed);
    if conn.eof
        && conn.outq.is_empty()
        && conn.pending.is_empty()
        && conn.inflight == 0
        && conn.parked.is_empty()
    {
        return Ok(ConnEvent::Close);
    }
    Ok(ConnEvent::Continue)
}

/// Serve one parsed request: answer inline from the DataCache
/// (zero-copy) when possible, otherwise ship a job to the disk thread.
/// Never blocks, never touches a file.
fn serve_request(
    shared: &Arc<Shared>,
    handle: &Arc<ReactorHandle>,
    conn: &mut Conn,
    slot: usize,
    req: FetchRequest,
    version: WireVersion,
) -> ConnEvent {
    if shared.stop.load(Ordering::Acquire) {
        conn.eof = true;
        return ConnEvent::Close;
    }
    // Per-request shedding, as in the threaded path: an injected busy
    // storm, or a stage queue already past its bound.
    let shed = faults::decide(&shared.options.faults, Hook::ServerAdmission) == FaultAction::Busy
        || shared.prefetch.len() as u64 >= shared.options.prefetch_queue_cap;
    if shed {
        shared.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
        let hint = shared.options.busy_retry_hint.as_millis() as u64;
        shared
            .options
            .trace
            .instant("server.busy", Entity::mof(req.mof), req.offset, hint);
        if version == WireVersion::V2 {
            // v2 has no pushback frame: stop reading and close once
            // earlier responses flush.
            conn.eof = true;
            return ConnEvent::Close;
        }
        enqueue_local(shared, conn, build_busy(req.id, hint, req.mof, req.offset));
        return ConnEvent::Continue;
    }

    let key = (req.mof, req.reducer);

    // Memory-tier-first: hybrid-held partitions are answered by the
    // disk thread from the hybrid's tiers (its LOCALFILE extents are
    // real file I/O — not reactor work). The presence check itself is
    // lock-only.
    let hybrid_held = shared
        .options
        .hybrid
        .as_ref()
        .is_some_and(|h| h.partition_len(req.mof, req.reducer).is_some());
    if hybrid_held {
        return dispatch(shared, handle, conn, slot, &req, version, JobKind::Hybrid);
    }

    // Targeted cache-bypass re-fetch: invalidate, then a direct read.
    if req.bypass_cache() {
        drop(shared.staged.invalidate(&key));
        shared.stats.bypass_reads.fetch_add(1, Ordering::Relaxed);
        shared.options.trace.instant(
            "integrity.bypass",
            Entity::mof(req.mof),
            req.offset,
            req.len,
        );
        return dispatch(shared, handle, conn, slot, &req, version, JobKind::Direct);
    }

    // Whole-segment requests bypass staging.
    if req.len == 0 {
        return dispatch(shared, handle, conn, slot, &req, version, JobKind::Direct);
    }

    if let Some(resp) = try_hit(shared, &req, version) {
        enqueue_local(shared, conn, resp);
        return ConnEvent::Continue;
    }

    // A stage for this key is already in flight: park behind it instead
    // of queueing another disk job. The staging about to complete
    // almost always covers this request (bursts walk a segment in
    // order), and the disk queue's round-robin would otherwise
    // serialize this cheap cache hit behind other groups' reads.
    if conn.stage_inflight.get(&key).copied().unwrap_or(0) > 0 {
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.parked.push_back(Parked { req, version, seq });
        return ConnEvent::Continue;
    }

    dispatch(shared, handle, conn, slot, &req, version, JobKind::Stage)
}

/// Try to serve `req` zero-copy from the DataCache. `None` means the
/// request needs the disk thread: a miss, or a v3 hit whose segment
/// length is not cached yet (first touch raced; frames cannot be sealed
/// without it, and index I/O is not reactor work).
fn try_hit(shared: &Shared, req: &FetchRequest, version: WireVersion) -> Option<OutResp> {
    let key = (req.mof, req.reducer);
    let buffer = shared.options.buffer_bytes;
    let want = if req.len == 0 {
        u64::MAX
    } else {
        req.len.min(buffer)
    };
    let low_water = buffer * shared.options.prefetch_batch / 2;
    let hit = shared.staged.hit_lease(&key, req.offset, want, low_water)?;
    let seg_len = match version {
        WireVersion::V2 => None,
        WireVersion::V3 => {
            let cached = lock(&shared.seg_lens).get(&key).copied();
            cached?;
            cached
        }
    };
    shared.stats.datacache_hits.fetch_add(1, Ordering::Relaxed);
    shared
        .options
        .trace
        .instant("cache.hit", Entity::mof(req.mof), req.offset, want);
    if let Some(next) = hit.stage_next {
        crate::server::queue_run_ahead(shared, req.mof, req.reducer, next);
    }
    shared
        .stats
        .zerocopy_bytes
        .fetch_add(hit.range.len() as u64, Ordering::Relaxed);
    Some(build_ok(
        shared, req.id, version, seg_len, hit.lease, hit.range, req.mof, req.offset,
    ))
}

/// Re-evaluate requests parked behind a just-finished staging of `key`:
/// serve what the fresh range covers straight from the cache, and
/// dispatch the first one past it (later ones park again behind that
/// new stage). Responses land at the sequence numbers reserved when the
/// requests parked, so the in-order stream is unaffected.
fn unpark(
    shared: &Arc<Shared>,
    handle: &Arc<ReactorHandle>,
    conn: &mut Conn,
    slot: usize,
    key: (u64, u32),
) {
    if conn.parked.is_empty() {
        return;
    }
    let mut rest = VecDeque::with_capacity(conn.parked.len());
    while let Some(p) = conn.parked.pop_front() {
        if (p.req.mof, p.req.reducer) != key {
            rest.push_back(p);
            continue;
        }
        if let Some(resp) = try_hit(shared, &p.req, p.version) {
            conn.pending.insert(p.seq, resp);
            promote(shared, conn);
        } else if conn.stage_inflight.get(&key).copied().unwrap_or(0) > 0 {
            rest.push_back(p);
        } else {
            dispatch_at(
                shared,
                handle,
                conn,
                slot,
                &p.req,
                p.version,
                JobKind::Stage,
                p.seq,
            );
        }
    }
    conn.parked = rest;
}

/// Queue a locally-built (inline) response at the next sequence number.
fn enqueue_local(shared: &Shared, conn: &mut Conn, resp: OutResp) {
    let seq = conn.next_seq;
    conn.next_seq += 1;
    conn.pending.insert(seq, resp);
    promote(shared, conn);
}

/// Ship a request to the disk thread through the grouped prefetch
/// queue. The job's completion comes back through the reactor's
/// completion queue under this request's sequence number.
fn dispatch(
    shared: &Arc<Shared>,
    handle: &Arc<ReactorHandle>,
    conn: &mut Conn,
    slot: usize,
    req: &FetchRequest,
    version: WireVersion,
    kind: JobKind,
) -> ConnEvent {
    let seq = conn.next_seq;
    conn.next_seq += 1;
    dispatch_at(shared, handle, conn, slot, req, version, kind, seq)
}

/// [`dispatch`] at a sequence number reserved earlier (parked requests
/// keep the seq they drew on arrival so the response stream stays in
/// request order).
#[allow(clippy::too_many_arguments)]
fn dispatch_at(
    shared: &Arc<Shared>,
    handle: &Arc<ReactorHandle>,
    conn: &mut Conn,
    slot: usize,
    req: &FetchRequest,
    version: WireVersion,
    kind: JobKind,
    seq: u64,
) -> ConnEvent {
    let stage_key = (kind == JobKind::Stage).then_some((req.mof, req.reducer));
    let ticket = JobTicket {
        cq: Arc::clone(&handle.completions),
        waker: Arc::clone(&handle.waker),
        slot,
        gen: conn.gen,
        seq,
        id: req.id,
        version,
        kind,
        stage_key,
    };
    let job = StageJob {
        mof: req.mof,
        reducer: req.reducer,
        offset: req.offset,
        want: req.len,
        reply: Reply::Reactor(ticket),
    };
    match shared.prefetch.push(job) {
        Ok(()) => {
            conn.inflight += 1;
            if let Some(k) = stage_key {
                *conn.stage_inflight.entry(k).or_insert(0) += 1;
            }
        }
        Err(_) => {
            // Queue closed: shutting down. Answer like the threaded
            // path's closed-queue miss.
            conn.pending.insert(
                seq,
                build_error(req.id, Status::BadRequest, req.mof, req.offset),
            );
            promote(shared, conn);
        }
    }
    ConnEvent::Continue
}

/// First transmit attempt for a response: draw the write-fault decision
/// once and open its `net.xmit` span (which then stays open across
/// every partial write until the last byte).
fn start_resp(shared: &Shared, conn: &mut Conn, at: usize) {
    let now = Instant::now();
    let Some(resp) = conn.outq.get_mut(at) else {
        return;
    };
    resp.started = true;
    resp.span = Some(shared.options.trace.span_owned(
        "net.xmit",
        Entity::mof(resp.mof),
        resp.offset,
        resp.range.len() as u64,
    ));
    if resp.status == Status::Busy {
        // Pushback frames are control traffic; the threaded path writes
        // them outside the fault hook and so does the reactor.
        return;
    }
    match faults::decide(&shared.options.faults, Hook::ServerWriteResponse) {
        FaultAction::Allow
        | FaultAction::RefuseConnect
        | FaultAction::Busy
        | FaultAction::CorruptPayload
        | FaultAction::CleanEof
        // Disk-shaped faults are meaningless on a network transmit.
        | FaultAction::ShortWrite
        | FaultAction::DiskError => {}
        FaultAction::Stall(d) => {
            // The loop never sleeps: a stall is a transmit deadline. The
            // span is already open, so the withheld time is charged to
            // net.xmit exactly as the threaded sleep is.
            conn.stall_until = Some(now + d);
        }
        FaultAction::Reset => {
            conn.close_when_flushed = true;
            conn.outq.clear();
            conn.pending.clear();
            conn.parked.clear();
            conn.eof = true;
        }
        FaultAction::Truncate => {
            // Keep the first half of the frame, then close after flush.
            let half = resp.total_len() / 2;
            if half <= resp.head_len {
                resp.head_len = half;
                resp.range = 0..0;
            } else {
                let keep = half - resp.head_len;
                resp.range = resp.range.start..resp.range.start + keep;
            }
            resp.close_after = true;
        }
        FaultAction::Corrupt => {
            // Flip a high byte of the length header (after status + id);
            // the client's MAX_PAYLOAD cap rejects the frame.
            if let Some(b) = resp.head.get_mut(1 + 8) {
                *b ^= 0xFF;
            }
        }
    }
}

/// Write as much queued output as the socket accepts: batched vectored
/// writes over up to [`MAX_BATCH_RESPONSES`] responses, partial-write
/// resumption via per-response cursors.
fn try_xmit(shared: &Shared, conn: &mut Conn) -> io::Result<ConnEvent> {
    loop {
        // Start queued responses until one stalls the connection.
        let mut ready = 0usize;
        let mut truncated = false;
        while ready < conn.outq.len().min(MAX_BATCH_RESPONSES) {
            if !conn.outq.get(ready).is_some_and(|r| r.started) {
                start_resp(shared, conn, ready);
                if conn.close_when_flushed && conn.outq.is_empty() {
                    // Injected reset: drop everything immediately.
                    return Ok(ConnEvent::Close);
                }
                if conn.stall_until.is_some() {
                    break;
                }
            }
            if conn.outq.get(ready).is_some_and(|r| r.close_after) {
                ready += 1;
                truncated = true;
                break;
            }
            ready += 1;
        }
        if ready == 0 {
            return Ok(ConnEvent::Continue);
        }
        if truncated {
            // Nothing beyond the truncated frame will ever be sent.
            conn.outq.truncate(ready);
            conn.pending.clear();
            conn.parked.clear();
            conn.eof = true;
        }
        let mut bufs: Vec<IoSlice<'_>> = Vec::with_capacity(ready * 2);
        for resp in conn.outq.iter().take(ready) {
            let head_from = resp.cursor.min(resp.head_len);
            let head = resp.head.get(head_from..resp.head_len).unwrap_or_default();
            if !head.is_empty() {
                bufs.push(IoSlice::new(head));
            }
            let pay_from = resp.range.start + resp.cursor.saturating_sub(resp.head_len);
            let payload = resp
                .payload
                .as_slice()
                .get(pay_from.min(resp.range.end)..resp.range.end)
                .unwrap_or_default();
            if !payload.is_empty() {
                bufs.push(IoSlice::new(payload));
            }
        }
        if bufs.is_empty() {
            // Possible for a truncated-to-empty frame; complete it.
            finish_front(conn);
            if conn.close_when_flushed {
                return Ok(ConnEvent::Close);
            }
            continue;
        }
        match (&conn.stream).write_vectored(&bufs) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "response frame write stalled",
                ))
            }
            Ok(mut n) => {
                shared.stats.write_syscalls.fetch_add(1, Ordering::Relaxed);
                while n > 0 {
                    let Some(front) = conn.outq.front_mut() else {
                        break;
                    };
                    let rem = front.remaining();
                    if n >= rem {
                        n -= rem;
                        finish_front(conn);
                        if conn.close_when_flushed {
                            return Ok(ConnEvent::Close);
                        }
                    } else {
                        front.cursor += n;
                        n = 0;
                    }
                }
                // Loop: more queued output may fit in the socket buffer.
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if let Some(front) = conn.outq.front() {
                    if front.cursor > 0 {
                        shared.stats.partial_writes.fetch_add(1, Ordering::Relaxed);
                        shared.options.trace.instant(
                            "xmit.partial",
                            Entity::conn(conn.conn_no),
                            front.cursor as u64,
                            front.remaining() as u64,
                        );
                    }
                }
                return Ok(ConnEvent::Continue);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        if conn.outq.is_empty() {
            return Ok(ConnEvent::Continue);
        }
        if conn.stall_until.is_some() {
            return Ok(ConnEvent::Continue);
        }
    }
}

/// The front response is fully written: close its span, recycle its
/// lease, and apply close-after.
fn finish_front(conn: &mut Conn) {
    if let Some(mut resp) = conn.outq.pop_front() {
        if let Some(mut span) = resp.span.take() {
            span.set_b(resp.range.len() as u64);
            drop(span);
        }
        if resp.close_after {
            conn.close_when_flushed = true;
        }
        // Dropping `resp` drops the lease; a pooled buffer recycles once
        // no other clone (the staged range) still pins it.
    }
}

#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use crate::bufpool::BufPool;

    fn completion(pool: &BufPool) -> Completion {
        let lease = pool.lease(vec![7u8; 8]);
        let range = 0..lease.len();
        let (head, head_len) = wire::encode_head_parts(Status::Ok, 1, 8, None);
        Completion {
            slot: 0,
            gen: 1,
            seq: 0,
            key: None,
            resp: OutResp {
                status: Status::Ok,
                mof: 0,
                offset: 0,
                head,
                head_len,
                payload: lease,
                range,
                cursor: 0,
                started: false,
                close_after: false,
                span: None,
            },
        }
    }

    /// The wake-while-closing race: the disk thread delivers a
    /// completion while the reactor shuts its queue down. In every
    /// interleaving the payload's pooled buffer is returned exactly
    /// once — either the reactor drains the completion and drops it,
    /// or the push is refused and the disk thread's copy drops.
    #[test]
    fn loom_completion_delivery_races_queue_close_without_leaking() {
        loom::model(|| {
            let pool = BufPool::new(4);
            let cq = std::sync::Arc::new(CompletionQueue::new());
            let cq2 = std::sync::Arc::clone(&cq);
            let c = completion(&pool);
            let h = loom::thread::spawn(move || {
                if let Err(refused) = cq2.push(c) {
                    drop(refused); // reactor gone: recycle here
                }
            });
            let drained = cq.close();
            drop(drained); // reactor side: recycle anything delivered
            if h.join().is_err() {
                panic!("disk thread panicked");
            }
            let stats = pool.stats();
            assert_eq!(stats.returns, 1, "buffer returned exactly once");
            assert_eq!(stats.outstanding, 0, "no leaked lease");
            // A late push after close is always refused.
            assert!(cq.push(completion(&pool)).is_err());
        });
    }

    /// Completions for two requests race close: every delivered-or-
    /// refused lease recycles, none double-returns.
    #[test]
    fn loom_two_deliveries_race_close() {
        loom::model(|| {
            let pool = BufPool::new(4);
            let cq = std::sync::Arc::new(CompletionQueue::new());
            let c1 = completion(&pool);
            let c2 = completion(&pool);
            let cq1 = std::sync::Arc::clone(&cq);
            let h = loom::thread::spawn(move || {
                drop(cq1.push(c1).err());
                drop(cq1.push(c2).err());
            });
            drop(cq.close());
            if h.join().is_err() {
                panic!("disk thread panicked");
            }
            drop(cq.drain()); // drain after close is empty but harmless
            let stats = pool.stats();
            assert_eq!(stats.returns, 2, "both buffers recycled");
            assert_eq!(stats.outstanding, 0);
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn completion_queue_refuses_after_close() {
        let cq = CompletionQueue::new();
        let resp = build_error(1, Status::NotFound, 0, 0);
        assert!(cq
            .push(Completion {
                slot: 0,
                gen: 0,
                seq: 0,
                key: None,
                resp
            })
            .is_ok());
        let drained = cq.close();
        assert_eq!(drained.len(), 1);
        let resp = build_error(2, Status::NotFound, 0, 0);
        assert!(cq
            .push(Completion {
                slot: 0,
                gen: 0,
                seq: 1,
                key: None,
                resp
            })
            .is_err());
        assert!(cq.drain().is_empty());
    }

    #[test]
    fn out_resp_cursor_math() {
        let (head, head_len) = wire::encode_head_parts(Status::Ok, 9, 4, None);
        let mut resp = OutResp {
            status: Status::Ok,
            mof: 0,
            offset: 0,
            head,
            head_len,
            payload: Lease::detached(vec![1, 2, 3, 4]),
            range: 0..4,
            cursor: 0,
            started: false,
            close_after: false,
            span: None,
        };
        assert_eq!(resp.total_len(), head_len + 4);
        resp.cursor = head_len + 1;
        assert_eq!(resp.remaining(), 3);
        resp.cursor = resp.total_len();
        assert_eq!(resp.remaining(), 0);
    }
}
