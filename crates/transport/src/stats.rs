//! Recovery counters and pipeline gauges for the real dataplane.
//!
//! [`FetchStats`] is the observable face of the retry/timeout machinery:
//! the chaos tests (and operators of a real deployment) read it to
//! confirm that injected faults were actually hit and recovered from,
//! rather than silently avoided. The pipeline gauges (`queued_ops`,
//! `window_inflight` and their peaks) additionally expose whether the
//! background fetch scheduler actually overlapped work: a peak window
//! occupancy above 1 is the direct witness that chunk `k+1` was on the
//! wire while chunk `k` was still streaming back.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing recovery activity plus scheduler gauges. All
/// methods are thread-safe; fetch worker threads update them
/// concurrently. Counters are monotonic; the two `*_inflight`/`queued`
/// gauges go up and down and read zero when the dataplane is quiescent.
#[derive(Debug, Default)]
pub struct FetchStats {
    retries: AtomicU64,
    reconnects: AtomicU64,
    timeouts: AtomicU64,
    resets: AtomicU64,
    corrupt_frames: AtomicU64,
    connect_failures: AtomicU64,
    resumed_bytes: AtomicU64,
    exhausted: AtomicU64,
    queued_ops: AtomicU64,
    queue_depth_peak: AtomicU64,
    window_inflight: AtomicU64,
    window_peak: AtomicU64,
    spec_discards: AtomicU64,
    corrupt_refetches: AtomicU64,
    busy_backoffs: AtomicU64,
    breaker_fast_fails: AtomicU64,
    failovers: AtomicU64,
}

/// A point-in-time copy of [`FetchStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStatsSnapshot {
    /// Request attempts re-issued after a retryable failure.
    pub retries: u64,
    /// Connections re-established after eviction of a failed one.
    pub reconnects: u64,
    /// Read/write deadline expiries observed.
    pub timeouts: u64,
    /// Peer resets / broken pipes / mid-frame EOFs observed.
    pub resets: u64,
    /// Frames discarded because they failed to decode.
    pub corrupt_frames: u64,
    /// Dial attempts that failed outright.
    pub connect_failures: u64,
    /// Bytes that did NOT need re-fetching because a retried segment
    /// fetch resumed at the already-received offset.
    pub resumed_bytes: u64,
    /// Operations that ran out of retry budget.
    pub exhausted: u64,
    /// Fetch ops currently sitting in per-supplier scheduler queues
    /// (gauge; zero when quiescent).
    pub queued_ops: u64,
    /// High-water mark of [`Self::queued_ops`].
    pub queue_depth_peak: u64,
    /// Pipelined requests currently on the wire awaiting their response
    /// (gauge; zero when quiescent).
    pub window_inflight: u64,
    /// High-water mark of [`Self::window_inflight`] — above 1 proves
    /// requests were actually pipelined, not serialized.
    pub window_peak: u64,
    /// Speculative pipelined responses discarded: the response landed at
    /// a stale offset after a short read, or its op had already
    /// completed or failed.
    pub spec_discards: u64,
    /// Targeted re-fetches issued after a payload failed its CRC32C —
    /// re-read from the supplier's disk with the cache-bypass flag, as
    /// distinct from connection-level retries.
    pub corrupt_refetches: u64,
    /// `Busy` pushback frames honored: the client slept the supplier's
    /// retry-after hint instead of tearing the connection down.
    pub busy_backoffs: u64,
    /// Fetch ops failed fast because the peer's circuit breaker was
    /// open (no wire traffic was attempted).
    pub breaker_fast_fails: u64,
    /// Fetch ops redirected to another replica of their MOF, either
    /// proactively (submitted against a peer already marked unhealthy /
    /// breaker-open) or reactively (resubmitted after such a peer
    /// failed the op). Requires a [`crate::routes::RouteTable`].
    pub failovers: u64,
}

impl FetchStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        FetchStats::default()
    }

    /// Record one re-issued attempt.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one re-dial after evicting a failed connection.
    pub fn record_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one timeout.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one peer-initiated drop.
    pub fn record_reset(&self) {
        self.resets.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one undecodable frame.
    pub fn record_corrupt_frame(&self) {
        self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one failed dial.
    pub fn record_connect_failure(&self) {
        self.connect_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` bytes preserved across a retry by resuming at the
    /// received offset instead of restarting the segment.
    pub fn record_resumed_bytes(&self, n: u64) {
        self.resumed_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one operation that exhausted its retry budget.
    pub fn record_exhausted(&self) {
        self.exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// Gauge up: one op entered a scheduler queue.
    pub fn record_op_queued(&self) {
        let depth = self.queued_ops.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Gauge down: one op left its queue for a worker's active set.
    pub fn record_op_dequeued(&self) {
        self.queued_ops.fetch_sub(1, Ordering::Relaxed);
    }

    /// Gauge up: one pipelined request went on the wire.
    pub fn record_window_send(&self) {
        let inflight = self.window_inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.window_peak.fetch_max(inflight, Ordering::Relaxed);
    }

    /// Gauge down: one pipelined response was matched to its request.
    pub fn record_window_recv(&self) {
        self.window_inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Gauge down: `n` in-flight requests died with their connection.
    pub fn record_window_drained(&self, n: u64) {
        self.window_inflight.fetch_sub(n, Ordering::Relaxed);
    }

    /// Record one discarded speculative response.
    pub fn record_spec_discard(&self) {
        self.spec_discards.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one targeted cache-bypass re-fetch after a CRC mismatch.
    pub fn record_corrupt_refetch(&self) {
        self.corrupt_refetches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one honored `Busy` pushback (slept the hint, will retry).
    pub fn record_busy_backoff(&self) {
        self.busy_backoffs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one op failed fast on an open circuit breaker.
    pub fn record_breaker_fast_fail(&self) {
        self.breaker_fast_fails.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one op redirected to a replica of its MOF.
    pub fn record_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out all counters.
    pub fn snapshot(&self) -> FetchStatsSnapshot {
        FetchStatsSnapshot {
            retries: self.retries.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
            connect_failures: self.connect_failures.load(Ordering::Relaxed),
            resumed_bytes: self.resumed_bytes.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            queued_ops: self.queued_ops.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            window_inflight: self.window_inflight.load(Ordering::Relaxed),
            window_peak: self.window_peak.load(Ordering::Relaxed),
            spec_discards: self.spec_discards.load(Ordering::Relaxed),
            corrupt_refetches: self.corrupt_refetches.load(Ordering::Relaxed),
            busy_backoffs: self.busy_backoffs.load(Ordering::Relaxed),
            breaker_fast_fails: self.breaker_fast_fails.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
        }
    }
}

impl FetchStatsSnapshot {
    /// Whether any recovery machinery fired at all.
    pub fn any_recovery(&self) -> bool {
        self.retries > 0 || self.reconnects > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = FetchStats::new();
        s.record_retry();
        s.record_retry();
        s.record_reconnect();
        s.record_timeout();
        s.record_reset();
        s.record_corrupt_frame();
        s.record_connect_failure();
        s.record_resumed_bytes(4096);
        s.record_resumed_bytes(1024);
        s.record_exhausted();
        let snap = s.snapshot();
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.reconnects, 1);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.resets, 1);
        assert_eq!(snap.corrupt_frames, 1);
        assert_eq!(snap.connect_failures, 1);
        assert_eq!(snap.resumed_bytes, 5120);
        assert_eq!(snap.exhausted, 1);
        assert!(snap.any_recovery());
        assert!(!FetchStatsSnapshot::default().any_recovery());
    }

    #[test]
    fn gauges_track_depth_and_peaks() {
        let s = FetchStats::new();
        s.record_op_queued();
        s.record_op_queued();
        s.record_op_dequeued();
        s.record_window_send();
        s.record_window_send();
        s.record_window_send();
        s.record_window_recv();
        s.record_window_drained(2);
        s.record_spec_discard();
        let snap = s.snapshot();
        assert_eq!(snap.queued_ops, 1);
        assert_eq!(snap.queue_depth_peak, 2);
        assert_eq!(snap.window_inflight, 0);
        assert_eq!(snap.window_peak, 3);
        assert_eq!(snap.spec_discards, 1);
    }

    #[test]
    fn robustness_counters_accumulate() {
        let s = FetchStats::new();
        s.record_corrupt_refetch();
        s.record_corrupt_refetch();
        s.record_busy_backoff();
        s.record_breaker_fast_fail();
        s.record_failover();
        let snap = s.snapshot();
        assert_eq!(snap.corrupt_refetches, 2);
        assert_eq!(snap.busy_backoffs, 1);
        assert_eq!(snap.breaker_fast_fails, 1);
        assert_eq!(snap.failovers, 1);
    }
}
