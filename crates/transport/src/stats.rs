//! Recovery counters for the real dataplane.
//!
//! [`FetchStats`] is the observable face of the retry/timeout machinery:
//! the chaos tests (and operators of a real deployment) read it to
//! confirm that injected faults were actually hit and recovered from,
//! rather than silently avoided.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing recovery activity. All methods are
/// thread-safe; fetch worker threads update them concurrently.
#[derive(Debug, Default)]
pub struct FetchStats {
    retries: AtomicU64,
    reconnects: AtomicU64,
    timeouts: AtomicU64,
    resets: AtomicU64,
    corrupt_frames: AtomicU64,
    connect_failures: AtomicU64,
    resumed_bytes: AtomicU64,
    exhausted: AtomicU64,
}

/// A point-in-time copy of [`FetchStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStatsSnapshot {
    /// Request attempts re-issued after a retryable failure.
    pub retries: u64,
    /// Connections re-established after eviction of a failed one.
    pub reconnects: u64,
    /// Read/write deadline expiries observed.
    pub timeouts: u64,
    /// Peer resets / broken pipes / mid-frame EOFs observed.
    pub resets: u64,
    /// Frames discarded because they failed to decode.
    pub corrupt_frames: u64,
    /// Dial attempts that failed outright.
    pub connect_failures: u64,
    /// Bytes that did NOT need re-fetching because a retried segment
    /// fetch resumed at the already-received offset.
    pub resumed_bytes: u64,
    /// Operations that ran out of retry budget.
    pub exhausted: u64,
}

impl FetchStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        FetchStats::default()
    }

    /// Record one re-issued attempt.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one re-dial after evicting a failed connection.
    pub fn record_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one timeout.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one peer-initiated drop.
    pub fn record_reset(&self) {
        self.resets.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one undecodable frame.
    pub fn record_corrupt_frame(&self) {
        self.corrupt_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one failed dial.
    pub fn record_connect_failure(&self) {
        self.connect_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` bytes preserved across a retry by resuming at the
    /// received offset instead of restarting the segment.
    pub fn record_resumed_bytes(&self, n: u64) {
        self.resumed_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one operation that exhausted its retry budget.
    pub fn record_exhausted(&self) {
        self.exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out all counters.
    pub fn snapshot(&self) -> FetchStatsSnapshot {
        FetchStatsSnapshot {
            retries: self.retries.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
            connect_failures: self.connect_failures.load(Ordering::Relaxed),
            resumed_bytes: self.resumed_bytes.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
        }
    }
}

impl FetchStatsSnapshot {
    /// Whether any recovery machinery fired at all.
    pub fn any_recovery(&self) -> bool {
        self.retries > 0 || self.reconnects > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = FetchStats::new();
        s.record_retry();
        s.record_retry();
        s.record_reconnect();
        s.record_timeout();
        s.record_reset();
        s.record_corrupt_frame();
        s.record_connect_failure();
        s.record_resumed_bytes(4096);
        s.record_resumed_bytes(1024);
        s.record_exhausted();
        let snap = s.snapshot();
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.reconnects, 1);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.resets, 1);
        assert_eq!(snap.corrupt_frames, 1);
        assert_eq!(snap.connect_failures, 1);
        assert_eq!(snap.resumed_bytes, 5120);
        assert_eq!(snap.exhausted, 1);
        assert!(snap.any_recovery());
        assert!(!FetchStatsSnapshot::default().any_recovery());
    }
}
