//! # jbs-transport — a real TCP dataplane for JBS
//!
//! Everything else in this repository simulates time; this crate moves
//! *real bytes over real sockets* to demonstrate that the JBS components
//! are implementable exactly as designed:
//!
//! * [`wire`] — the JBS fetch protocol: fixed-size framed requests
//!   addressed by `(MOF, reducer, offset, len)` and framed data responses.
//! * [`store`] — an on-disk MOF store using the byte-real
//!   [`jbs_mapred::mof`] formats (data + index files).
//! * [`server`] — the MOFSupplier: a TCP server with an in-memory
//!   IndexCache and a DataCache that serves segment ranges. A dedicated
//!   disk **prefetch thread** stages read-ahead ranges from a queue
//!   grouped by MOF, ordered by offset, and served round-robin (Fig. 5),
//!   so disk reads overlap network transmission; served buffers recycle
//!   through a bounded pool and frames go out as vectored writes.
//! * [`client`] — the NetMerger: a client that consolidates fetches over
//!   cached connections (LRU, capped — Sec. IV's 512-connection policy),
//!   pulls segments from many suppliers concurrently, and k-way merges
//!   them into a reduce-ready sorted stream. Its background fetch
//!   scheduler keeps a bounded window of **pipelined requests** in
//!   flight per supplier connection, injected round-robin across
//!   segments, with completions handed back over channels — the other
//!   half of the read/transmit overlap.
//!
//! The integration tests under `tests/` run a full multi-"node" shuffle
//! over 127.0.0.1 and verify byte-exact results against a reference sort.
//!
//! A supplier can additionally carry a memory-tier hybrid store
//! ([`ServerOptions::hybrid`], from `jbs-store-hybrid`): partitions it
//! holds are answered from its MEMORY/LOCALFILE/REMOTE tiers before the
//! DataCache/disk path, and [`server::MofSupplierServer::drain`] doubles
//! as quick decommission by pushing its contents to the REMOTE tier.
//!
//! * [`verbs`] — a software RDMA verbs layer: protection domains,
//!   registered memory regions, the Fig. 6 `rdma_listen`/`rdma_connect`/
//!   `rdma_accept` handshake with a server event thread, and one-sided
//!   `rdma_read` that moves segment bytes with **zero server-thread
//!   involvement** — the semantics behind the paper's RDMA results,
//!   runnable without InfiniBand hardware (transport is in-process).
//!
//! Real RDMA NICs are the one thing this reproduction cannot assume (see
//! DESIGN.md §2); the simulated fabric covers those protocols' timing and
//! this verbs layer covers their semantics.
//!
//! ## Failure model
//!
//! The dataplane assumes connections can fail at any point — refused
//! dials, mid-stream resets, truncated or corrupted frames, and stalls
//! past a deadline. Recovery is layered:
//!
//! * [`error`] — the [`TransportError`] taxonomy; every variant is
//!   classified retryable or not.
//! * [`retry`] — [`retry::RetryPolicy`]: bounded retries with
//!   exponential backoff and seed-deterministic jitter.
//! * [`stats`] — [`stats::FetchStats`]: retries, reconnects, timeouts,
//!   resumed bytes, observable from both client and server.
//! * [`faults`] — a seeded [`faults::FaultPlan`] that injects those
//!   same failures at named hooks, deterministically, for chaos tests
//!   (`tests/chaos_shuffle.rs`).
//!
//! On top sits the survivability layer (DESIGN.md §12): end-to-end
//! CRC32C integrity on every v3 chunk with targeted cache-bypass
//! re-fetch on mismatch, supplier admission control replying typed
//! `Busy` pushback instead of stalling (plus graceful drain shutdown),
//! and a per-peer circuit breaker in the fetch scheduler that fails
//! fast on dead peers and probes them half-open on a backoff schedule.

mod breaker;
mod bufpool;
pub mod client;
pub mod error;
pub mod faults;
pub mod iosched;
mod poll;
mod prefetch;
mod reactor;
pub mod retry;
pub mod routes;
mod sched;
pub mod server;
mod slot;
mod staging;
pub mod stats;
pub mod store;
mod sync;
pub mod verbs;
pub mod wire;

pub use bufpool::BufPoolStats;
pub use iosched::{IoClass, IoPermit, IoSchedStats, IoScheduler};
pub use client::{ClientConfig, NetMergerClient};
pub use error::TransportError;
pub use faults::{FaultAction, FaultKind, FaultPlan, Hook};
pub use retry::RetryPolicy;
pub use routes::RouteTable;
pub use server::{MofSupplierServer, ServerOptions, SupplierStatsSnapshot};
pub use stats::{FetchStats, FetchStatsSnapshot};
pub use store::MofStore;
pub use wire::{FetchRequest, FetchResponse};
