//! The DataCache staging map: the supplier's grouped read-ahead state,
//! factored out of the server generically so the `cfg(loom)` models
//! below drive the *production* hit/stage logic.
//!
//! One read at segment offset `o` stages a whole read-ahead range
//! `[o, o+ahead)`; subsequent chunk fetches of the same key are served
//! from the staged bytes without touching the store (the paper's
//! DataCache, Fig. 5). The map holds one staged range per key; staging
//! replaces the previous range.
//!
//! Two things make the map pipeline-aware:
//!
//! * a range remembers whether it reaches the **end of its segment**
//!   (`at_end`), so the prefetch machinery knows when running further
//!   ahead would be wasted disk work;
//! * a hit reports when the reader is **close to draining** the range
//!   ([`Hit::stage_next`]), which is the signal the server turns into an
//!   asynchronous read-ahead job — the disk thread stages the next range
//!   while the network is still transmitting this one.
//!
//! Ranges are stored as refcounted [`Lease`]s over pooled buffers. The
//! threaded server copies a hit out into a caller-supplied buffer
//! ([`StageCache::hit_into`]); the event-loop server instead *clones
//! the lease* ([`StageCache::hit_lease`]) and transmits straight from
//! the cached allocation — zero copies between DataCache and socket,
//! with eviction safe at any moment because the in-flight clone keeps
//! the bytes alive. Either way, staging returns the evicted range's
//! lease so its buffer recycles as soon as the last pin drops.
//!
//! Locking: the single `staged` mutex is held only to copy a hit out
//! (or clone a lease) or swap a range in — never across disk I/O. In
//! the documented order it sits after `store`, because the prefetch
//! path reads the store first and stages the result; a hit never takes
//! `store` at all.

use crate::bufpool::Lease;
use crate::sync::{lock, Mutex};
use std::collections::HashMap;
use std::hash::Hash;

/// One staged read-ahead range.
struct StagedRange {
    /// Segment offset of `bytes[0]`.
    offset: u64,
    bytes: Lease,
    /// Whether this range reaches the end of its segment (a shorter-
    /// than-requested store read proved there is nothing beyond it).
    at_end: bool,
}

/// What a successful [`StageCache::hit_into`] learned beyond the bytes.
pub(crate) struct Hit {
    /// `Some(next)` when the hit consumed into the low-water tail of the
    /// range and the segment continues past it: the caller should queue
    /// an asynchronous read-ahead starting at absolute offset `next`.
    pub(crate) stage_next: Option<u64>,
}

/// A zero-copy hit: a clone of the staged lease plus the byte window of
/// the request within it. The bytes stay pinned (and the underlying
/// buffer un-recycled) for exactly as long as the caller holds the
/// lease — through an arbitrary number of partial-write resumptions.
pub(crate) struct LeaseHit {
    pub(crate) lease: Lease,
    /// The request's window within `lease` (`lo..hi`, already clamped
    /// for at-end ranges).
    pub(crate) range: std::ops::Range<usize>,
    /// Same read-ahead signal as [`Hit::stage_next`].
    pub(crate) stage_next: Option<u64>,
}

/// Keyed staging map (the DataCache).
pub(crate) struct StageCache<K> {
    staged: Mutex<HashMap<K, StagedRange>>,
}

impl<K: Hash + Eq> StageCache<K> {
    /// An empty cache.
    pub(crate) fn new() -> Self {
        StageCache {
            staged: Mutex::new(HashMap::new()),
        }
    }

    /// The window of `[offset, offset+want)` within staged range `s`,
    /// or `None` on a miss. Checked arithmetic makes the test total: an
    /// offset below the staged base, a range past its end, or any u64
    /// overflow is a miss, never a panic. A request running into (or
    /// past) the end of an **at-end** range is served clamped —
    /// possibly empty: the segment truly ends inside the range, so a
    /// shorter answer is the final answer, and treating it as a miss
    /// would send pipelined past-EOF speculation to the disk, where its
    /// empty result would evict the live range it raced.
    fn window(s: &StagedRange, offset: u64, want: u64) -> Option<std::ops::Range<usize>> {
        let lo = offset.checked_sub(s.offset).map(|lo| lo as usize)?;
        match lo
            .checked_add(want as usize)
            .filter(|&hi| hi <= s.bytes.len() && lo <= hi)
        {
            Some(hi) => Some(lo..hi),
            None if s.at_end => {
                let lo = lo.min(s.bytes.len());
                Some(lo..s.bytes.len())
            }
            None => None,
        }
    }

    /// The read-ahead signal for a hit of `[offset, offset+want)` on `s`.
    fn stage_next(s: &StagedRange, offset: u64, want: u64, low_water: u64) -> Option<u64> {
        let end = s.offset.saturating_add(s.bytes.len() as u64);
        let remaining = end.saturating_sub(offset.saturating_add(want));
        (!s.at_end && remaining <= low_water).then_some(end)
    }

    /// Serve `[offset, offset+want)` from the staged range into `out`,
    /// if the whole request lies inside it (the threaded server's
    /// copy-out path).
    ///
    /// On a hit, [`Hit::stage_next`] is set when at most `low_water`
    /// bytes remain beyond the request and the segment continues past
    /// this range.
    pub(crate) fn hit_into(
        &self,
        key: &K,
        offset: u64,
        want: u64,
        low_water: u64,
        out: &mut Vec<u8>,
    ) -> Option<Hit> {
        let staged = lock(&self.staged);
        let s = staged.get(key)?;
        let range = Self::window(s, offset, want)?;
        out.clear();
        out.extend_from_slice(s.bytes.get(range).unwrap_or_default());
        Some(Hit {
            stage_next: Self::stage_next(s, offset, want, low_water),
        })
    }

    /// Serve `[offset, offset+want)` as a pinned window over the staged
    /// lease — no copy (the event-loop server's path). Identical hit
    /// semantics to [`StageCache::hit_into`], including at-end clamping
    /// and the `stage_next` signal.
    pub(crate) fn hit_lease(
        &self,
        key: &K,
        offset: u64,
        want: u64,
        low_water: u64,
    ) -> Option<LeaseHit> {
        let staged = lock(&self.staged);
        let s = staged.get(key)?;
        let range = Self::window(s, offset, want)?;
        Some(LeaseHit {
            lease: s.bytes.clone(),
            range,
            stage_next: Self::stage_next(s, offset, want, low_water),
        })
    }

    /// Stage `bytes` (read from the store at `offset`) as `key`'s new
    /// range, serve its first `want` bytes into `out`, and return the
    /// evicted range's lease (if any) — dropping it recycles the buffer
    /// once no in-flight transmit still pins it.
    pub(crate) fn stage_into(
        &self,
        key: K,
        offset: u64,
        bytes: Lease,
        at_end: bool,
        want: u64,
        out: &mut Vec<u8>,
    ) -> Option<Lease> {
        let serve_len = (want as usize).min(bytes.len());
        out.clear();
        out.extend_from_slice(bytes.get(..serve_len).unwrap_or_default());
        self.stage_lease(key, offset, bytes, at_end)
    }

    /// Stage `bytes` as `key`'s new range without serving anything (the
    /// event-loop path clones the lease *before* staging and builds its
    /// response window from the clone). Returns the evicted lease.
    pub(crate) fn stage_lease(
        &self,
        key: K,
        offset: u64,
        bytes: Lease,
        at_end: bool,
    ) -> Option<Lease> {
        let evicted = lock(&self.staged).insert(
            key,
            StagedRange {
                offset,
                bytes,
                at_end,
            },
        );
        evicted.map(|r| r.bytes)
    }

    /// Drop `key`'s staged range, returning its lease. The cache-bypass
    /// re-fetch path: after a checksum mismatch the staged bytes are
    /// suspect and must not be served again.
    pub(crate) fn invalidate(&self, key: &K) -> Option<Lease> {
        lock(&self.staged).remove(key).map(|r| r.bytes)
    }

    /// Whether a read-ahead starting at `offset` would be redundant:
    /// the staged range already contains `offset`, or it reaches the
    /// segment end and `offset` lies at or beyond it.
    pub(crate) fn covers(&self, key: &K, offset: u64) -> bool {
        let staged = lock(&self.staged);
        match staged.get(key) {
            Some(s) => {
                let end = s.offset.saturating_add(s.bytes.len() as u64);
                (offset >= s.offset && offset < end) || (s.at_end && offset >= end)
            }
            None => false,
        }
    }
}

/// Bounded model checks of the staging logic. Build and run with
/// `RUSTFLAGS="--cfg loom" cargo test -p jbs-transport --lib loom_`.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use std::sync::Arc;

    fn hit(cache: &StageCache<u8>, key: u8, offset: u64, want: u64) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        cache.hit_into(&key, offset, want, 0, &mut out).map(|_| out)
    }

    fn stage(cache: &StageCache<u8>, key: u8, offset: u64, bytes: Vec<u8>, want: u64) -> Vec<u8> {
        let mut out = Vec::new();
        cache.stage_into(key, offset, Lease::detached(bytes), false, want, &mut out);
        out
    }

    /// Two connection threads race a stage against a hit on the same
    /// key. In every interleaving a served chunk is byte-exact for its
    /// requested range — a reader sees a complete staged range or a
    /// miss, never a torn one.
    #[test]
    fn loom_hit_races_stage_without_tearing() {
        loom::model(|| {
            let cache = Arc::new(StageCache::<u8>::new());
            let c2 = Arc::clone(&cache);
            let h = loom::thread::spawn(move || stage(&c2, 0u8, 0, vec![1, 2, 3, 4], 2));
            if let Some(chunk) = hit(&cache, 0u8, 1, 2) {
                assert_eq!(chunk, vec![2, 3]);
            }
            let served = match h.join() {
                Ok(s) => s,
                Err(_) => panic!("stager panicked"),
            };
            assert_eq!(served, vec![1, 2]);
            // After both finish, the staged range serves hits exactly.
            assert_eq!(hit(&cache, 0u8, 2, 2), Some(vec![3, 4]));
        });
    }

    /// Two threads stage different ranges for one key concurrently. The
    /// survivor is one of the two complete ranges (last write wins),
    /// a later hit is consistent with whichever survived, and exactly
    /// one of the racers gets the loser's lease back for recycling.
    #[test]
    fn loom_concurrent_stages_last_write_wins() {
        loom::model(|| {
            let cache = Arc::new(StageCache::<u8>::new());
            let c2 = Arc::clone(&cache);
            let h = loom::thread::spawn(move || {
                let mut out = Vec::new();
                let evicted =
                    c2.stage_into(0u8, 0, Lease::detached(vec![10, 11]), false, 2, &mut out);
                (out, evicted)
            });
            let mut out2 = Vec::new();
            let ev2 =
                cache.stage_into(0u8, 2, Lease::detached(vec![20, 21]), false, 2, &mut out2);
            assert_eq!(out2, vec![20, 21]);
            let (out1, ev1) = match h.join() {
                Ok(r) => r,
                Err(_) => panic!("stager panicked"),
            };
            assert_eq!(out1, vec![10, 11]);
            let survivor = (hit(&cache, 0u8, 0, 2), hit(&cache, 0u8, 2, 2));
            assert!(
                matches!(survivor, (Some(_), None) | (None, Some(_))),
                "exactly one complete range survives: {survivor:?}"
            );
            // The losing range's lease was returned to exactly one
            // caller (the one that staged second); never both, never a
            // phantom lease.
            let evictions = [&ev1, &ev2].iter().filter(|e| e.is_some()).count();
            assert_eq!(evictions, 1, "{ev1:?} {ev2:?}");
        });
    }

    /// The partial-write-resume vs. eviction race (satellite model): a
    /// transmitter clones the staged lease (as the reactor does before
    /// its first `writev`), then a restage evicts the range while the
    /// transmit is still in flight. In every interleaving the
    /// transmitter's clone reads the original payload byte-exactly —
    /// eviction can drop the cache entry but never the pinned bytes.
    #[test]
    fn loom_eviction_races_pinned_transmit() {
        loom::model(|| {
            let cache = Arc::new(StageCache::<u8>::new());
            let mut out = Vec::new();
            cache.stage_into(0u8, 0, Lease::detached(vec![1, 2, 3, 4]), false, 0, &mut out);
            let pinned = cache.hit_lease(&0u8, 1, 2, 0).expect("staged range hit");
            let c2 = Arc::clone(&cache);
            let h = loom::thread::spawn(move || {
                // Restage: evicts the range the transmitter pinned.
                let mut out = Vec::new();
                let ev = c2.stage_into(0u8, 50, Lease::detached(vec![9]), false, 0, &mut out);
                drop(ev); // the cache's pin goes away mid-transmit
            });
            // "Resume the partial write": the clone still reads true.
            let window = pinned.lease.get(pinned.range.clone()).unwrap_or_default();
            assert_eq!(window, &[2, 3], "pinned bytes survived eviction");
            if h.join().is_err() {
                panic!("restager panicked");
            }
            assert_eq!(window, &[2, 3]);
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn hit(cache: &StageCache<u8>, key: u8, offset: u64, want: u64) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        cache.hit_into(&key, offset, want, 0, &mut out).map(|_| out)
    }

    fn hit_zc(cache: &StageCache<u8>, key: u8, offset: u64, want: u64) -> Option<Vec<u8>> {
        cache
            .hit_lease(&key, offset, want, 0)
            .map(|h| h.lease.get(h.range).unwrap_or_default().to_vec())
    }

    fn stage(cache: &StageCache<u8>, key: u8, offset: u64, bytes: Vec<u8>, want: u64) -> Vec<u8> {
        let mut out = Vec::new();
        cache.stage_into(key, offset, Lease::detached(bytes), false, want, &mut out);
        out
    }

    #[test]
    fn hit_requires_containment() {
        let cache = StageCache::<u8>::new();
        assert_eq!(hit(&cache, 1, 0, 4), None, "empty cache misses");
        let served = stage(&cache, 1, 100, vec![1, 2, 3, 4, 5, 6], 4);
        assert_eq!(served, vec![1, 2, 3, 4]);
        assert_eq!(hit(&cache, 1, 102, 3), Some(vec![3, 4, 5]));
        assert_eq!(hit(&cache, 1, 99, 2), None, "below staged base");
        assert_eq!(hit(&cache, 1, 104, 4), None, "past staged end");
        assert_eq!(hit(&cache, 1, u64::MAX, 2), None, "overflowing offset");
    }

    #[test]
    fn lease_hit_matches_copy_hit() {
        let cache = StageCache::<u8>::new();
        stage(&cache, 1, 100, vec![1, 2, 3, 4, 5, 6], 0);
        for (offset, want) in [(100, 4), (102, 3), (99, 2), (104, 4), (u64::MAX, 2)] {
            assert_eq!(
                hit(&cache, 1, offset, want),
                hit_zc(&cache, 1, offset, want),
                "copy and zero-copy hits must agree at ({offset}, {want})"
            );
        }
    }

    #[test]
    fn lease_hit_reports_stage_next_like_hit_into() {
        let cache = StageCache::<u8>::new();
        let mut out = Vec::new();
        cache.stage_into(1, 100, Lease::detached(vec![0; 8]), false, 2, &mut out);
        let h = cache.hit_lease(&1, 100, 2, 2).unwrap();
        assert_eq!(h.stage_next, None);
        let h = cache.hit_lease(&1, 104, 2, 2).unwrap();
        assert_eq!(h.stage_next, Some(108));
    }

    #[test]
    fn stage_serves_at_most_available() {
        let cache = StageCache::<u8>::new();
        let served = stage(&cache, 1, 0, vec![7, 8], 10);
        assert_eq!(served, vec![7, 8], "want capped to staged bytes");
    }

    #[test]
    fn restage_replaces_range_and_returns_evicted_buffer() {
        let cache = StageCache::<u8>::new();
        let mut out = Vec::new();
        assert!(cache
            .stage_into(1, 0, Lease::detached(vec![1, 2, 3]), false, 3, &mut out)
            .is_none());
        let evicted = cache.stage_into(1, 10, Lease::detached(vec![4, 5, 6]), false, 3, &mut out);
        assert_eq!(
            evicted.as_deref(),
            Some(&[1u8, 2, 3][..]),
            "old lease comes back"
        );
        assert_eq!(hit(&cache, 1, 0, 2), None, "old range gone");
        assert_eq!(hit(&cache, 1, 10, 3), Some(vec![4, 5, 6]));
    }

    #[test]
    fn tail_hits_request_read_ahead() {
        let cache = StageCache::<u8>::new();
        let mut out = Vec::new();
        // Range [100, 108), segment continues beyond it.
        cache.stage_into(1, 100, Lease::detached(vec![0; 8]), false, 2, &mut out);
        // Head of the range with 2 bytes of low-water: plenty left.
        let h = cache.hit_into(&1, 100, 2, 2, &mut out).unwrap();
        assert_eq!(h.stage_next, None);
        // Consuming to within low-water of the end: stage at 108 next.
        let h = cache.hit_into(&1, 104, 2, 2, &mut out).unwrap();
        assert_eq!(h.stage_next, Some(108));
        // Same tail hit on an at-end range: nothing beyond to stage.
        cache.stage_into(2, 100, Lease::detached(vec![0; 8]), true, 2, &mut out);
        let h = cache.hit_into(&2, 104, 2, 2, &mut out).unwrap();
        assert_eq!(h.stage_next, None);
    }

    #[test]
    fn at_end_range_serves_clamped_and_empty_tails() {
        let cache = StageCache::<u8>::new();
        let mut out = Vec::new();
        cache.stage_into(1, 100, Lease::detached(vec![1, 2, 3, 4]), true, 0, &mut out);
        // Runs into the end: clamped, not a miss.
        assert_eq!(hit(&cache, 1, 102, 8), Some(vec![3, 4]));
        assert_eq!(hit_zc(&cache, 1, 102, 8), Some(vec![3, 4]));
        // At and past the end: empty — the stream's EOF answer.
        assert_eq!(hit(&cache, 1, 104, 4), Some(vec![]));
        assert_eq!(hit(&cache, 1, 200, 4), Some(vec![]));
        assert_eq!(hit_zc(&cache, 1, 200, 4), Some(vec![]));
        // A mid-segment range still misses past its staged end.
        cache.stage_into(2, 100, Lease::detached(vec![1, 2, 3, 4]), false, 0, &mut out);
        assert_eq!(hit(&cache, 2, 102, 8), None);
        assert_eq!(hit_zc(&cache, 2, 102, 8), None);
    }

    #[test]
    fn invalidate_drops_range_and_returns_buffer() {
        let cache = StageCache::<u8>::new();
        assert!(cache.invalidate(&1).is_none(), "nothing staged");
        let mut out = Vec::new();
        cache.stage_into(1, 0, Lease::detached(vec![1, 2, 3]), false, 3, &mut out);
        assert_eq!(cache.invalidate(&1).as_deref(), Some(&[1u8, 2, 3][..]));
        assert_eq!(hit(&cache, 1, 0, 2), None, "range gone after invalidate");
    }

    #[test]
    fn covers_tracks_range_and_segment_end() {
        let cache = StageCache::<u8>::new();
        assert!(!cache.covers(&1, 0), "empty cache covers nothing");
        let mut out = Vec::new();
        cache.stage_into(1, 100, Lease::detached(vec![0; 8]), false, 0, &mut out);
        assert!(cache.covers(&1, 100));
        assert!(cache.covers(&1, 107));
        assert!(!cache.covers(&1, 108), "just past a mid-segment range");
        assert!(!cache.covers(&1, 99));
        // An at-end range also covers everything past the segment end.
        cache.stage_into(2, 100, Lease::detached(vec![0; 8]), true, 0, &mut out);
        assert!(cache.covers(&2, 108));
        assert!(cache.covers(&2, 10_000));
    }

    #[test]
    fn eviction_mid_transmit_keeps_pinned_bytes_alive() {
        let cache = StageCache::<u8>::new();
        let mut out = Vec::new();
        cache.stage_into(1, 0, Lease::detached(vec![1, 2, 3, 4]), false, 0, &mut out);
        let pinned = cache.hit_lease(&1, 1, 2, 0).expect("hit");
        // Evict while the "transmit" still holds its lease clone.
        let evicted = cache.stage_into(1, 50, Lease::detached(vec![9]), false, 0, &mut out);
        drop(evicted);
        assert_eq!(pinned.lease.get(pinned.range).unwrap_or_default(), &[2, 3]);
    }
}
