//! The DataCache staging map: the supplier's grouped read-ahead state,
//! factored out of the server generically so the `cfg(loom)` models
//! below drive the *production* hit/stage logic.
//!
//! One read at segment offset `o` stages a whole read-ahead range
//! `[o, o+ahead)`; subsequent chunk fetches of the same key are served
//! from the staged bytes without touching the store (the paper's
//! DataCache, Fig. 5). The map holds one staged range per key; staging
//! replaces the previous range.
//!
//! Locking: the single `staged` mutex is held only to copy a hit out or
//! swap a range in — never across disk I/O. In the documented order it
//! sits after `store`, because the server's slow path reads the store
//! first and stages the result; a hit never takes `store` at all.

use crate::sync::{lock, Mutex};
use std::collections::HashMap;
use std::hash::Hash;

/// One staged read-ahead range.
struct StagedRange {
    /// Segment offset of `bytes[0]`.
    offset: u64,
    bytes: Vec<u8>,
}

/// Keyed staging map (the DataCache).
pub(crate) struct StageCache<K> {
    staged: Mutex<HashMap<K, StagedRange>>,
}

impl<K: Hash + Eq> StageCache<K> {
    /// An empty cache.
    pub(crate) fn new() -> Self {
        StageCache {
            staged: Mutex::new(HashMap::new()),
        }
    }

    /// Serve `[offset, offset+want)` from the staged range, if the whole
    /// request lies inside it. Checked arithmetic and `get` make the hit
    /// test total: an offset below the staged base, a range past its
    /// end, or any u64 overflow is a miss, never a panic.
    pub(crate) fn hit(&self, key: &K, offset: u64, want: u64) -> Option<Vec<u8>> {
        let staged = lock(&self.staged);
        let s = staged.get(key)?;
        let lo = offset.checked_sub(s.offset).map(|lo| lo as usize)?;
        let chunk = lo
            .checked_add(want as usize)
            .and_then(|hi| s.bytes.get(lo..hi))?;
        Some(chunk.to_vec())
    }

    /// Stage `bytes` (read from the store at `offset`) as `key`'s new
    /// range and serve the first `want` bytes of it.
    pub(crate) fn stage(&self, key: K, offset: u64, bytes: Vec<u8>, want: u64) -> Vec<u8> {
        let serve_len = (want as usize).min(bytes.len());
        let payload = bytes.get(..serve_len).unwrap_or_default().to_vec();
        lock(&self.staged).insert(key, StagedRange { offset, bytes });
        payload
    }
}

/// Bounded model checks of the staging logic. Build and run with
/// `RUSTFLAGS="--cfg loom" cargo test -p jbs-transport --lib loom_`.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use std::sync::Arc;

    /// Two connection threads race a stage against a hit on the same
    /// key. In every interleaving a served chunk is byte-exact for its
    /// requested range — a reader sees a complete staged range or a
    /// miss, never a torn one.
    #[test]
    fn loom_hit_races_stage_without_tearing() {
        loom::model(|| {
            let cache = Arc::new(StageCache::<u8>::new());
            let c2 = Arc::clone(&cache);
            let h = loom::thread::spawn(move || c2.stage(0u8, 0, vec![1, 2, 3, 4], 2));
            if let Some(chunk) = cache.hit(&0u8, 1, 2) {
                assert_eq!(chunk, vec![2, 3]);
            }
            let served = match h.join() {
                Ok(s) => s,
                Err(_) => panic!("stager panicked"),
            };
            assert_eq!(served, vec![1, 2]);
            // After both finish, the staged range serves hits exactly.
            assert_eq!(cache.hit(&0u8, 2, 2), Some(vec![3, 4]));
        });
    }

    /// Two threads stage different ranges for one key concurrently. The
    /// survivor is one of the two complete ranges (last write wins),
    /// and a later hit is consistent with whichever survived.
    #[test]
    fn loom_concurrent_stages_last_write_wins() {
        loom::model(|| {
            let cache = Arc::new(StageCache::<u8>::new());
            let c2 = Arc::clone(&cache);
            let h = loom::thread::spawn(move || c2.stage(0u8, 0, vec![10, 11], 2));
            let s2 = cache.stage(0u8, 2, vec![20, 21], 2);
            assert_eq!(s2, vec![20, 21]);
            match h.join() {
                Ok(s1) => assert_eq!(s1, vec![10, 11]),
                Err(_) => panic!("stager panicked"),
            }
            let survivor = (cache.hit(&0u8, 0, 2), cache.hit(&0u8, 2, 2));
            assert!(
                matches!(survivor, (Some(_), None) | (None, Some(_))),
                "exactly one complete range survives: {survivor:?}"
            );
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn hit_requires_containment() {
        let cache = StageCache::<u8>::new();
        assert_eq!(cache.hit(&1, 0, 4), None, "empty cache misses");
        let served = cache.stage(1, 100, vec![1, 2, 3, 4, 5, 6], 4);
        assert_eq!(served, vec![1, 2, 3, 4]);
        assert_eq!(cache.hit(&1, 102, 3), Some(vec![3, 4, 5]));
        assert_eq!(cache.hit(&1, 99, 2), None, "below staged base");
        assert_eq!(cache.hit(&1, 104, 4), None, "past staged end");
        assert_eq!(cache.hit(&1, u64::MAX, 2), None, "overflowing offset");
    }

    #[test]
    fn stage_serves_at_most_available() {
        let cache = StageCache::<u8>::new();
        let served = cache.stage(1, 0, vec![7, 8], 10);
        assert_eq!(served, vec![7, 8], "want capped to staged bytes");
    }

    #[test]
    fn restage_replaces_range() {
        let cache = StageCache::<u8>::new();
        cache.stage(1, 0, vec![1, 2, 3], 3);
        cache.stage(1, 10, vec![4, 5, 6], 3);
        assert_eq!(cache.hit(&1, 0, 2), None, "old range gone");
        assert_eq!(cache.hit(&1, 10, 3), Some(vec![4, 5, 6]));
    }
}
