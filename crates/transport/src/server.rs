//! The MOFSupplier server: a real TCP server over a [`MofStore`].
//!
//! One supplier runs per "node". It answers framed [`FetchRequest`]s on
//! cached connections, and mirrors the paper's server design:
//!
//! * an in-memory **IndexCache** (the `MofStore` caches parsed indexes);
//! * a **DataCache** with grouped read-ahead: a fetch at segment offset
//!   `o` stages `prefetch_batch` buffers beyond `o` in one file read, so
//!   consecutive chunk fetches of the same segment are served from memory
//!   and the disk sees long sequential runs (Fig. 5).
//!
//! For chaos testing the server takes an optional [`FaultPlan`]
//! ([`ServerOptions::faults`]): at the accept and response-write hooks it
//! can refuse connections, reset mid-exchange, truncate or corrupt a
//! frame, or stall before writing — all on a seed-deterministic schedule.
//! [`MofSupplierServer::start_on`] rebinds a *specific* address, which is
//! how a test restarts a "dead" supplier where clients expect it.

use crate::faults::{self, FaultAction, FaultPlan, FaultStatsSnapshot, Hook};
use crate::staging::StageCache;
use crate::stats::{FetchStats, FetchStatsSnapshot};
use crate::store::MofStore;
use crate::sync::{lock, Mutex};
use crate::wire::{FetchRequest, FetchResponse, Status};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server statistics.
#[derive(Debug, Default)]
pub struct SupplierStats {
    /// Requests served.
    pub requests: AtomicU64,
    /// Payload bytes served.
    pub bytes: AtomicU64,
    /// Requests satisfied from the DataCache (read-ahead hits).
    pub datacache_hits: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
}

/// Tunables for a supplier.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Transport buffer (chunk) size; the paper uses 128 KB.
    pub buffer_bytes: u64,
    /// Read-ahead batch, in buffers; the paper uses 8.
    pub prefetch_batch: u64,
    /// Optional fault-injection plan (tests only; `None` in production).
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            buffer_bytes: 128 << 10,
            prefetch_batch: 8,
            faults: None,
        }
    }
}

struct Shared {
    store: Mutex<MofStore>,
    /// DataCache: one staged read-ahead range per (mof, reducer); the
    /// hit/stage logic lives in [`StageCache`], where the `cfg(loom)`
    /// models exercise it.
    staged: StageCache<(u64, u32)>,
    stats: SupplierStats,
    fetch_stats: FetchStats,
    stop: AtomicBool,
    options: ServerOptions,
}

/// A running MOFSupplier.
pub struct MofSupplierServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl MofSupplierServer {
    /// Start a supplier over `store` on an ephemeral 127.0.0.1 port, with
    /// the paper's defaults: 128 KB transport buffers, 8-buffer read-ahead.
    pub fn start(store: MofStore) -> io::Result<Self> {
        Self::start_with_options(store, ServerOptions::default())
    }

    /// Start with explicit transport-buffer size and prefetch batch.
    pub fn start_with(store: MofStore, buffer_bytes: u64, prefetch_batch: u64) -> io::Result<Self> {
        Self::start_with_options(
            store,
            ServerOptions {
                buffer_bytes,
                prefetch_batch,
                ..ServerOptions::default()
            },
        )
    }

    /// Start with full options on an ephemeral port.
    pub fn start_with_options(store: MofStore, options: ServerOptions) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        Self::run(listener, store, options)
    }

    /// Start on a *specific* address — the restart path for a supplier
    /// that died and must come back where clients already expect it.
    /// Retries the bind briefly in case the previous incarnation's socket
    /// is still draining.
    pub fn start_on(addr: SocketAddr, store: MofStore, options: ServerOptions) -> io::Result<Self> {
        let mut last_err = None;
        for _ in 0..50 {
            match TcpListener::bind(addr) {
                Ok(listener) => return Self::run(listener, store, options),
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::AddrInUse, format!("cannot rebind {addr}"))
        }))
    }

    fn run(listener: TcpListener, store: MofStore, options: ServerOptions) -> io::Result<Self> {
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            store: Mutex::new(store),
            staged: StageCache::new(),
            stats: SupplierStats::default(),
            fetch_stats: FetchStats::new(),
            stop: AtomicBool::new(false),
            options: ServerOptions {
                buffer_bytes: options.buffer_bytes.max(1),
                prefetch_batch: options.prefetch_batch.max(1),
                ..options
            },
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_shared.stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                match faults::decide(&accept_shared.options.faults, Hook::ServerAccept) {
                    FaultAction::RefuseConnect | FaultAction::Reset => {
                        // Drop the accepted socket before any exchange;
                        // the client sees a refused/reset connection.
                        drop(stream);
                        continue;
                    }
                    FaultAction::Stall(d) => std::thread::sleep(d),
                    _ => {}
                }
                accept_shared
                    .stats
                    .connections
                    .fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || {
                    handle_connection(stream, &conn_shared);
                });
            }
        });
        Ok(MofSupplierServer {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server statistics.
    pub fn stats(&self) -> &SupplierStats {
        &self.shared.stats
    }

    /// Recovery counters observed server-side (client resets/timeouts
    /// seen on connections).
    pub fn fetch_stats(&self) -> FetchStatsSnapshot {
        self.shared.fetch_stats.snapshot()
    }

    /// Faults injected so far, if a plan is installed.
    pub fn fault_stats(&self) -> Option<FaultStatsSnapshot> {
        self.shared.options.faults.as_ref().map(|p| p.stats())
    }

    /// Stop accepting and shut down.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Wake the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MofSupplierServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.do_shutdown();
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    if let Err(e) = serve_connection(stream, shared) {
        // The peer vanished or the socket failed: count it, drop the
        // connection, keep the supplier alive.
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                shared.fetch_stats.record_timeout()
            }
            _ => shared.fetch_stats.record_reset(),
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = io::BufReader::new(stream.try_clone()?);
    let mut writer = io::BufWriter::new(stream);
    use std::io::Write;
    while let Some(req) = FetchRequest::read_from(&mut reader)? {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let resp = serve(shared, req);
        // Count before the response is visible to the peer, so stats read
        // after a completed exchange are never stale.
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        shared
            .stats
            .bytes
            .fetch_add(resp.payload.len() as u64, Ordering::Relaxed);
        match faults::decide(&shared.options.faults, Hook::ServerWriteResponse) {
            FaultAction::Allow | FaultAction::RefuseConnect => {
                resp.write_to(&mut writer)?;
            }
            FaultAction::Stall(d) => {
                // Stall first: the peer's read deadline runs while the
                // response is withheld.
                std::thread::sleep(d);
                resp.write_to(&mut writer)?;
            }
            FaultAction::Reset => {
                // Drop mid-exchange: the request was consumed but no
                // response will ever come.
                return Ok(());
            }
            FaultAction::Truncate => {
                // Send a prefix of the frame, then drop the connection.
                let mut frame = Vec::new();
                resp.write_to(&mut frame)?;
                writer.write_all(frame.get(..frame.len() / 2).unwrap_or_default())?;
                writer.flush()?;
                return Ok(());
            }
            FaultAction::Corrupt => {
                // Flip a high byte of the length header. The client's
                // decoder rejects it via the MAX_PAYLOAD cap — and the
                // status byte is untouched, so the damage cannot be
                // mistaken for a legitimate error verdict.
                let mut frame = Vec::new();
                resp.write_to(&mut frame)?;
                if let Some(b) = frame.get_mut(1) {
                    *b ^= 0xFF;
                }
                writer.write_all(&frame)?;
            }
        }
        writer.flush()?;
    }
    Ok(())
}

/// Serve one request through the DataCache read-ahead.
fn serve(shared: &Shared, req: FetchRequest) -> FetchResponse {
    let want = if req.len == 0 {
        u64::MAX
    } else {
        req.len.min(shared.options.buffer_bytes)
    };

    // Whole-segment requests bypass staging.
    if req.len == 0 {
        let mut store = lock(&shared.store);
        return match store.read_segment_range(req.mof, req.reducer, req.offset, 0) {
            Ok(Some(bytes)) => FetchResponse::ok(bytes),
            Ok(None) => FetchResponse::error(Status::NotFound),
            Err(_) => FetchResponse::error(Status::BadRequest),
        };
    }

    let key = (req.mof, req.reducer);
    // Fast path: the range is already staged by a previous read-ahead.
    if let Some(chunk) = shared.staged.hit(&key, req.offset, want) {
        shared.stats.datacache_hits.fetch_add(1, Ordering::Relaxed);
        return FetchResponse::ok(chunk);
    }

    // Slow path: one grouped read-ahead of `prefetch_batch` buffers.
    let ahead = shared.options.buffer_bytes * shared.options.prefetch_batch;
    let read = {
        let mut store = lock(&shared.store);
        store.read_segment_range(req.mof, req.reducer, req.offset, ahead)
    };
    match read {
        Ok(Some(bytes)) => FetchResponse::ok(shared.staged.stage(key, req.offset, bytes, want)),
        Ok(None) => FetchResponse::error(Status::NotFound),
        Err(_) => FetchResponse::error(Status::BadRequest),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;
    use jbs_mapred::merge::Record;

    fn store_with_one_mof(records: Vec<Record>) -> MofStore {
        let mut store = MofStore::temp().unwrap();
        store.write_mof(0, records, 1, |_| 0).unwrap();
        store
    }

    fn connect(addr: SocketAddr) -> (io::BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        (io::BufReader::new(stream.try_clone().unwrap()), stream)
    }

    #[test]
    fn serves_whole_segment() {
        let recs: Vec<Record> = (0..100)
            .map(|i| (format!("k{i:03}").into_bytes(), vec![i as u8; 16]))
            .collect();
        let server = MofSupplierServer::start(store_with_one_mof(recs)).unwrap();
        let (mut r, mut w) = connect(server.addr());
        FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert!(!resp.payload.is_empty());
        assert_eq!(server.stats().requests.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn chunked_fetch_reassembles_and_hits_datacache() {
        let recs: Vec<Record> = (0..2000)
            .map(|i| (format!("k{i:05}").into_bytes(), vec![0xAB; 64]))
            .collect();
        let store = store_with_one_mof(recs);
        let server = MofSupplierServer::start_with(store, 4 << 10, 8).unwrap();
        let (mut r, mut w) = connect(server.addr());

        // Whole segment as reference.
        FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
        let whole = FetchResponse::read_from(&mut r).unwrap().payload;

        // Chunked fetch on the same (reused) connection.
        let mut assembled = Vec::new();
        let mut off = 0u64;
        loop {
            FetchRequest {
                mof: 0,
                reducer: 0,
                offset: off,
                len: 4 << 10,
            }
            .write_to(&mut w)
            .unwrap();
            let resp = FetchResponse::read_from(&mut r).unwrap();
            assert_eq!(resp.status, Status::Ok);
            if resp.payload.is_empty() {
                break;
            }
            off += resp.payload.len() as u64;
            assembled.extend_from_slice(&resp.payload);
        }
        assert_eq!(assembled, whole);
        // Read-ahead must have served most chunks from memory.
        let hits = server.stats().datacache_hits.load(Ordering::Relaxed);
        let reqs = server.stats().requests.load(Ordering::Relaxed);
        assert!(hits * 2 > reqs, "hits {hits} of {reqs} requests");
        server.shutdown();
    }

    #[test]
    fn unknown_mof_is_not_found() {
        let server =
            MofSupplierServer::start(store_with_one_mof(vec![(b"k".to_vec(), b"v".to_vec())]))
                .unwrap();
        let (mut r, mut w) = connect(server.addr());
        FetchRequest::whole_segment(42, 0).write_to(&mut w).unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::NotFound);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_isolated() {
        let recs: Vec<Record> = (0..500)
            .map(|i| (format!("{i:06}").into_bytes(), vec![1; 32]))
            .collect();
        let server = Arc::new(MofSupplierServer::start(store_with_one_mof(recs)).unwrap());
        let addr = server.addr();
        let mut joins = Vec::new();
        for _ in 0..8 {
            joins.push(std::thread::spawn(move || {
                let (mut r, mut w) = connect(addr);
                FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
                FetchResponse::read_from(&mut r).unwrap().payload.len()
            }));
        }
        let sizes: Vec<usize> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]));
        assert!(server.stats().connections.load(Ordering::Relaxed) >= 8);
    }

    #[test]
    fn injected_corruption_is_detected_by_decoder() {
        let recs: Vec<Record> = (0..50)
            .map(|i| (format!("k{i:03}").into_bytes(), vec![7; 16]))
            .collect();
        let plan = FaultPlan::builder(1)
            .force(Hook::ServerWriteResponse, 0, FaultKind::Corrupt)
            .build();
        let server = MofSupplierServer::start_with_options(
            store_with_one_mof(recs),
            ServerOptions {
                faults: Some(Arc::clone(&plan)),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let (mut r, mut w) = connect(server.addr());
        FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
        let err = FetchResponse::read_from(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(plan.stats().corruptions, 1);
        server.shutdown();
    }

    #[test]
    fn injected_truncation_drops_connection_mid_frame() {
        let recs: Vec<Record> = (0..50)
            .map(|i| (format!("k{i:03}").into_bytes(), vec![9; 16]))
            .collect();
        let plan = FaultPlan::builder(2)
            .force(Hook::ServerWriteResponse, 0, FaultKind::Truncate)
            .build();
        let server = MofSupplierServer::start_with_options(
            store_with_one_mof(recs),
            ServerOptions {
                faults: Some(Arc::clone(&plan)),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let (mut r, mut w) = connect(server.addr());
        FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
        let err = FetchResponse::read_from(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert_eq!(plan.stats().truncations, 1);
        server.shutdown();
    }

    #[test]
    fn restart_on_same_address_serves_again() {
        let recs: Vec<Record> = (0..50)
            .map(|i| (format!("k{i:03}").into_bytes(), vec![3; 16]))
            .collect();
        let dir = std::env::temp_dir().join(format!("jbs-restart-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut store = MofStore::at(&dir).unwrap();
        store.write_mof(0, recs, 1, |_| 0).unwrap();
        let server = MofSupplierServer::start(store).unwrap();
        let addr = server.addr();
        server.shutdown();

        let store = MofStore::at(&dir).unwrap();
        let revived = MofSupplierServer::start_on(addr, store, ServerOptions::default()).unwrap();
        assert_eq!(revived.addr(), addr);
        let (mut r, mut w) = connect(addr);
        FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::Ok);
        revived.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
