//! The MOFSupplier server: a real TCP server over a [`MofStore`].
//!
//! One supplier runs per "node". It answers framed [`FetchRequest`]s on
//! cached connections, and mirrors the paper's server design:
//!
//! * an in-memory **IndexCache** (the `MofStore` caches parsed indexes);
//! * a **DataCache** with grouped read-ahead: a fetch at segment offset
//!   `o` stages `prefetch_batch` buffers beyond `o` in one file read, so
//!   consecutive chunk fetches of the same segment are served from memory
//!   and the disk sees long sequential runs (Fig. 5);
//! * a dedicated **disk prefetch thread** ([`crate::prefetch`]): stage
//!   requests are queued grouped by MOF, offset-ordered within a group,
//!   and served round-robin across groups. Connection threads write
//!   already-staged buffers while the disk runs ahead, so disk Read and
//!   network Xmit overlap instead of adding (the Fig. 4 fix). A hit in
//!   the tail of a staged range queues the *next* range asynchronously;
//!   only a cold miss makes a connection thread wait for the disk.
//! * a reusable [`crate::bufpool::BufPool`] so the hot path stops
//!   allocating a fresh `Vec` per served chunk, and vectored writes so
//!   header + payload go to the socket without a combined copy.
//!
//! For chaos testing the server takes an optional [`FaultPlan`]
//! ([`ServerOptions::faults`]): at the accept and response-write hooks it
//! can refuse connections, reset mid-exchange, truncate or corrupt a
//! frame, or stall before writing — all on a seed-deterministic schedule.
//! [`MofSupplierServer::start_on`] rebinds a *specific* address, which is
//! how a test restarts a "dead" supplier where clients expect it.
//!
//! [`ServerOptions::prefetch`] = `false` reverts to the pre-pipeline
//! serving discipline (inline staging on the connection thread), and
//! [`ServerOptions::synthetic_disk_delay`] charges every read-ahead a
//! fixed latency — together they are the serial baseline the
//! `shuffle_bench` benchmark measures the overlap against.

use crate::bufpool::{BufPool, BufPoolStats};
use crate::faults::{self, FaultAction, FaultPlan, FaultStatsSnapshot, Hook};
use crate::iosched::{IoClass, IoSchedStats, IoScheduler};
use crate::prefetch::{Pop, PrefetchQueue, Reply, StageJob};
use crate::reactor::{self, JobKind, NewConn, ReactorHandle};
use crate::staging::StageCache;
use crate::stats::{FetchStats, FetchStatsSnapshot};
use crate::store::MofStore;
use crate::sync::{lock, Mutex};
use crate::wire::{FetchRequest, FetchResponse, Status, WireVersion};
use jbs_obs::Entity;
use jbs_store_hybrid::HybridStore;
use std::collections::HashMap;
use std::io;
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server statistics.
#[derive(Debug, Default)]
pub struct SupplierStats {
    /// Requests served.
    pub requests: AtomicU64,
    /// Payload bytes served.
    pub bytes: AtomicU64,
    /// Requests satisfied from the DataCache (read-ahead hits).
    pub datacache_hits: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Asynchronous run-ahead batches staged by the disk thread.
    pub prefetched_batches: AtomicU64,
    /// Miss-path stages a connection thread had to wait for.
    pub sync_stages: AtomicU64,
    /// Requests shed with typed `Busy` pushback (admission control or an
    /// injected busy storm) instead of being served.
    pub busy_rejections: AtomicU64,
    /// Cache-bypass re-reads served (a client's targeted re-fetch after
    /// a checksum mismatch).
    pub bypass_reads: AtomicU64,
    /// Requests answered by the attached hybrid store's tiers (memory
    /// tail or its own spill/remote extents) instead of the MOF path.
    pub hybrid_hits: AtomicU64,
    /// Reactor poll-loop wakeups (event-loop mode): disk-thread
    /// completions plus newly admitted connections.
    pub reactor_wakes: AtomicU64,
    /// Vectored transmits cut short by a full socket buffer and resumed
    /// from a byte cursor on the next writability report.
    pub partial_writes: AtomicU64,
    /// Payload bytes transmitted straight from a pinned DataCache lease
    /// — never copied between the slab and the socket.
    pub zerocopy_bytes: AtomicU64,
    /// Payload bytes copied between the DataCache and a per-response
    /// buffer (the threaded path's `hit_into`/`stage_into` copies, and
    /// the reactor's copy-on-corrupt fault path). The bench's
    /// `copies_per_byte` is this over [`SupplierStats::bytes`].
    pub copied_bytes: AtomicU64,
    /// `read(2)` calls that returned request bytes (event-loop mode).
    pub read_syscalls: AtomicU64,
    /// `write(2)`/`writev(2)` calls that moved response bytes.
    pub write_syscalls: AtomicU64,
}

/// A point-in-time copy of the supplier's pipeline observability:
/// counters, prefetch-queue gauges, and buffer-pool effectiveness.
#[derive(Debug, Clone, Copy, Default)]
pub struct SupplierStatsSnapshot {
    /// Requests served.
    pub requests: u64,
    /// Payload bytes served.
    pub bytes: u64,
    /// Requests satisfied from the DataCache.
    pub datacache_hits: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Asynchronous run-ahead batches staged by the disk thread.
    pub prefetched_batches: u64,
    /// Miss-path stages a connection thread had to wait for.
    pub sync_stages: u64,
    /// Requests shed with typed `Busy` pushback instead of being served.
    pub busy_rejections: u64,
    /// Cache-bypass re-reads served after client checksum mismatches.
    pub bypass_reads: u64,
    /// Requests answered by the attached hybrid store's tiers.
    pub hybrid_hits: u64,
    /// Stage jobs currently queued for the disk thread.
    pub prefetch_queue_len: u64,
    /// High-water mark of the prefetch queue.
    pub prefetch_queue_peak: u64,
    /// Buffer-pool counters (hit rate = allocation-free serves).
    pub bufpool: BufPoolStats,
    /// Reactor poll-loop wakeups (0 in threaded mode).
    pub reactor_wakes: u64,
    /// Partial vectored writes resumed from a byte cursor.
    pub partial_writes: u64,
    /// Payload bytes served zero-copy from pinned DataCache leases.
    pub zerocopy_bytes: u64,
    /// Payload bytes copied between the DataCache and response buffers.
    pub copied_bytes: u64,
    /// Socket read syscalls (event-loop mode).
    pub read_syscalls: u64,
    /// Socket write syscalls.
    pub write_syscalls: u64,
    /// Disk IO scheduler gauges (permit grants/waits per class).
    pub iosched: IoSchedStats,
}

/// Tunables for a supplier.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Transport buffer (chunk) size; the paper uses 128 KB.
    pub buffer_bytes: u64,
    /// Read-ahead batch, in buffers; the paper uses 8.
    pub prefetch_batch: u64,
    /// Serve read-aheads from the dedicated disk thread (`true`, the
    /// paper's pipelined design) or inline on the connection thread
    /// (`false`, the serial baseline).
    pub prefetch: bool,
    /// Added latency charged to every read-ahead, emulating a slow disk
    /// so benchmarks can expose (or measure away) the disk/network
    /// overlap. Zero in production.
    pub synthetic_disk_delay: Duration,
    /// Optional fault-injection plan (tests only; `None` in production).
    pub faults: Option<Arc<FaultPlan>>,
    /// Structured tracing sink; [`jbs_obs::Trace::disabled`] (the
    /// default) is a single branch per instrumentation point.
    pub trace: jbs_obs::Trace,
    /// Admission: concurrently-served connections at or above this bound
    /// are shed with `Busy` pushback instead of admitted. A bound of 0
    /// sheds everything (useful in tests).
    pub max_connections: u64,
    /// Admission: concurrently-served connections *per peer IP* at or
    /// above this bound are shed — one misbehaving NetMerger cannot
    /// monopolize the supplier's connection threads.
    pub max_inflight_per_peer: u64,
    /// Admission: a request that would push the disk thread's stage
    /// queue to this depth is shed rather than queued behind a backlog
    /// the disk cannot clear — pushback instead of an unbounded stall.
    pub prefetch_queue_cap: u64,
    /// Retry-after hint carried in `Busy` pushback frames.
    pub busy_retry_hint: Duration,
    /// Optional memory-tier hybrid store. Partitions it holds are
    /// answered from its tiers *before* the DataCache/disk path — hot
    /// tails straight from memory — and [`MofSupplierServer::drain`]
    /// pushes its contents to the REMOTE tier (quick decommission).
    pub hybrid: Option<Arc<HybridStore>>,
    /// Serve with the legacy thread-per-connection loop instead of the
    /// event-driven reactor. The reactor is the default; the threaded
    /// path remains for comparison benchmarks and as the serving shape
    /// of the `prefetch = false` serial baseline (the reactor needs the
    /// disk thread, so disabling prefetch implies `threaded`).
    pub threaded: bool,
    /// Reactor poll loops to run (event-loop mode). Connections are
    /// assigned round-robin at accept. One loop drives thousands of
    /// loopback connections; more mainly help multi-NIC setups.
    pub reactor_threads: usize,
    /// Concurrent staging/segment reads the disk may serve at once
    /// (the IO scheduler's `Read` class). 0 = unlimited.
    pub io_read_permits: usize,
    /// Concurrent spill-flush appends (the `Append` class), arbitrated
    /// against reads through the same scheduler. 0 = unlimited.
    pub io_append_permits: usize,
    /// Share an externally built IO scheduler (e.g. one also installed
    /// as the hybrid store's spill gate) instead of constructing one
    /// from the permit counts above.
    pub iosched: Option<Arc<IoScheduler>>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            buffer_bytes: 128 << 10,
            prefetch_batch: 8,
            prefetch: true,
            synthetic_disk_delay: Duration::ZERO,
            faults: None,
            trace: jbs_obs::Trace::disabled(),
            max_connections: 1024,
            max_inflight_per_peer: 256,
            prefetch_queue_cap: 4096,
            busy_retry_hint: Duration::from_millis(25),
            hybrid: None,
            threaded: false,
            reactor_threads: 1,
            io_read_permits: 4,
            io_append_permits: 2,
            iosched: None,
        }
    }
}

pub(crate) struct Shared {
    pub(crate) store: Mutex<MofStore>,
    /// DataCache: one staged read-ahead range per (mof, reducer); the
    /// hit/stage logic lives in [`StageCache`], where the `cfg(loom)`
    /// models exercise it.
    pub(crate) staged: StageCache<(u64, u32)>,
    /// Recycled payload buffers for the serve hot path.
    pub(crate) pool: BufPool,
    /// Stage requests for the disk workers, grouped by MOF. Pushing
    /// wakes a blocked worker through the queue's own condvar.
    pub(crate) prefetch: PrefetchQueue,
    /// Permit-based disk IO arbitration: staging reads vs. spill
    /// appends. Acquired by the disk thread around every store read.
    pub(crate) iosched: Arc<IoScheduler>,
    pub(crate) stats: SupplierStats,
    pub(crate) fetch_stats: FetchStats,
    pub(crate) stop: AtomicBool,
    /// Drain mode: stop admitting, finish in-flight exchanges, exit.
    pub(crate) draining: AtomicBool,
    /// Connections currently being served (admission + drain gauge).
    pub(crate) active_conns: AtomicU64,
    /// Connections currently being served, per peer IP (admission).
    pub(crate) conns_per_peer: Mutex<HashMap<IpAddr, u64>>,
    /// Total segment lengths, cached off the store index so v3 `OkCrc`
    /// replies don't pay an index lock per chunk. Never held together
    /// with any other lock.
    pub(crate) seg_lens: Mutex<HashMap<(u64, u32), u64>>,
    pub(crate) options: ServerOptions,
}

/// A running MOFSupplier.
pub struct MofSupplierServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    prefetch_threads: Vec<JoinHandle<()>>,
    /// Event-loop mode: one handle per reactor thread (empty when
    /// serving threaded).
    reactors: Vec<Arc<ReactorHandle>>,
    reactor_threads: Vec<JoinHandle<()>>,
}

impl MofSupplierServer {
    /// Start a supplier over `store` on an ephemeral 127.0.0.1 port, with
    /// the paper's defaults: 128 KB transport buffers, 8-buffer read-ahead.
    pub fn start(store: MofStore) -> io::Result<Self> {
        Self::start_with_options(store, ServerOptions::default())
    }

    /// Start with explicit transport-buffer size and prefetch batch.
    pub fn start_with(store: MofStore, buffer_bytes: u64, prefetch_batch: u64) -> io::Result<Self> {
        Self::start_with_options(
            store,
            ServerOptions {
                buffer_bytes,
                prefetch_batch,
                ..ServerOptions::default()
            },
        )
    }

    /// Start with full options on an ephemeral port.
    pub fn start_with_options(store: MofStore, options: ServerOptions) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        Self::run(listener, store, options)
    }

    /// Start on a *specific* address — the restart path for a supplier
    /// that died and must come back where clients already expect it.
    /// Retries the bind briefly in case the previous incarnation's socket
    /// is still draining.
    pub fn start_on(addr: SocketAddr, store: MofStore, options: ServerOptions) -> io::Result<Self> {
        let mut last_err = None;
        for _ in 0..50 {
            match TcpListener::bind(addr) {
                Ok(listener) => return Self::run(listener, store, options),
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::AddrInUse, format!("cannot rebind {addr}"))
        }))
    }

    fn run(listener: TcpListener, store: MofStore, options: ServerOptions) -> io::Result<Self> {
        let addr = listener.local_addr()?;
        let use_prefetch = options.prefetch;
        // The reactor ships every disk touch to the prefetch thread, so
        // the serial (no-prefetch) baseline must serve threaded.
        let threaded = options.threaded || !options.prefetch;
        let iosched = match &options.iosched {
            Some(s) => Arc::clone(s),
            None => Arc::new(IoScheduler::with_trace(
                options.io_read_permits,
                options.io_append_permits,
                options.trace.clone(),
            )),
        };
        let shared = Arc::new(Shared {
            store: Mutex::new(store),
            staged: StageCache::new(),
            // Enough idle buffers for every connection thread plus the
            // disk thread to hold one in flight.
            pool: BufPool::with_trace(64, options.trace.clone()),
            prefetch: PrefetchQueue::new(),
            iosched,
            stats: SupplierStats::default(),
            fetch_stats: FetchStats::new(),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            active_conns: AtomicU64::new(0),
            conns_per_peer: Mutex::new(HashMap::new()),
            seg_lens: Mutex::new(HashMap::new()),
            options: ServerOptions {
                buffer_bytes: options.buffer_bytes.max(1),
                prefetch_batch: options.prefetch_batch.max(1),
                ..options
            },
        });
        // Threaded mode keeps the paper's single disk thread (connection
        // threads stage misses themselves, which is where its disk
        // parallelism comes from). The event loop ships *every* disk
        // touch through the queue, so it runs a pool of disk workers —
        // one per read permit — and the IO scheduler bounds how many of
        // them actually hit the disk at once.
        let disk_workers = if !use_prefetch {
            0
        } else if threaded {
            1
        } else {
            // An unlimited Read class (cap 0) still needs a concrete
            // pool width; default to the paper's 4-permit arbitration.
            match shared.iosched.read_permits() {
                0 => 4,
                cap => cap,
            }
        };
        let mut prefetch_threads = Vec::new();
        for _ in 0..disk_workers {
            let disk_shared = Arc::clone(&shared);
            prefetch_threads.push(std::thread::spawn(move || {
                prefetch_loop(&disk_shared);
            }));
        }
        let mut reactors = Vec::new();
        let mut reactor_threads = Vec::new();
        if !threaded {
            for idx in 0..shared.options.reactor_threads.max(1) {
                let handle = ReactorHandle::new(idx as u64)?;
                let r_shared = Arc::clone(&shared);
                let r_handle = Arc::clone(&handle);
                reactor_threads.push(std::thread::spawn(move || {
                    reactor::run(&r_shared, &r_handle);
                }));
                reactors.push(handle);
            }
        }
        let accept_reactors = reactors.clone();
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_shared.stop.load(Ordering::Acquire)
                    || accept_shared.draining.load(Ordering::Acquire)
                {
                    break;
                }
                let Ok(stream) = conn else { continue };
                match faults::decide(&accept_shared.options.faults, Hook::ServerAccept) {
                    FaultAction::RefuseConnect | FaultAction::Reset => {
                        // Drop the accepted socket before any exchange;
                        // the client sees a refused/reset connection.
                        drop(stream);
                        continue;
                    }
                    FaultAction::Stall(d) => std::thread::sleep(d),
                    _ => {}
                }
                // Admission: a connection over the global or per-peer
                // bound gets one typed `Busy` reply, never a thread (or
                // reactor slot) of its own.
                let peer_ip = stream.peer_addr().ok().map(|a| a.ip());
                if !admit(&accept_shared, peer_ip) {
                    let busy_shared = Arc::clone(&accept_shared);
                    std::thread::spawn(move || {
                        reject_busy(stream, &busy_shared);
                    });
                    continue;
                }
                let conn_no = accept_shared
                    .stats
                    .connections
                    .fetch_add(1, Ordering::Relaxed);
                accept_shared
                    .options
                    .trace
                    .instant("server.accept", Entity::conn(conn_no), 0, 0);
                if let Some(reactor) =
                    accept_reactors.get(conn_no as usize % accept_reactors.len().max(1))
                {
                    // Event-loop mode: hand the admitted socket to its
                    // reactor; no thread is spawned.
                    reactor.submit(NewConn {
                        stream,
                        peer_ip,
                        conn_no,
                    });
                    continue;
                }
                let conn_shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || {
                    handle_connection(stream, &conn_shared, peer_ip);
                });
            }
        });
        Ok(MofSupplierServer {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            prefetch_threads,
            reactors,
            reactor_threads,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server statistics.
    pub fn stats(&self) -> &SupplierStats {
        &self.shared.stats
    }

    /// Full observability snapshot: request counters plus the pipeline
    /// gauges (prefetch-queue depth/peak, buffer-pool hit rate).
    pub fn stats_snapshot(&self) -> SupplierStatsSnapshot {
        let s = &self.shared.stats;
        SupplierStatsSnapshot {
            requests: s.requests.load(Ordering::Relaxed),
            bytes: s.bytes.load(Ordering::Relaxed),
            datacache_hits: s.datacache_hits.load(Ordering::Relaxed),
            connections: s.connections.load(Ordering::Relaxed),
            prefetched_batches: s.prefetched_batches.load(Ordering::Relaxed),
            sync_stages: s.sync_stages.load(Ordering::Relaxed),
            busy_rejections: s.busy_rejections.load(Ordering::Relaxed),
            bypass_reads: s.bypass_reads.load(Ordering::Relaxed),
            hybrid_hits: s.hybrid_hits.load(Ordering::Relaxed),
            prefetch_queue_len: self.shared.prefetch.len() as u64,
            prefetch_queue_peak: self.shared.prefetch.peak() as u64,
            bufpool: self.shared.pool.stats(),
            reactor_wakes: s.reactor_wakes.load(Ordering::Relaxed),
            partial_writes: s.partial_writes.load(Ordering::Relaxed),
            zerocopy_bytes: s.zerocopy_bytes.load(Ordering::Relaxed),
            copied_bytes: s.copied_bytes.load(Ordering::Relaxed),
            read_syscalls: s.read_syscalls.load(Ordering::Relaxed),
            write_syscalls: s.write_syscalls.load(Ordering::Relaxed),
            iosched: self.shared.iosched.stats(),
        }
    }

    /// Recovery counters observed server-side (client resets/timeouts
    /// seen on connections).
    pub fn fetch_stats(&self) -> FetchStatsSnapshot {
        self.shared.fetch_stats.snapshot()
    }

    /// Faults injected so far, if a plan is installed.
    pub fn fault_stats(&self) -> Option<FaultStatsSnapshot> {
        self.shared.options.faults.as_ref().map(|p| p.stats())
    }

    /// The hybrid store this supplier serves from, if one is attached.
    pub fn hybrid(&self) -> Option<&Arc<HybridStore>> {
        self.shared.options.hybrid.as_ref()
    }

    /// Stop accepting and shut down.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    /// Graceful drain: stop admitting new work, let every in-flight
    /// exchange finish, then shut down. Returns `true` if all
    /// connections closed within `timeout`; `false` means the deadline
    /// expired and the remainder was torn down hard.
    pub fn drain(mut self, timeout: Duration) -> bool {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.options.trace.instant(
            "server.drain",
            Entity::conn(0),
            timeout.as_millis() as u64,
            self.shared.active_conns.load(Ordering::Acquire),
        );
        // Wake the accept loop so it observes the drain flag and stops.
        let _ = TcpStream::connect(self.addr);
        let deadline = std::time::Instant::now() + timeout;
        let mut clean = true;
        while self.shared.active_conns.load(Ordering::Acquire) > 0 {
            if std::time::Instant::now() >= deadline {
                clean = false;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Quick decommission: with a hybrid store attached, push every
        // partition it holds (memory tails and local spill alike) to
        // the REMOTE tier, so a successor supplier can
        // `HybridStore::attach_remote` over the surviving objects.
        if let Some(hybrid) = &self.shared.options.hybrid {
            match hybrid.drain_to_remote() {
                Ok(snap) => self.shared.options.trace.instant(
                    "server.drain.remote",
                    Entity::conn(0),
                    snap.remote_bytes,
                    snap.drains,
                ),
                Err(_) => clean = false,
            }
        }
        self.do_shutdown();
        clean
    }

    fn do_shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Close the prefetch queue: fail any connection thread waiting
        // on a miss, refuse new jobs, and wake every disk worker to see
        // `Closed` instead of blocking forever.
        for job in self.shared.prefetch.close() {
            match job.reply {
                Reply::Channel(reply) => {
                    let _ = reply.send(Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "supplier shutting down",
                    )));
                }
                // A reactor job dies with its ticket: the reactor's own
                // shutdown releases the connection, nothing is waiting.
                Reply::Reactor(_) | Reply::None => {}
            }
        }
        // Wake the accept loop and every reactor so they observe `stop`.
        let _ = TcpStream::connect(self.addr);
        for reactor in &self.reactors {
            reactor.waker.wake();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.prefetch_threads.drain(..) {
            let _ = t.join();
        }
        for t in self.reactor_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for MofSupplierServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.do_shutdown();
        }
    }
}

/// Admission check at accept time: reserve an active-connection slot
/// (global and per-peer) or refuse. The reservation is released by
/// [`release`] when the connection thread exits.
fn admit(shared: &Shared, peer_ip: Option<IpAddr>) -> bool {
    if shared.draining.load(Ordering::Acquire) {
        return false;
    }
    if shared.active_conns.load(Ordering::Acquire) >= shared.options.max_connections {
        return false;
    }
    if let Some(ip) = peer_ip {
        let mut peers_map = lock(&shared.conns_per_peer);
        let count = peers_map.entry(ip).or_insert(0);
        if *count >= shared.options.max_inflight_per_peer {
            return false;
        }
        *count += 1;
    }
    shared.active_conns.fetch_add(1, Ordering::AcqRel);
    true
}

/// Release the admission slot taken by [`admit`]. Called from the
/// connection thread (threaded mode) or the owning reactor when it
/// reaps the connection.
pub(crate) fn release(shared: &Shared, peer_ip: Option<IpAddr>) {
    if let Some(ip) = peer_ip {
        let mut peers_map = lock(&shared.conns_per_peer);
        if let Some(count) = peers_map.get_mut(&ip) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                peers_map.remove(&ip);
            }
        }
    }
    shared.active_conns.fetch_sub(1, Ordering::AcqRel);
}

/// Shed one request with typed pushback: a v3 requester gets a `Busy`
/// frame carrying the retry-after hint; the legacy v2 dialect has no
/// pushback frame, so the connection is closed instead (`Ok(false)`).
fn push_back<W: io::Write>(
    shared: &Shared,
    w: &mut W,
    req: &FetchRequest,
    version: WireVersion,
) -> io::Result<bool> {
    shared.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
    let hint = shared.options.busy_retry_hint.as_millis() as u64;
    shared
        .options
        .trace
        .instant("server.busy", Entity::mof(req.mof), req.offset, hint);
    if version == WireVersion::V2 {
        return Ok(false);
    }
    FetchResponse::busy(req.id, hint).write_to(w)?;
    w.flush()?;
    Ok(true)
}

/// A connection refused admission: answer its first request with `Busy`
/// pushback (instead of stalling it behind capacity that does not
/// exist) and drop the socket.
fn reject_busy(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let Ok(clone) = stream.try_clone() else { return };
    let mut reader = io::BufReader::new(clone);
    let mut writer = stream;
    if let Ok(Some((req, version))) = FetchRequest::read_from(&mut reader) {
        let _ = push_back(shared, &mut writer, &req, version);
    }
}

/// A `TcpStream` that counts its syscalls into [`SupplierStats`], so
/// the threaded and event-loop serve paths report the same
/// `syscalls_per_segment` bench metric from the same counters.
struct CountingStream<'a> {
    inner: TcpStream,
    stats: &'a SupplierStats,
}

impl io::Read for CountingStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        if n > 0 {
            self.stats.read_syscalls.fetch_add(1, Ordering::Relaxed);
        }
        Ok(n)
    }
}

impl io::Write for CountingStream<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.stats.write_syscalls.fetch_add(1, Ordering::Relaxed);
        Ok(n)
    }

    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        let n = self.inner.write_vectored(bufs)?;
        self.stats.write_syscalls.fetch_add(1, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared, peer_ip: Option<IpAddr>) {
    if let Err(e) = serve_connection(stream, shared) {
        // The peer vanished or the socket failed: count it, drop the
        // connection, keep the supplier alive.
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                shared.fetch_stats.record_timeout()
            }
            _ => shared.fetch_stats.record_reset(),
        }
    }
    release(shared, peer_ip);
}

fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = io::BufReader::new(CountingStream {
        inner: stream.try_clone()?,
        stats: &shared.stats,
    });
    let mut writer = io::BufWriter::new(CountingStream {
        inner: stream,
        stats: &shared.stats,
    });
    use std::io::Write;
    while let Some((req, version)) = FetchRequest::read_from(&mut reader)? {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        // Per-request shedding: an injected busy storm, or a stage
        // queue already past its bound (queueing more would stall the
        // peer behind a backlog the disk cannot clear).
        let shed = faults::decide(&shared.options.faults, Hook::ServerAdmission)
            == FaultAction::Busy
            || (shared.options.prefetch
                && shared.prefetch.len() as u64 >= shared.options.prefetch_queue_cap);
        if shed {
            if push_back(shared, &mut writer, &req, version)? {
                continue;
            }
            return Ok(());
        }
        let (req_mof, req_offset) = (req.mof, req.offset);
        let mut resp = serve(shared, req, version);
        // Post-checksum payload faults: structurally valid frames whose
        // damage only end-to-end verification can catch.
        if !resp.payload.is_empty() && matches!(resp.status, Status::Ok | Status::OkCrc) {
            match faults::decide(&shared.options.faults, Hook::ServerPayload) {
                FaultAction::CorruptPayload => {
                    // The CRC in the header (if any) was computed before
                    // this flip; the frame still parses cleanly.
                    if let Some(b) = resp.payload.first_mut() {
                        *b ^= 0x01;
                    }
                }
                FaultAction::CleanEof => {
                    // The boundary-truncation lie: pretend the segment
                    // cleanly ended before this chunk. v2 cannot tell
                    // this from a real end-of-segment; v3's seg_len
                    // accounting can.
                    let seg_len = resp.seg_len;
                    let status = resp.status;
                    let id = resp.id;
                    shared.pool.put(std::mem::take(&mut resp.payload));
                    resp = if status == Status::OkCrc {
                        FetchResponse::ok_crc(id, Vec::new(), seg_len)
                    } else {
                        FetchResponse::ok(id, Vec::new())
                    };
                }
                _ => {}
            }
        }
        // Count before the response is visible to the peer, so stats read
        // after a completed exchange are never stale.
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        shared
            .stats
            .bytes
            .fetch_add(resp.payload.len() as u64, Ordering::Relaxed);
        // net.Xmit: staging is done, the response heads for the socket.
        let xmit = shared.options.trace.span(
            "net.xmit",
            Entity::mof(req_mof),
            req_offset,
            resp.payload.len() as u64,
        );
        match faults::decide(&shared.options.faults, Hook::ServerWriteResponse) {
            FaultAction::Allow
            | FaultAction::RefuseConnect
            | FaultAction::Busy
            | FaultAction::CorruptPayload
            | FaultAction::CleanEof
            // Disk-shaped faults are meaningless on a network transmit.
            | FaultAction::ShortWrite
            | FaultAction::DiskError => {
                resp.write_vectored_to(&mut writer)?;
            }
            FaultAction::Stall(d) => {
                // Stall first: the peer's read deadline runs while the
                // response is withheld.
                std::thread::sleep(d);
                resp.write_vectored_to(&mut writer)?;
            }
            FaultAction::Reset => {
                // Drop mid-exchange: the request was consumed but no
                // response will ever come.
                return Ok(());
            }
            FaultAction::Truncate => {
                // Send a prefix of the frame, then drop the connection.
                let mut frame = Vec::new();
                resp.write_to(&mut frame)?;
                writer.write_all(frame.get(..frame.len() / 2).unwrap_or_default())?;
                writer.flush()?;
                return Ok(());
            }
            FaultAction::Corrupt => {
                // Flip a high byte of the length header (the field after
                // status and id). The client's decoder rejects it via the
                // MAX_PAYLOAD cap — and the status byte is untouched, so
                // the damage cannot be mistaken for a legitimate error
                // verdict.
                let mut frame = Vec::new();
                resp.write_to(&mut frame)?;
                if let Some(b) = frame.get_mut(1 + 8) {
                    *b ^= 0xFF;
                }
                writer.write_all(&frame)?;
            }
        }
        writer.flush()?;
        drop(xmit);
        // The response made it to the socket; recycle its payload buffer.
        shared.pool.put(resp.payload);
        if shared.draining.load(Ordering::Acquire) {
            // Drain: the in-flight exchange finished; close instead of
            // taking another request.
            break;
        }
    }
    Ok(())
}

/// Total length of one reducer's segment, from the per-supplier cache
/// or (on first touch) the store's index. `None` for an unknown
/// MOF/reducer. The two locks are taken strictly in sequence, never
/// nested.
pub(crate) fn segment_len(shared: &Shared, mof: u64, reducer: u32) -> Option<u64> {
    // Hybrid partitions first, and never through the cache: their
    // length grows with every append, so a cached value would go stale
    // and poison the v3 seg_len accounting.
    if let Some(hybrid) = &shared.options.hybrid {
        if let Some(len) = hybrid.partition_len(mof, reducer) {
            return Some(len);
        }
    }
    let key = (mof, reducer);
    {
        let cache = lock(&shared.seg_lens);
        if let Some(&len) = cache.get(&key) {
            return Some(len);
        }
    }
    let len = {
        let mut store = lock(&shared.store);
        match store.index(mof) {
            Ok(ix) => ix.entry(reducer as usize).map(|e| e.part_len),
            Err(_) => None,
        }
    }?;
    lock(&shared.seg_lens).insert(key, len);
    Some(len)
}

/// Wrap served bytes in the dialect the request arrived in: v3 gets an
/// `OkCrc` frame (payload CRC32C + total segment length), v2 the plain
/// `Ok` frame it has always received.
fn finish_ok(shared: &Shared, req: &FetchRequest, version: WireVersion, payload: Vec<u8>) -> FetchResponse {
    match version {
        WireVersion::V2 => FetchResponse::ok(req.id, payload),
        WireVersion::V3 => match segment_len(shared, req.mof, req.reducer) {
            Some(seg_len) => {
                shared.options.trace.instant(
                    "integrity.seal",
                    Entity::mof(req.mof),
                    req.offset,
                    payload.len() as u64,
                );
                FetchResponse::ok_crc(req.id, payload, seg_len)
            }
            // Bytes came back for a segment the index cannot size —
            // should be unreachable, but answering without the integrity
            // extension beats inventing a seg_len the client would then
            // enforce.
            None => FetchResponse::ok(req.id, payload),
        },
    }
}

/// One grouped read-ahead from the store: `prefetch_batch` buffers
/// starting at `offset`, charged the synthetic disk delay. Returns the
/// bytes plus whether they reach the segment's end; `None` for an
/// unknown MOF/reducer.
fn read_ahead(
    shared: &Shared,
    mof: u64,
    reducer: u32,
    offset: u64,
) -> io::Result<Option<(Vec<u8>, bool)>> {
    let ahead = shared.options.buffer_bytes * shared.options.prefetch_batch;
    // Memory tier before disk, on the stage path too: a hybrid-held
    // partition never costs a disk pass (or the synthetic delay).
    if let Some(hybrid) = &shared.options.hybrid {
        if let Some(bytes) = hybrid.read_segment_range(mof, reducer, offset, ahead)? {
            let at_end = (bytes.len() as u64) < ahead;
            return Ok(Some((bytes, at_end)));
        }
    }
    // The disk pass proper: take a Read permit first (arbitrating
    // against spill-flush appends), then the timed read. The synthetic
    // latency models the device, so it runs under the permit too.
    let _permit = shared.iosched.acquire(IoClass::Read);
    let _read_span = shared
        .options
        .trace
        .span("disk.read", Entity::mof(mof), offset, ahead);
    let delay = shared.options.synthetic_disk_delay;
    if !delay.is_zero() {
        std::thread::sleep(delay);
    }
    let read = {
        let mut store = lock(&shared.store);
        store.read_segment_range(mof, reducer, offset, ahead)?
    };
    Ok(read.map(|bytes| {
        let at_end = (bytes.len() as u64) < ahead;
        (bytes, at_end)
    }))
}

/// One disk worker: pop stage jobs (round-robin across MOF groups,
/// offset-ordered within), read ahead, stage, and answer whoever waits.
/// Blocks on the queue's condvar between jobs; runs until the queue is
/// closed. The event loop runs a pool of these, one per Read permit.
fn prefetch_loop(shared: &Shared) {
    loop {
        match shared.prefetch.pop_wait() {
            Pop::Item(job) => run_stage_job(shared, job),
            Pop::Closed => break,
            // pop_wait never yields Empty; retry rather than trusting
            // that invariant with a panic on the disk path.
            Pop::Empty => continue,
        }
    }
}

/// Execute one stage job on the disk thread.
fn run_stage_job(shared: &Shared, job: StageJob) {
    let key = (job.mof, job.reducer);
    match job.reply {
        Reply::None => {
            // Run-ahead jobs are queued from every tail hit, so
            // consecutive chunk fetches can queue the same next range
            // several times; the staged map is the dedupe point.
            if shared.staged.covers(&key, job.offset) {
                return;
            }
            if let Ok(Some((bytes, at_end))) = read_ahead(shared, job.mof, job.reducer, job.offset)
            {
                let evicted =
                    shared
                        .staged
                        .stage_lease(key, job.offset, shared.pool.lease(bytes), at_end);
                // Dropping the evicted lease recycles its buffer once
                // nothing in flight still pins it.
                drop(evicted);
                shared
                    .stats
                    .prefetched_batches
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        Reply::Channel(reply) => {
            // A sync (miss-path) job can be overtaken by an async
            // run-ahead that was queued ahead of it for the same range;
            // serve the staged bytes instead of a second disk pass.
            let mut payload = shared.pool.get();
            if shared
                .staged
                .hit_into(&key, job.offset, job.want, 0, &mut payload)
                .is_some()
            {
                shared.stats.datacache_hits.fetch_add(1, Ordering::Relaxed);
                shared
                    .options
                    .trace
                    .instant("cache.hit", Entity::mof(job.mof), job.offset, job.want);
                shared
                    .stats
                    .copied_bytes
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                let _ = reply.send(Ok(Some(payload)));
                return;
            }
            shared.pool.put(payload);
            match read_ahead(shared, job.mof, job.reducer, job.offset) {
                Ok(Some((bytes, at_end))) => {
                    let mut payload = shared.pool.get();
                    let evicted = shared.staged.stage_into(
                        key,
                        job.offset,
                        shared.pool.lease(bytes),
                        at_end,
                        job.want,
                        &mut payload,
                    );
                    drop(evicted);
                    shared.stats.sync_stages.fetch_add(1, Ordering::Relaxed);
                    shared
                        .stats
                        .copied_bytes
                        .fetch_add(payload.len() as u64, Ordering::Relaxed);
                    let _ = reply.send(Ok(Some(payload)));
                }
                Ok(None) => {
                    let _ = reply.send(Ok(None));
                }
                Err(e) => {
                    let _ = reply.send(Err(e));
                }
            }
        }
        Reply::Reactor(ticket) => {
            run_reactor_job(shared, ticket, job.mof, job.reducer, job.offset, job.want);
        }
    }
}

/// A direct (DataCache-free) store read framed for the reactor: the
/// cache-bypass re-fetch, the whole-segment request, and the fallback
/// when a hybrid partition drains mid-flight.
fn direct_read_resp(
    shared: &Shared,
    id: u64,
    version: WireVersion,
    mof: u64,
    reducer: u32,
    offset: u64,
    want_raw: u64,
) -> reactor::OutResp {
    let read = {
        let _permit = shared.iosched.acquire(IoClass::Read);
        let mut store = lock(&shared.store);
        store.read_segment_range(mof, reducer, offset, want_raw)
    };
    match read {
        Ok(Some(bytes)) => {
            let seg_len = match version {
                WireVersion::V2 => None,
                WireVersion::V3 => segment_len(shared, mof, reducer),
            };
            let lease = shared.pool.lease(bytes);
            let range = 0..lease.len();
            shared
                .stats
                .zerocopy_bytes
                .fetch_add(range.len() as u64, Ordering::Relaxed);
            reactor::build_ok(shared, id, version, seg_len, lease, range, mof, offset)
        }
        Ok(None) => reactor::build_error(id, Status::NotFound, mof, offset),
        Err(_) => reactor::build_error(id, Status::BadRequest, mof, offset),
    }
}

/// Finish a reactor-dispatched request on the disk thread: do the IO
/// its [`JobKind`] calls for, frame the complete response, and deliver
/// it to the owning reactor's completion queue.
/// Queue an async run-ahead stage for `(mof, reducer)` starting at
/// `next`, waking the disk thread. Used by every hit path that notices
/// the staged range running low (the pull half of Fig. 5 pipelining).
pub(crate) fn queue_run_ahead(shared: &Shared, mof: u64, reducer: u32, next: u64) {
    let queued = shared.prefetch.push(StageJob {
        mof,
        reducer,
        offset: next,
        want: 0,
        reply: Reply::None,
    });
    if queued.is_ok() {
        shared
            .options
            .trace
            .instant("prefetch.queue", Entity::mof(mof), next, 0);
    }
}

fn run_reactor_job(
    shared: &Shared,
    ticket: crate::reactor::JobTicket,
    mof: u64,
    reducer: u32,
    offset: u64,
    want_raw: u64,
) {
    let key = (mof, reducer);
    let clamped = if want_raw == 0 {
        u64::MAX
    } else {
        want_raw.min(shared.options.buffer_bytes)
    };
    let (id, version, kind) = (ticket.id, ticket.version, ticket.kind);
    let seg_len_for = |version: WireVersion| match version {
        WireVersion::V2 => None,
        WireVersion::V3 => segment_len(shared, mof, reducer),
    };
    let resp = match kind {
        JobKind::Stage => {
            // An async run-ahead may have staged this range while the
            // job sat queued: serve the overtaken request zero-copy.
            // The same low-water mark as the reactor-side hit path, so
            // a request served here still pulls the next batch — in a
            // request burst most hits land here, and without the pull
            // the disk falls back to lockstep sync staging.
            let low_water = shared.options.buffer_bytes * shared.options.prefetch_batch / 2;
            if let Some(hit) = shared.staged.hit_lease(&key, offset, clamped, low_water) {
                shared.stats.datacache_hits.fetch_add(1, Ordering::Relaxed);
                shared
                    .options
                    .trace
                    .instant("cache.hit", Entity::mof(mof), offset, clamped);
                if let Some(next) = hit.stage_next {
                    queue_run_ahead(shared, mof, reducer, next);
                }
                let seg_len = seg_len_for(version);
                shared
                    .stats
                    .zerocopy_bytes
                    .fetch_add(hit.range.len() as u64, Ordering::Relaxed);
                reactor::build_ok(shared, id, version, seg_len, hit.lease, hit.range, mof, offset)
            } else {
                match read_ahead(shared, mof, reducer, offset) {
                    Ok(Some((bytes, at_end))) => {
                        shared.stats.sync_stages.fetch_add(1, Ordering::Relaxed);
                        let lease = shared.pool.lease(bytes);
                        // The response window is a clone of the lease
                        // going into the cache: both pin one allocation.
                        let hi = (clamped as usize).min(lease.len());
                        let staged = lease.len() as u64;
                        let evicted = shared.staged.stage_lease(key, offset, lease.clone(), at_end);
                        drop(evicted);
                        // Keep the disk one batch ahead of the burst:
                        // the requests behind this one in the same
                        // readiness batch will hit the staged range,
                        // and the follow-on batch is already queued by
                        // the time they drain it.
                        if !at_end {
                            queue_run_ahead(shared, mof, reducer, offset + staged);
                        }
                        let seg_len = seg_len_for(version);
                        shared
                            .stats
                            .zerocopy_bytes
                            .fetch_add(hi as u64, Ordering::Relaxed);
                        reactor::build_ok(shared, id, version, seg_len, lease, 0..hi, mof, offset)
                    }
                    Ok(None) => reactor::build_error(id, Status::NotFound, mof, offset),
                    Err(_) => reactor::build_error(id, Status::BadRequest, mof, offset),
                }
            }
        }
        JobKind::Direct => direct_read_resp(shared, id, version, mof, reducer, offset, want_raw),
        JobKind::Hybrid => {
            let len = if want_raw == 0 { 0 } else { clamped };
            let read = shared
                .options
                .hybrid
                .as_ref()
                .map(|h| h.read_segment_range(mof, reducer, offset, len));
            match read {
                Some(Ok(Some(bytes))) => {
                    shared.stats.hybrid_hits.fetch_add(1, Ordering::Relaxed);
                    shared.options.trace.instant(
                        "hybrid.hit",
                        Entity::mof(mof),
                        offset,
                        bytes.len() as u64,
                    );
                    // `segment_len` checks the hybrid store first, so a
                    // v3 seg_len here is the partition's live length.
                    let seg_len = seg_len_for(version);
                    let lease = shared.pool.lease(bytes);
                    let range = 0..lease.len();
                    shared
                        .stats
                        .zerocopy_bytes
                        .fetch_add(range.len() as u64, Ordering::Relaxed);
                    reactor::build_ok(shared, id, version, seg_len, lease, range, mof, offset)
                }
                // The partition drained (e.g. to REMOTE) between the
                // reactor's presence check and this read: fall back to
                // the MOF store like any non-hybrid key.
                Some(Ok(None)) | None => {
                    direct_read_resp(shared, id, version, mof, reducer, offset, want_raw)
                }
                Some(Err(_)) => reactor::build_error(id, Status::BadRequest, mof, offset),
            }
        }
    };
    ticket.deliver(resp);
}

/// Memory-tier-first serving: if a hybrid store is attached and knows
/// this partition, answer from its tiers (no DataCache, no disk-thread
/// stage). `None` means the key is not hybrid-held — fall through to
/// the MOF path.
fn serve_hybrid(
    shared: &Shared,
    req: &FetchRequest,
    version: WireVersion,
    want: u64,
) -> Option<FetchResponse> {
    let hybrid = shared.options.hybrid.as_ref()?;
    let len = if req.len == 0 { 0 } else { want };
    match hybrid.read_segment_range(req.mof, req.reducer, req.offset, len) {
        Ok(Some(bytes)) => {
            shared.stats.hybrid_hits.fetch_add(1, Ordering::Relaxed);
            shared.options.trace.instant(
                "hybrid.hit",
                Entity::mof(req.mof),
                req.offset,
                bytes.len() as u64,
            );
            Some(finish_ok(shared, req, version, bytes))
        }
        Ok(None) => None,
        Err(_) => Some(FetchResponse::error(req.id, Status::BadRequest)),
    }
}

/// Serve one request through the DataCache read-ahead.
fn serve(shared: &Shared, req: FetchRequest, version: WireVersion) -> FetchResponse {
    let want = if req.len == 0 {
        u64::MAX
    } else {
        req.len.min(shared.options.buffer_bytes)
    };
    let key = (req.mof, req.reducer);

    // Memory-tier-first: a partition living in the hybrid store is
    // answered by its tiers directly — hot tails straight from memory,
    // spilled extents from its own files. Those keys never enter the
    // DataCache or the disk thread's queue, and the hybrid store's
    // bytes are always fresh, so the bypass-cache flag is moot here.
    if let Some(resp) = serve_hybrid(shared, &req, version, want) {
        return resp;
    }

    // Targeted cache-bypass re-fetch (v3, after a client-side checksum
    // mismatch): the staged range for this key is suspect — drop it and
    // answer straight from disk, so poisoned DataCache bytes are never
    // served twice.
    if req.bypass_cache() {
        // Dropping the invalidated lease recycles its buffer once no
        // in-flight transmit still pins it.
        drop(shared.staged.invalidate(&key));
        shared.stats.bypass_reads.fetch_add(1, Ordering::Relaxed);
        shared
            .options
            .trace
            .instant("integrity.bypass", Entity::mof(req.mof), req.offset, req.len);
        let read = {
            let _permit = shared.iosched.acquire(IoClass::Read);
            let mut store = lock(&shared.store);
            store.read_segment_range(req.mof, req.reducer, req.offset, req.len)
        };
        return match read {
            Ok(Some(bytes)) => finish_ok(shared, &req, version, bytes),
            Ok(None) => FetchResponse::error(req.id, Status::NotFound),
            Err(_) => FetchResponse::error(req.id, Status::BadRequest),
        };
    }

    // Whole-segment requests bypass staging.
    if req.len == 0 {
        let read = {
            let _permit = shared.iosched.acquire(IoClass::Read);
            let mut store = lock(&shared.store);
            store.read_segment_range(req.mof, req.reducer, req.offset, 0)
        };
        return match read {
            Ok(Some(bytes)) => finish_ok(shared, &req, version, bytes),
            Ok(None) => FetchResponse::error(req.id, Status::NotFound),
            Err(_) => FetchResponse::error(req.id, Status::BadRequest),
        };
    }

    // Queue the next read-ahead once the reader is within half a batch
    // of draining the staged range — early enough for the disk to win
    // the race against the network.
    let low_water = shared.options.buffer_bytes * shared.options.prefetch_batch / 2;
    // Fast path: the range is already staged by a previous read-ahead.
    let mut payload = shared.pool.get();
    if let Some(hit) = shared
        .staged
        .hit_into(&key, req.offset, want, low_water, &mut payload)
    {
        shared.stats.datacache_hits.fetch_add(1, Ordering::Relaxed);
        shared
            .options
            .trace
            .instant("cache.hit", Entity::mof(req.mof), req.offset, want);
        shared
            .stats
            .copied_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        if shared.options.prefetch {
            if let Some(next) = hit.stage_next {
                let queued = shared.prefetch.push(StageJob {
                    mof: req.mof,
                    reducer: req.reducer,
                    offset: next,
                    want: 0,
                    reply: Reply::None,
                });
                if queued.is_ok() {
                    shared
                        .options
                        .trace
                        .instant("prefetch.queue", Entity::mof(req.mof), next, 0);
                }
            }
        }
        return finish_ok(shared, &req, version, payload);
    }

    // Miss. Pipelined: hand the read to the disk thread and wait for
    // these exact bytes. Serial baseline: stage inline right here.
    if shared.options.prefetch {
        shared.pool.put(payload);
        let (reply_tx, reply_rx) = mpsc::channel();
        let queued = shared.prefetch.push(StageJob {
            mof: req.mof,
            reducer: req.reducer,
            offset: req.offset,
            want,
            reply: Reply::Channel(reply_tx),
        });
        if queued.is_err() {
            // Shutting down.
            return FetchResponse::error(req.id, Status::BadRequest);
        }
        // The only place a connection thread waits for the disk in the
        // pipelined discipline: a cold miss.
        let _wait = shared
            .options
            .trace
            .span("prefetch.wait", Entity::mof(req.mof), req.offset, want);
        match reply_rx.recv() {
            Ok(Ok(Some(bytes))) => finish_ok(shared, &req, version, bytes),
            Ok(Ok(None)) => FetchResponse::error(req.id, Status::NotFound),
            Ok(Err(_)) | Err(_) => FetchResponse::error(req.id, Status::BadRequest),
        }
    } else {
        match read_ahead(shared, req.mof, req.reducer, req.offset) {
            Ok(Some((bytes, at_end))) => {
                let evicted = shared.staged.stage_into(
                    key,
                    req.offset,
                    shared.pool.lease(bytes),
                    at_end,
                    want,
                    &mut payload,
                );
                drop(evicted);
                shared
                    .stats
                    .copied_bytes
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                finish_ok(shared, &req, version, payload)
            }
            Ok(None) => {
                shared.pool.put(payload);
                FetchResponse::error(req.id, Status::NotFound)
            }
            Err(_) => {
                shared.pool.put(payload);
                FetchResponse::error(req.id, Status::BadRequest)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;
    use crate::wire::FLAG_BYPASS_CACHE;
    use jbs_mapred::merge::Record;

    fn store_with_one_mof(records: Vec<Record>) -> MofStore {
        let mut store = MofStore::temp().unwrap();
        store.write_mof(0, records, 1, |_| 0).unwrap();
        store
    }

    fn connect(addr: SocketAddr) -> (io::BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        (io::BufReader::new(stream.try_clone().unwrap()), stream)
    }

    #[test]
    fn serves_whole_segment() {
        let recs: Vec<Record> = (0..100)
            .map(|i| (format!("k{i:03}").into_bytes(), vec![i as u8; 16]))
            .collect();
        let server = MofSupplierServer::start(store_with_one_mof(recs)).unwrap();
        let (mut r, mut w) = connect(server.addr());
        FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert!(!resp.payload.is_empty());
        assert_eq!(server.stats().requests.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn hybrid_partitions_are_served_memory_first_and_drained_remote() {
        use jbs_store_hybrid::HybridConfig;
        let hybrid = HybridStore::new(HybridConfig {
            memory_budget: 1 << 20,
            ..HybridConfig::default()
        })
        .unwrap();
        let payload: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        hybrid.append(7, 0, &payload).unwrap();
        let remote_dir = hybrid.remote_dir().to_path_buf();
        // The MofStore knows nothing about MOF 7 — only the hybrid does,
        // and both serve side by side through one supplier.
        let store = store_with_one_mof(vec![(b"k".to_vec(), vec![1; 8])]);
        let server = MofSupplierServer::start_with_options(
            store,
            ServerOptions {
                hybrid: Some(Arc::clone(&hybrid)),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let (mut r, mut w) = connect(server.addr());
        FetchRequest::whole_segment(7, 0).write_to(&mut w).unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.payload, payload, "hybrid bytes byte-exact");
        assert_eq!(server.stats().hybrid_hits.load(Ordering::Relaxed), 1);
        FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::Ok, "MOF path still serves");
        drop((r, w));
        // Drain = quick decommission: hybrid contents move REMOTE.
        assert!(server.drain(Duration::from_secs(5)));
        let snap = hybrid.stats();
        assert_eq!(snap.memory_bytes, 0);
        assert_eq!(snap.remote_bytes, payload.len() as u64);
        assert!(remote_dir.join("part-7-0.obj").exists());
    }

    fn chunked_fetch_roundtrip(options: ServerOptions) -> MofSupplierServer {
        let recs: Vec<Record> = (0..2000)
            .map(|i| (format!("k{i:05}").into_bytes(), vec![0xAB; 64]))
            .collect();
        let store = store_with_one_mof(recs);
        let server = MofSupplierServer::start_with_options(store, options).unwrap();
        let (mut r, mut w) = connect(server.addr());

        // Whole segment as reference.
        FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
        let whole = FetchResponse::read_from(&mut r).unwrap().payload;

        // Chunked fetch on the same (reused) connection.
        let mut assembled = Vec::new();
        let mut off = 0u64;
        let mut id = 1u64;
        loop {
            FetchRequest {
                id,
                mof: 0,
                reducer: 0,
                offset: off,
                len: 4 << 10,
                flags: 0,
            }
            .write_to(&mut w)
            .unwrap();
            let resp = FetchResponse::read_from(&mut r).unwrap();
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(resp.id, id, "response id echoes the request id");
            id += 1;
            if resp.payload.is_empty() {
                break;
            }
            off += resp.payload.len() as u64;
            assembled.extend_from_slice(&resp.payload);
        }
        assert_eq!(assembled, whole);
        server
    }

    #[test]
    fn chunked_fetch_reassembles_and_hits_datacache() {
        // Threaded mode: the bufpool assertions below are about the
        // copy-out serve path (the reactor transmits from pinned leases
        // and never draws a per-request payload buffer).
        let server = chunked_fetch_roundtrip(ServerOptions {
            buffer_bytes: 4 << 10,
            prefetch_batch: 8,
            threaded: true,
            ..ServerOptions::default()
        });
        // Read-ahead must have served most chunks from memory.
        let hits = server.stats().datacache_hits.load(Ordering::Relaxed);
        let reqs = server.stats().requests.load(Ordering::Relaxed);
        assert!(hits * 2 > reqs, "hits {hits} of {reqs} requests");
        // The disk thread ran ahead of the reader, and the pool recycled
        // payload buffers: the pipeline gauges are coherent.
        let snap = server.stats_snapshot();
        assert!(snap.prefetched_batches > 0, "{snap:?}");
        assert!(snap.sync_stages >= 1, "{snap:?}");
        assert_eq!(snap.prefetch_queue_len, 0, "queue drained: {snap:?}");
        assert!(snap.prefetch_queue_peak >= 1, "{snap:?}");
        // Every chunked serve draws from the pool (the disk thread draws
        // too), and recycling makes most of those draws allocation-free.
        assert!(
            snap.bufpool.hits + snap.bufpool.misses >= snap.requests - 1,
            "{snap:?}"
        );
        assert!(snap.bufpool.returns > 0, "{snap:?}");
        assert!(snap.bufpool.hit_rate() > 0.25, "{snap:?}");
        server.shutdown();
    }

    #[test]
    fn inline_staging_baseline_serves_identical_bytes() {
        let server = chunked_fetch_roundtrip(ServerOptions {
            buffer_bytes: 4 << 10,
            prefetch_batch: 8,
            prefetch: false,
            ..ServerOptions::default()
        });
        let snap = server.stats_snapshot();
        assert_eq!(snap.prefetched_batches, 0, "no disk thread: {snap:?}");
        assert_eq!(snap.sync_stages, 0, "{snap:?}");
        let hits = server.stats().datacache_hits.load(Ordering::Relaxed);
        assert!(hits > 0, "inline staging still feeds the DataCache");
        server.shutdown();
    }

    #[test]
    fn unknown_mof_is_not_found() {
        let server =
            MofSupplierServer::start(store_with_one_mof(vec![(b"k".to_vec(), b"v".to_vec())]))
                .unwrap();
        let (mut r, mut w) = connect(server.addr());
        FetchRequest::whole_segment(42, 0).write_to(&mut w).unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::NotFound);
        // A *chunked* miss takes the sync-stage path through the disk
        // thread and must come back NotFound too, not hang.
        FetchRequest {
            id: 5,
            mof: 42,
            reducer: 0,
            offset: 0,
            len: 1 << 10,
            flags: 0,
        }
        .write_to(&mut w)
        .unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::NotFound);
        assert_eq!(resp.id, 5);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_isolated() {
        let recs: Vec<Record> = (0..500)
            .map(|i| (format!("{i:06}").into_bytes(), vec![1; 32]))
            .collect();
        let server = Arc::new(MofSupplierServer::start(store_with_one_mof(recs)).unwrap());
        let addr = server.addr();
        let mut joins = Vec::new();
        for _ in 0..8 {
            joins.push(std::thread::spawn(move || {
                let (mut r, mut w) = connect(addr);
                FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
                FetchResponse::read_from(&mut r).unwrap().payload.len()
            }));
        }
        let sizes: Vec<usize> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]));
        assert!(server.stats().connections.load(Ordering::Relaxed) >= 8);
    }

    #[test]
    fn injected_corruption_is_detected_by_decoder() {
        let recs: Vec<Record> = (0..50)
            .map(|i| (format!("k{i:03}").into_bytes(), vec![7; 16]))
            .collect();
        let plan = FaultPlan::builder(1)
            .force(Hook::ServerWriteResponse, 0, FaultKind::Corrupt)
            .build();
        let server = MofSupplierServer::start_with_options(
            store_with_one_mof(recs),
            ServerOptions {
                faults: Some(Arc::clone(&plan)),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let (mut r, mut w) = connect(server.addr());
        FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
        let err = FetchResponse::read_from(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(plan.stats().corruptions, 1);
        server.shutdown();
    }

    #[test]
    fn injected_truncation_drops_connection_mid_frame() {
        let recs: Vec<Record> = (0..50)
            .map(|i| (format!("k{i:03}").into_bytes(), vec![9; 16]))
            .collect();
        let plan = FaultPlan::builder(2)
            .force(Hook::ServerWriteResponse, 0, FaultKind::Truncate)
            .build();
        let server = MofSupplierServer::start_with_options(
            store_with_one_mof(recs),
            ServerOptions {
                faults: Some(Arc::clone(&plan)),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let (mut r, mut w) = connect(server.addr());
        FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
        let err = FetchResponse::read_from(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert_eq!(plan.stats().truncations, 1);
        server.shutdown();
    }

    #[test]
    fn v3_requests_get_okcrc_with_valid_crc_and_seg_len() {
        let recs: Vec<Record> = (0..200)
            .map(|i| (format!("k{i:04}").into_bytes(), vec![i as u8; 32]))
            .collect();
        let server = MofSupplierServer::start(store_with_one_mof(recs)).unwrap();
        let (mut r, mut w) = connect(server.addr());
        // Whole segment in one v3 exchange: seg_len equals the payload.
        FetchRequest::whole_segment(0, 0)
            .write_versioned(&mut w, WireVersion::V3)
            .unwrap();
        let whole = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(whole.status, Status::OkCrc);
        assert!(whole.crc_ok(), "server-computed CRC verifies");
        assert_eq!(whole.seg_len, whole.payload.len() as u64);
        // A chunked v3 fetch carries the same total seg_len on every
        // chunk — the client's expected-length accounting anchor.
        let chunk = FetchRequest {
            id: 9,
            mof: 0,
            reducer: 0,
            offset: 64,
            len: 1 << 10,
            flags: 0,
        };
        chunk.write_versioned(&mut w, WireVersion::V3).unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::OkCrc);
        assert_eq!(resp.id, 9);
        assert!(resp.crc_ok());
        assert_eq!(resp.seg_len, whole.seg_len);
        assert_eq!(resp.payload, whole.payload[64..64 + (1 << 10)]);
        server.shutdown();
    }

    #[test]
    fn v2_requests_still_get_plain_ok_frames() {
        let server =
            MofSupplierServer::start(store_with_one_mof(vec![(b"k".to_vec(), b"v".to_vec())]))
                .unwrap();
        let (mut r, mut w) = connect(server.addr());
        FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::Ok, "v2 dialect answered in kind");
        server.shutdown();
    }

    #[test]
    fn injected_busy_storm_sheds_then_serves() {
        let recs: Vec<Record> = (0..50)
            .map(|i| (format!("k{i:03}").into_bytes(), vec![5; 16]))
            .collect();
        let plan = FaultPlan::builder(4)
            .force(Hook::ServerAdmission, 0, FaultKind::Busy)
            .build();
        let server = MofSupplierServer::start_with_options(
            store_with_one_mof(recs),
            ServerOptions {
                faults: Some(Arc::clone(&plan)),
                busy_retry_hint: Duration::from_millis(7),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let (mut r, mut w) = connect(server.addr());
        let req = FetchRequest::whole_segment(0, 0);
        req.write_versioned(&mut w, WireVersion::V3).unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::Busy);
        assert_eq!(resp.retry_after_ms, 7, "hint travels in the frame");
        assert!(resp.payload.is_empty());
        // The connection survived the pushback: the retry is served.
        req.write_versioned(&mut w, WireVersion::V3).unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::OkCrc);
        assert!(!resp.payload.is_empty());
        assert_eq!(server.stats_snapshot().busy_rejections, 1);
        assert_eq!(plan.stats().busy_storms, 1);
        server.shutdown();
    }

    #[test]
    fn admission_cap_replies_busy_to_unadmitted_connection() {
        let server = MofSupplierServer::start_with_options(
            store_with_one_mof(vec![(b"k".to_vec(), b"v".to_vec())]),
            ServerOptions {
                max_connections: 0, // zero capacity: shed everything
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let (mut r, mut w) = connect(server.addr());
        FetchRequest::whole_segment(0, 0)
            .write_versioned(&mut w, WireVersion::V3)
            .unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::Busy);
        assert!(resp.retry_after_ms > 0, "hint is a real backoff");
        assert_eq!(server.stats_snapshot().busy_rejections, 1);
        server.shutdown();
    }

    #[test]
    fn bypass_flag_skips_poisoned_datacache() {
        let recs: Vec<Record> = (0..2000)
            .map(|i| (format!("k{i:05}").into_bytes(), vec![0xCD; 64]))
            .collect();
        let server = MofSupplierServer::start_with(store_with_one_mof(recs), 4 << 10, 8).unwrap();
        let (mut r, mut w) = connect(server.addr());
        // Warm the DataCache, remembering the true first chunk.
        let chunk = FetchRequest {
            id: 1,
            mof: 0,
            reducer: 0,
            offset: 0,
            len: 4 << 10,
            flags: 0,
        };
        chunk.write_versioned(&mut w, WireVersion::V3).unwrap();
        let truth = FetchResponse::read_from(&mut r).unwrap().payload;
        // Poison the staged range the way bad RAM would: same offsets,
        // wrong bytes.
        let mut scratch = Vec::new();
        server.shared.staged.stage_into(
            (0, 0),
            0,
            crate::bufpool::Lease::detached(vec![0xEE; 32 << 10]),
            false,
            0,
            &mut scratch,
        );
        // A plain re-fetch serves the poison (this is the failure the
        // integrity layer exists to catch)...
        chunk.write_versioned(&mut w, WireVersion::V3).unwrap();
        let poisoned = FetchResponse::read_from(&mut r).unwrap().payload;
        assert_eq!(poisoned, vec![0xEE; 4 << 10]);
        // ...and the bypass re-fetch invalidates it and re-reads disk.
        FetchRequest {
            flags: FLAG_BYPASS_CACHE,
            ..chunk
        }
        .write_versioned(&mut w, WireVersion::V3)
        .unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::OkCrc);
        assert!(resp.crc_ok());
        assert_eq!(resp.payload, truth);
        assert_eq!(server.stats_snapshot().bypass_reads, 1);
        // The poisoned range is gone: the next cached fetch re-stages
        // from disk and serves truth again.
        chunk.write_versioned(&mut w, WireVersion::V3).unwrap();
        assert_eq!(FetchResponse::read_from(&mut r).unwrap().payload, truth);
        server.shutdown();
    }

    #[test]
    fn drain_finishes_inflight_then_refuses_new_work() {
        let recs: Vec<Record> = (0..100)
            .map(|i| (format!("k{i:03}").into_bytes(), vec![2; 16]))
            .collect();
        let server = MofSupplierServer::start(store_with_one_mof(recs)).unwrap();
        let addr = server.addr();
        let (mut r, mut w) = connect(addr);
        FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::Ok);
        // Close our connection so the drain can converge, then drain.
        drop((r, w));
        assert!(
            server.drain(Duration::from_secs(5)),
            "drain converged within its deadline"
        );
        // The drained supplier is gone: a new exchange cannot complete.
        let refused = TcpStream::connect(addr)
            .and_then(|mut s| {
                FetchRequest::whole_segment(0, 0).write_to(&mut s)?;
                let mut rd = io::BufReader::new(s.try_clone()?);
                FetchResponse::read_from(&mut rd)
            })
            .is_err();
        assert!(refused, "no exchanges after drain");
    }

    #[test]
    fn restart_on_same_address_serves_again() {
        let recs: Vec<Record> = (0..50)
            .map(|i| (format!("k{i:03}").into_bytes(), vec![3; 16]))
            .collect();
        let dir = std::env::temp_dir().join(format!("jbs-restart-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut store = MofStore::at(&dir).unwrap();
        store.write_mof(0, recs, 1, |_| 0).unwrap();
        let server = MofSupplierServer::start(store).unwrap();
        let addr = server.addr();
        server.shutdown();

        let store = MofStore::at(&dir).unwrap();
        let revived = MofSupplierServer::start_on(addr, store, ServerOptions::default()).unwrap();
        assert_eq!(revived.addr(), addr);
        let (mut r, mut w) = connect(addr);
        FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::Ok);
        revived.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
