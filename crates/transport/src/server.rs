//! The MOFSupplier server: a real TCP server over a [`MofStore`].
//!
//! One supplier runs per "node". It answers framed [`FetchRequest`]s on
//! cached connections, and mirrors the paper's server design:
//!
//! * an in-memory **IndexCache** (the `MofStore` caches parsed indexes);
//! * a **DataCache** with grouped read-ahead: a fetch at segment offset
//!   `o` stages `prefetch_batch` buffers beyond `o` in one file read, so
//!   consecutive chunk fetches of the same segment are served from memory
//!   and the disk sees long sequential runs (Fig. 5).

use crate::store::MofStore;
use crate::wire::{FetchRequest, FetchResponse, Status};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server statistics.
#[derive(Debug, Default)]
pub struct SupplierStats {
    /// Requests served.
    pub requests: AtomicU64,
    /// Payload bytes served.
    pub bytes: AtomicU64,
    /// Requests satisfied from the DataCache (read-ahead hits).
    pub datacache_hits: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
}

/// Read-ahead state for one (mof, reducer) segment.
struct Staged {
    /// Segment-relative offset the staged bytes start at.
    offset: u64,
    bytes: Vec<u8>,
}

struct Shared {
    store: Mutex<MofStore>,
    staged: Mutex<HashMap<(u64, u32), Staged>>,
    stats: SupplierStats,
    stop: AtomicBool,
    buffer_bytes: u64,
    prefetch_batch: u64,
}

/// A running MOFSupplier.
pub struct MofSupplierServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl MofSupplierServer {
    /// Start a supplier over `store` on an ephemeral 127.0.0.1 port, with
    /// the paper's defaults: 128 KB transport buffers, 8-buffer read-ahead.
    pub fn start(store: MofStore) -> io::Result<Self> {
        Self::start_with(store, 128 << 10, 8)
    }

    /// Start with explicit transport-buffer size and prefetch batch.
    pub fn start_with(store: MofStore, buffer_bytes: u64, prefetch_batch: u64) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            store: Mutex::new(store),
            staged: Mutex::new(HashMap::new()),
            stats: SupplierStats::default(),
            stop: AtomicBool::new(false),
            buffer_bytes: buffer_bytes.max(1),
            prefetch_batch: prefetch_batch.max(1),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_shared.stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                accept_shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &conn_shared);
                });
            }
        });
        Ok(MofSupplierServer {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server statistics.
    pub fn stats(&self) -> &SupplierStats {
        &self.shared.stats
    }

    /// Stop accepting and shut down.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Wake the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MofSupplierServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.do_shutdown();
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = io::BufReader::new(stream.try_clone()?);
    let mut writer = io::BufWriter::new(stream);
    use std::io::Write;
    while let Some(req) = FetchRequest::read_from(&mut reader)? {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let resp = serve(shared, req);
        // Count before the response is visible to the peer, so stats read
        // after a completed exchange are never stale.
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        shared
            .stats
            .bytes
            .fetch_add(resp.payload.len() as u64, Ordering::Relaxed);
        resp.write_to(&mut writer)?;
        writer.flush()?;
    }
    Ok(())
}

/// Serve one request through the DataCache read-ahead.
fn serve(shared: &Shared, req: FetchRequest) -> FetchResponse {
    let want = if req.len == 0 {
        u64::MAX
    } else {
        req.len.min(shared.buffer_bytes)
    };

    // Whole-segment requests bypass staging.
    if req.len == 0 {
        let mut store = shared.store.lock();
        return match store.read_segment_range(req.mof, req.reducer, req.offset, 0) {
            Ok(Some(bytes)) => FetchResponse::ok(bytes),
            Ok(None) => FetchResponse::error(Status::NotFound),
            Err(_) => FetchResponse::error(Status::BadRequest),
        };
    }

    let key = (req.mof, req.reducer);
    // Fast path: the range is already staged by a previous read-ahead.
    {
        let staged = shared.staged.lock();
        if let Some(s) = staged.get(&key) {
            if req.offset >= s.offset
                && req.offset + want <= s.offset + s.bytes.len() as u64
            {
                let lo = (req.offset - s.offset) as usize;
                let hi = lo + want as usize;
                shared.stats.datacache_hits.fetch_add(1, Ordering::Relaxed);
                return FetchResponse::ok(s.bytes[lo..hi].to_vec());
            }
        }
    }

    // Slow path: one grouped read-ahead of `prefetch_batch` buffers.
    let ahead = shared.buffer_bytes * shared.prefetch_batch;
    let read = {
        let mut store = shared.store.lock();
        store.read_segment_range(req.mof, req.reducer, req.offset, ahead)
    };
    match read {
        Ok(Some(bytes)) => {
            let serve_len = (want as usize).min(bytes.len());
            let payload = bytes[..serve_len].to_vec();
            shared.staged.lock().insert(
                key,
                Staged {
                    offset: req.offset,
                    bytes,
                },
            );
            FetchResponse::ok(payload)
        }
        Ok(None) => FetchResponse::error(Status::NotFound),
        Err(_) => FetchResponse::error(Status::BadRequest),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jbs_mapred::merge::Record;

    fn store_with_one_mof(records: Vec<Record>) -> MofStore {
        let mut store = MofStore::temp().unwrap();
        store.write_mof(0, records, 1, |_| 0).unwrap();
        store
    }

    fn connect(addr: SocketAddr) -> (io::BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        (io::BufReader::new(stream.try_clone().unwrap()), stream)
    }

    #[test]
    fn serves_whole_segment() {
        let recs: Vec<Record> = (0..100)
            .map(|i| (format!("k{i:03}").into_bytes(), vec![i as u8; 16]))
            .collect();
        let server = MofSupplierServer::start(store_with_one_mof(recs)).unwrap();
        let (mut r, mut w) = connect(server.addr());
        FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert!(!resp.payload.is_empty());
        assert_eq!(server.stats().requests.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn chunked_fetch_reassembles_and_hits_datacache() {
        let recs: Vec<Record> = (0..2000)
            .map(|i| (format!("k{i:05}").into_bytes(), vec![0xAB; 64]))
            .collect();
        let store = store_with_one_mof(recs);
        let server = MofSupplierServer::start_with(store, 4 << 10, 8).unwrap();
        let (mut r, mut w) = connect(server.addr());

        // Whole segment as reference.
        FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
        let whole = FetchResponse::read_from(&mut r).unwrap().payload;

        // Chunked fetch on the same (reused) connection.
        let mut assembled = Vec::new();
        let mut off = 0u64;
        loop {
            FetchRequest {
                mof: 0,
                reducer: 0,
                offset: off,
                len: 4 << 10,
            }
            .write_to(&mut w)
            .unwrap();
            let resp = FetchResponse::read_from(&mut r).unwrap();
            assert_eq!(resp.status, Status::Ok);
            if resp.payload.is_empty() {
                break;
            }
            off += resp.payload.len() as u64;
            assembled.extend_from_slice(&resp.payload);
        }
        assert_eq!(assembled, whole);
        // Read-ahead must have served most chunks from memory.
        let hits = server.stats().datacache_hits.load(Ordering::Relaxed);
        let reqs = server.stats().requests.load(Ordering::Relaxed);
        assert!(hits * 2 > reqs, "hits {hits} of {reqs} requests");
        server.shutdown();
    }

    #[test]
    fn unknown_mof_is_not_found() {
        let server =
            MofSupplierServer::start(store_with_one_mof(vec![(b"k".to_vec(), b"v".to_vec())]))
                .unwrap();
        let (mut r, mut w) = connect(server.addr());
        FetchRequest::whole_segment(42, 0).write_to(&mut w).unwrap();
        let resp = FetchResponse::read_from(&mut r).unwrap();
        assert_eq!(resp.status, Status::NotFound);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_isolated() {
        let recs: Vec<Record> = (0..500)
            .map(|i| (format!("{i:06}").into_bytes(), vec![1; 32]))
            .collect();
        let server = Arc::new(MofSupplierServer::start(store_with_one_mof(recs)).unwrap());
        let addr = server.addr();
        let mut joins = Vec::new();
        for _ in 0..8 {
            joins.push(std::thread::spawn(move || {
                let (mut r, mut w) = connect(addr);
                FetchRequest::whole_segment(0, 0).write_to(&mut w).unwrap();
                FetchResponse::read_from(&mut r).unwrap().payload.len()
            }));
        }
        let sizes: Vec<usize> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]));
        assert!(server.stats().connections.load(Ordering::Relaxed) >= 8);
    }
}
