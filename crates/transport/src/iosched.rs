//! Permit-based disk IO scheduler: read vs. append arbitration.
//!
//! The supplier's disk traffic comes from two independent producers —
//! the prefetch thread staging segment ranges ahead of the reduce wave,
//! and the hybrid store's spill flusher appending sealed buffers to
//! local files. Left unarbitrated they issue IO free-for-all, and under
//! memory pressure the spill burst steals the head positions the
//! prefetcher was counting on. [`IoScheduler`] puts a small semaphore in
//! front of the disk: each class ([`IoClass::Read`] for staging reads,
//! [`IoClass::Append`] for spill appends) gets a configured number of
//! permits, an IO holds a permit for its duration, and excess demand
//! queues on a condvar instead of the disk's internal queue — so the
//! arbitration point is visible (per-class `held`/`queued` gauges,
//! `iosched.acquire` instants, `iosched.wait` spans) instead of buried
//! in the elevator.
//!
//! Locking: the single `permits` mutex guards only the free/queued
//! counts; it is never held across the IO itself (the permit is a
//! separate RAII value), and the condvar wait releases it — both facts
//! the blocking-under-lock lint checks.
//!
//! The hybrid store cannot depend on this crate (it would be a cycle),
//! so it defines the two-method [`jbs_store_hybrid::SpillGate`] trait
//! and [`IoScheduler`] implements it; `src/lib.rs` wires one shared
//! scheduler into both the server options and the hybrid config.

use crate::sync::{lock, wait, Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which class of disk IO a permit covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoClass {
    /// Staging/prefetch reads (and any other segment read).
    Read,
    /// Spill-flush appends from the hybrid store.
    Append,
}

impl IoClass {
    /// Payload word used in `iosched.*` trace events.
    fn code(self) -> u64 {
        match self {
            IoClass::Read => 0,
            IoClass::Append => 1,
        }
    }
}

/// Free/queued counts for one class.
#[derive(Debug, Clone, Copy)]
struct ClassState {
    free: usize,
    queued: usize,
}

/// Per-class counts; the one mutex-guarded state. Named fields instead
/// of `[_; 2]` arrays keep the dataplane free of panicking indexing.
struct PermitState {
    read: ClassState,
    append: ClassState,
}

impl PermitState {
    fn class(&mut self, class: IoClass) -> &mut ClassState {
        match class {
            IoClass::Read => &mut self.read,
            IoClass::Append => &mut self.append,
        }
    }
}

/// Lock-free counters for one class.
#[derive(Default)]
struct ClassCounters {
    acquires: AtomicU64,
    waits: AtomicU64,
}

/// Point-in-time view of the scheduler, for stats snapshots and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSchedStats {
    /// Configured permits per class.
    pub read_permits: usize,
    pub append_permits: usize,
    /// Permits currently held (configured minus free).
    pub read_held: usize,
    pub append_held: usize,
    /// Acquirers currently blocked waiting for a permit.
    pub read_queued: usize,
    pub append_queued: usize,
    /// Total permits ever granted per class.
    pub read_acquires: u64,
    pub append_acquires: u64,
    /// Acquisitions that had to block first.
    pub read_waits: u64,
    pub append_waits: u64,
}

/// A counting semaphore with two permit classes and full observability.
pub struct IoScheduler {
    permits: Mutex<PermitState>,
    cv: Condvar,
    read_cap: usize,
    append_cap: usize,
    read_counters: ClassCounters,
    append_counters: ClassCounters,
    trace: jbs_obs::Trace,
}

impl std::fmt::Debug for IoScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("IoScheduler")
            .field("read_permits", &s.read_permits)
            .field("append_permits", &s.append_permits)
            .field("read_held", &s.read_held)
            .field("append_held", &s.append_held)
            .finish()
    }
}

impl IoScheduler {
    /// A scheduler with `read_permits`/`append_permits` per class,
    /// tracing disabled. Zero permits for a class means that class is
    /// unlimited (acquire never blocks, useful to disable arbitration).
    pub fn new(read_permits: usize, append_permits: usize) -> Self {
        Self::with_trace(read_permits, append_permits, jbs_obs::Trace::disabled())
    }

    /// A scheduler that records `iosched.acquire` instants and
    /// `iosched.wait` spans to `trace`.
    pub fn with_trace(read_permits: usize, append_permits: usize, trace: jbs_obs::Trace) -> Self {
        IoScheduler {
            permits: Mutex::new(PermitState {
                read: ClassState {
                    free: read_permits,
                    queued: 0,
                },
                append: ClassState {
                    free: append_permits,
                    queued: 0,
                },
            }),
            cv: Condvar::new(),
            read_cap: read_permits,
            append_cap: append_permits,
            read_counters: ClassCounters::default(),
            append_counters: ClassCounters::default(),
            trace,
        }
    }

    fn cap(&self, class: IoClass) -> usize {
        match class {
            IoClass::Read => self.read_cap,
            IoClass::Append => self.append_cap,
        }
    }

    /// The configured Read-class permit cap (0 = unlimited). The server
    /// sizes its disk-worker pool off this, so the permits bound real
    /// concurrency rather than an oversubscribed thread herd.
    pub fn read_permits(&self) -> usize {
        self.read_cap
    }

    fn counters(&self, class: IoClass) -> &ClassCounters {
        match class {
            IoClass::Read => &self.read_counters,
            IoClass::Append => &self.append_counters,
        }
    }

    /// Block until a permit of `class` is free and take it. The permit
    /// is released when the returned guard drops.
    pub fn acquire(self: &Arc<Self>, class: IoClass) -> IoPermit {
        self.acquire_raw(class);
        IoPermit {
            sched: Arc::clone(self),
            class,
        }
    }

    /// Permit acquisition without the RAII wrapper — the form the
    /// [`jbs_store_hybrid::SpillGate`] impl needs (trait methods cannot
    /// return a borrow-carrying guard across the crate boundary). Every
    /// `acquire_raw` must be paired with exactly one `release_raw`.
    pub fn acquire_raw(&self, class: IoClass) {
        let cap = self.cap(class);
        if cap == 0 {
            // Unlimited class: count the grant, skip the semaphore.
            self.counters(class)
                .acquires
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut g = lock(&self.permits);
        if g.class(class).free == 0 {
            self.counters(class).waits.fetch_add(1, Ordering::Relaxed);
            g.class(class).queued += 1;
            let queued = g.class(class).queued as u64;
            let span = self.trace.span(
                "iosched.wait",
                jbs_obs::Entity::pool(1),
                class.code(),
                queued,
            );
            while g.class(class).free == 0 {
                g = wait(&self.cv, g);
            }
            g.class(class).queued -= 1;
            drop(span);
        }
        g.class(class).free -= 1;
        let held = (cap - g.class(class).free) as u64;
        drop(g);
        self.counters(class)
            .acquires
            .fetch_add(1, Ordering::Relaxed);
        self.trace.instant(
            "iosched.acquire",
            jbs_obs::Entity::pool(1),
            class.code(),
            held,
        );
    }

    /// Return a permit of `class`; wakes one queued acquirer.
    pub fn release_raw(&self, class: IoClass) {
        let cap = self.cap(class);
        if cap == 0 {
            return;
        }
        let mut g = lock(&self.permits);
        debug_assert!(g.class(class).free < cap, "permit released twice");
        g.class(class).free += 1;
        let any_queued = g.read.queued + g.append.queued > 0;
        drop(g);
        if any_queued {
            // Waiters of both classes share the condvar; notify_all keeps
            // a Read release from waking only an Append waiter and
            // stranding the Read queue (and vice versa).
            self.cv.notify_all();
        }
    }

    /// Copy out the gauges and counters.
    pub fn stats(&self) -> IoSchedStats {
        let g = lock(&self.permits);
        IoSchedStats {
            read_permits: self.read_cap,
            append_permits: self.append_cap,
            read_held: self.read_cap - g.read.free,
            append_held: self.append_cap - g.append.free,
            read_queued: g.read.queued,
            append_queued: g.append.queued,
            read_acquires: self.read_counters.acquires.load(Ordering::Relaxed),
            append_acquires: self.append_counters.acquires.load(Ordering::Relaxed),
            read_waits: self.read_counters.waits.load(Ordering::Relaxed),
            append_waits: self.append_counters.waits.load(Ordering::Relaxed),
        }
    }
}

/// RAII permit: held for the duration of one disk IO, released on drop.
#[must_use = "the permit is released as soon as this guard drops"]
pub struct IoPermit {
    sched: Arc<IoScheduler>,
    class: IoClass,
}

impl Drop for IoPermit {
    fn drop(&mut self) {
        self.sched.release_raw(self.class);
    }
}

/// The hybrid store's spill flusher takes an append permit around each
/// `write_local` without depending on this crate: it calls through the
/// [`jbs_store_hybrid::SpillGate`] object in its config.
impl jbs_store_hybrid::SpillGate for IoScheduler {
    fn acquire_append(&self) {
        self.acquire_raw(IoClass::Append);
    }
    fn release_append(&self) {
        self.release_raw(IoClass::Append);
    }
}

/// Bounded model checks. Run with
/// `RUSTFLAGS="--cfg loom" cargo test -p jbs-transport --lib loom_`.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;

    /// The release-vs-waiter race (satellite model): with one Append
    /// permit, a holder releasing concurrently with a blocked acquirer
    /// must hand the permit over in every interleaving — the waiter
    /// always wakes (no lost notify), and at no point do two holders
    /// coexist.
    #[test]
    fn loom_permit_release_wakes_waiter() {
        loom::model(|| {
            let sched = Arc::new(IoScheduler::new(1, 1));
            sched.acquire_raw(IoClass::Append);
            let s2 = Arc::clone(&sched);
            let h = loom::thread::spawn(move || {
                // Blocks until the main thread releases.
                s2.acquire_raw(IoClass::Append);
                let st = s2.stats();
                assert_eq!(st.append_held, 1, "two holders coexisted");
                s2.release_raw(IoClass::Append);
            });
            sched.release_raw(IoClass::Append);
            if h.join().is_err() {
                panic!("waiter panicked");
            }
            let st = sched.stats();
            assert_eq!(st.append_held, 0);
            assert_eq!(st.append_queued, 0);
            assert_eq!(st.append_acquires, 2);
        });
    }

    /// Classes are independent: a Read holder never blocks an Append
    /// acquirer (and the gauges stay per-class).
    #[test]
    fn loom_classes_do_not_interfere() {
        loom::model(|| {
            let sched = Arc::new(IoScheduler::new(1, 1));
            sched.acquire_raw(IoClass::Read);
            let s2 = Arc::clone(&sched);
            let h = loom::thread::spawn(move || {
                s2.acquire_raw(IoClass::Append);
                s2.release_raw(IoClass::Append);
            });
            if h.join().is_err() {
                panic!("append acquirer panicked");
            }
            sched.release_raw(IoClass::Read);
            let st = sched.stats();
            assert_eq!((st.read_held, st.append_held), (0, 0));
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn permits_bound_concurrency_and_count() {
        let sched = Arc::new(IoScheduler::new(2, 1));
        let a = sched.acquire(IoClass::Read);
        let b = sched.acquire(IoClass::Read);
        let st = sched.stats();
        assert_eq!(st.read_held, 2);
        assert_eq!(st.read_acquires, 2);
        assert_eq!(st.read_waits, 0);
        drop(a);
        assert_eq!(sched.stats().read_held, 1);
        drop(b);
        assert_eq!(sched.stats().read_held, 0);
    }

    #[test]
    fn blocked_acquirer_waits_then_proceeds() {
        let sched = Arc::new(IoScheduler::new(1, 1));
        let held = sched.acquire(IoClass::Read);
        let s2 = Arc::clone(&sched);
        let h = std::thread::spawn(move || {
            let p = s2.acquire(IoClass::Read); // blocks until release below
            let held_now = s2.stats().read_held;
            drop(p);
            held_now
        });
        // Wait until the thread is visibly queued, then release.
        let mut spins = 0;
        while sched.stats().read_queued == 0 && spins < 2000 {
            std::thread::sleep(Duration::from_millis(1));
            spins += 1;
        }
        assert_eq!(sched.stats().read_queued, 1, "acquirer never queued");
        drop(held);
        let held_now = h.join().expect("waiter panicked");
        assert_eq!(held_now, 1);
        let st = sched.stats();
        assert_eq!(st.read_waits, 1);
        assert_eq!(st.read_acquires, 2);
        assert_eq!(st.read_queued, 0);
    }

    #[test]
    fn zero_permit_class_is_unlimited() {
        let sched = Arc::new(IoScheduler::new(0, 1));
        let a = sched.acquire(IoClass::Read);
        let b = sched.acquire(IoClass::Read);
        let c = sched.acquire(IoClass::Read);
        let st = sched.stats();
        assert_eq!(st.read_held, 0, "unlimited class holds no permits");
        assert_eq!(st.read_acquires, 3);
        drop((a, b, c));
    }

    #[test]
    fn wait_events_land_in_trace() {
        let trace = jbs_obs::Trace::recording(256);
        let sched = Arc::new(IoScheduler::with_trace(1, 1, trace.clone()));
        let p = sched.acquire(IoClass::Read);
        let s2 = Arc::clone(&sched);
        let h = std::thread::spawn(move || drop(s2.acquire(IoClass::Read)));
        while sched.stats().read_queued == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(p);
        h.join().expect("waiter panicked");
        let q = trace.query();
        assert!(q.count("iosched.acquire") >= 2);
        assert_eq!(q.count("iosched.wait"), 1);
    }
}
