//! The JBS fetch wire protocol.
//!
//! A fetch request addresses a byte range of one reducer's segment in one
//! MOF — the unit the NetMerger's transport buffers work in. Responses are
//! length-framed so a connection can carry many request/response exchanges
//! (connections are cached and reused, unlike Hadoop's per-fetch HTTP).
//!
//! ```text
//! request  := MAGIC u32 | id u64 | mof u64 | reducer u32 | offset u64 | len u64
//! response := status u8 | id u64 | payload_len u64 | payload[payload_len]
//! ```
//!
//! `len == 0` requests the whole remainder of the segment from `offset`.
//!
//! `id` is a client-chosen request identifier echoed verbatim in the
//! response. The server answers requests strictly in arrival order, so
//! ids are not needed for reordering — they exist so a *pipelined*
//! client with several requests in flight on one connection can verify
//! that responses stay in lockstep with its outstanding window; an id
//! mismatch means the stream desynchronized and the connection must be
//! torn down rather than trusted.

use bytes::{Buf, BufMut, BytesMut};
use std::io::{self, IoSlice, Read, Write};

/// Protocol magic ("JBS2" — v2 added pipelined request ids).
pub const REQUEST_MAGIC: u32 = 0x4A42_5332;

/// Size of an encoded request.
pub const REQUEST_LEN: usize = 4 + 8 + 8 + 4 + 8 + 8;

/// Size of an encoded response header (status, id, payload length).
pub const RESPONSE_HEADER_LEN: usize = 1 + 8 + 8;

/// Upper bound on a response payload. A length header above this is
/// treated as frame corruption rather than an allocation request —
/// without it, a single flipped header bit would make the client try
/// to allocate (and then block reading) up to 2^64 bytes.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Response status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Payload follows.
    Ok = 0,
    /// Unknown MOF or reducer.
    NotFound = 1,
    /// Malformed request.
    BadRequest = 2,
}

impl Status {
    /// Strict decode: an unknown byte is corruption, not a status. (A
    /// corrupted status byte must not masquerade as a legitimate
    /// `BadRequest` verdict from the server — that would turn a
    /// retryable frame error into a permanent one.)
    fn from_u8(v: u8) -> Option<Status> {
        match v {
            0 => Some(Status::Ok),
            1 => Some(Status::NotFound),
            2 => Some(Status::BadRequest),
            _ => None,
        }
    }
}

/// One fetch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchRequest {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// MOF id.
    pub mof: u64,
    /// Reducer (partition) number.
    pub reducer: u32,
    /// Segment-relative byte offset.
    pub offset: u64,
    /// Bytes requested (0 = rest of the segment).
    pub len: u64,
}

impl FetchRequest {
    /// Request a whole segment.
    pub fn whole_segment(mof: u64, reducer: u32) -> Self {
        FetchRequest {
            id: 0,
            mof,
            reducer,
            offset: 0,
            len: 0,
        }
    }

    /// Encode to the wire format.
    pub fn encode(&self) -> [u8; REQUEST_LEN] {
        let mut buf = BytesMut::with_capacity(REQUEST_LEN);
        buf.put_u32(REQUEST_MAGIC);
        buf.put_u64(self.id);
        buf.put_u64(self.mof);
        buf.put_u32(self.reducer);
        buf.put_u64(self.offset);
        buf.put_u64(self.len);
        let mut out = [0u8; REQUEST_LEN];
        out.copy_from_slice(&buf);
        out
    }

    /// Decode from the wire format.
    pub fn decode(mut buf: &[u8]) -> io::Result<Self> {
        if buf.len() < REQUEST_LEN {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "short request",
            ));
        }
        let magic = buf.get_u32();
        if magic != REQUEST_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        Ok(FetchRequest {
            id: buf.get_u64(),
            mof: buf.get_u64(),
            reducer: buf.get_u32(),
            offset: buf.get_u64(),
            len: buf.get_u64(),
        })
    }

    /// Write this request to a stream.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.encode())
    }

    /// Read one request from a stream. Returns `Ok(None)` on clean EOF
    /// before any byte (the peer closed a reused connection).
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Option<Self>> {
        let mut buf = [0u8; REQUEST_LEN];
        let mut filled = 0;
        while filled < REQUEST_LEN {
            match r.read(buf.get_mut(filled..).unwrap_or_default()) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "truncated request",
                    ))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Self::decode(&buf).map(Some)
    }
}

/// One fetch response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchResponse {
    /// Outcome.
    pub status: Status,
    /// Echo of the request's id.
    pub id: u64,
    /// Segment bytes (empty unless `status == Ok`).
    pub payload: Vec<u8>,
}

impl FetchResponse {
    /// A successful response to request `id`.
    pub fn ok(id: u64, payload: Vec<u8>) -> Self {
        FetchResponse {
            status: Status::Ok,
            id,
            payload,
        }
    }

    /// An error response to request `id`.
    pub fn error(id: u64, status: Status) -> Self {
        FetchResponse {
            status,
            id,
            payload: Vec::new(),
        }
    }

    fn encode_header(&self) -> [u8; RESPONSE_HEADER_LEN] {
        let mut buf = BytesMut::with_capacity(RESPONSE_HEADER_LEN);
        buf.put_u8(self.status as u8);
        buf.put_u64(self.id);
        buf.put_u64(self.payload.len() as u64);
        let mut out = [0u8; RESPONSE_HEADER_LEN];
        out.copy_from_slice(&buf);
        out
    }

    /// Write header + payload to a stream.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.encode_header())?;
        w.write_all(&self.payload)
    }

    /// Write header + payload in one vectored syscall where the sink
    /// supports it, avoiding the copy of payload bytes into a combined
    /// frame buffer. Handles partial vectored writes and `Interrupted`.
    pub fn write_vectored_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let hdr = self.encode_header();
        let total = RESPONSE_HEADER_LEN + self.payload.len();
        let mut written = 0usize;
        while written < total {
            let n = if written < RESPONSE_HEADER_LEN {
                let bufs = [
                    IoSlice::new(hdr.get(written..).unwrap_or_default()),
                    IoSlice::new(&self.payload),
                ];
                w.write_vectored(&bufs)
            } else {
                let off = written - RESPONSE_HEADER_LEN;
                w.write(self.payload.get(off..).unwrap_or_default())
            };
            match n {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "response frame write stalled",
                    ))
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Read a full response from a stream. Never panics: an unknown
    /// status byte or an implausible payload length is reported as
    /// `InvalidData` (frame corruption) without allocating.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut hdr = [0u8; RESPONSE_HEADER_LEN];
        r.read_exact(&mut hdr)?;
        let mut buf = hdr.as_slice();
        let status_byte = buf.get_u8();
        let status = Status::from_u8(status_byte).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid status byte {status_byte:#04x}"),
            )
        })?;
        let id = buf.get_u64();
        let len = buf.get_u64();
        if len > MAX_PAYLOAD as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("payload length {len} exceeds cap {MAX_PAYLOAD}"),
            ));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        Ok(FetchResponse {
            status,
            id,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = FetchRequest {
            id: 0xDEAD_BEEF,
            mof: 7,
            reducer: 3,
            offset: 4096,
            len: 128 << 10,
        };
        let enc = req.encode();
        assert_eq!(enc.len(), REQUEST_LEN);
        assert_eq!(FetchRequest::decode(&enc).unwrap(), req);
    }

    #[test]
    fn request_rejects_bad_magic() {
        let mut enc = FetchRequest::whole_segment(1, 2).encode();
        enc[0] ^= 0xFF;
        assert!(FetchRequest::decode(&enc).is_err());
        assert!(FetchRequest::decode(&enc[..8]).is_err());
    }

    #[test]
    fn request_stream_roundtrip_and_eof() {
        let req = FetchRequest::whole_segment(9, 1);
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(FetchRequest::read_from(&mut cursor).unwrap(), Some(req));
        // Clean EOF after a full request -> None.
        assert_eq!(FetchRequest::read_from(&mut cursor).unwrap(), None);
    }

    #[test]
    fn truncated_request_is_an_error() {
        let req = FetchRequest::whole_segment(9, 1);
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        buf.truncate(REQUEST_LEN - 3);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(FetchRequest::read_from(&mut cursor).is_err());
    }

    #[test]
    fn response_roundtrip() {
        let resp = FetchResponse::ok(11, vec![1, 2, 3, 4, 5]);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let back = FetchResponse::read_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.id, 11);
    }

    #[test]
    fn vectored_write_matches_plain_write() {
        for payload in [Vec::new(), vec![7u8; 3], vec![0xA5; 64 << 10]] {
            let resp = FetchResponse::ok(42, payload);
            let mut plain = Vec::new();
            resp.write_to(&mut plain).unwrap();
            let mut vectored = Vec::new();
            resp.write_vectored_to(&mut vectored).unwrap();
            assert_eq!(plain, vectored);
        }
    }

    /// A sink that accepts one byte per call, forcing the vectored
    /// writer through every partial-write resume point (header split,
    /// header/payload boundary, payload split).
    struct TrickleSink(Vec<u8>);

    impl Write for TrickleSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match buf.first() {
                Some(&b) => {
                    self.0.push(b);
                    Ok(1)
                }
                None => Ok(0),
            }
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            for b in bufs {
                if let Some(&byte) = b.first() {
                    self.0.push(byte);
                    return Ok(1);
                }
            }
            Ok(0)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_write_survives_partial_writes() {
        let resp = FetchResponse::ok(9, (0..=255u8).collect());
        let mut sink = TrickleSink(Vec::new());
        resp.write_vectored_to(&mut sink).unwrap();
        let mut plain = Vec::new();
        resp.write_to(&mut plain).unwrap();
        assert_eq!(sink.0, plain);
    }

    #[test]
    fn error_response_roundtrip() {
        let resp = FetchResponse::error(3, Status::NotFound);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let back = FetchResponse::read_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.status, Status::NotFound);
        assert_eq!(back.id, 3);
        assert!(back.payload.is_empty());
    }

    #[test]
    fn unknown_status_byte_is_corruption() {
        let resp = FetchResponse::ok(0, vec![1, 2, 3]);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        buf[0] = 0xEE;
        let err = FetchResponse::read_from(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_header_is_corruption_not_allocation() {
        let resp = FetchResponse::ok(0, vec![9; 16]);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        // Flip a high byte of the length field (after status + id): the
        // decoder must reject it before trying to allocate petabytes.
        buf[1 + 8] ^= 0xFF;
        let err = FetchResponse::read_from(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn many_exchanges_on_one_stream() {
        let mut buf = Vec::new();
        for i in 0..10u64 {
            FetchRequest {
                id: i,
                ..FetchRequest::whole_segment(i, i as u32)
            }
            .write_to(&mut buf)
            .unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for i in 0..10u64 {
            let req = FetchRequest::read_from(&mut cursor).unwrap().unwrap();
            assert_eq!(req.mof, i);
            assert_eq!(req.id, i);
        }
        assert_eq!(FetchRequest::read_from(&mut cursor).unwrap(), None);
    }
}
