//! The JBS fetch wire protocol.
//!
//! A fetch request addresses a byte range of one reducer's segment in one
//! MOF — the unit the NetMerger's transport buffers work in. Responses are
//! length-framed so a connection can carry many request/response exchanges
//! (connections are cached and reused, unlike Hadoop's per-fetch HTTP).
//!
//! ```text
//! v2 request  := MAGIC2 u32 | id u64 | mof u64 | reducer u32 | offset u64 | len u64
//! v3 request  := MAGIC3 u32 | flags u8 | id u64 | mof u64 | reducer u32 | offset u64 | len u64
//! response    := status u8 | id u64 | len u64 | ext | payload[...]
//! ```
//!
//! `len == 0` requests the whole remainder of the segment from `offset`.
//!
//! `id` is a client-chosen request identifier echoed verbatim in the
//! response. The server answers requests strictly in arrival order, so
//! ids are not needed for reordering — they exist so a *pipelined*
//! client with several requests in flight on one connection can verify
//! that responses stay in lockstep with its outstanding window; an id
//! mismatch means the stream desynchronized and the connection must be
//! torn down rather than trusted.
//!
//! ## Version 3: integrity and overload extensions
//!
//! A v3 request differs from v2 only in its magic and one `flags` byte
//! ([`FLAG_BYPASS_CACHE`]: the supplier must re-read from disk instead
//! of serving staged DataCache bytes — the targeted re-fetch a client
//! issues after a checksum mismatch, so poisoned cache contents are
//! never re-served). A server answers in the dialect the *request* was
//! framed in, so old and new peers interoperate per-exchange:
//!
//! * [`Status::OkCrc`] (v3 only) — the 17-byte header is followed by a
//!   12-byte extension: `crc32c u32 | seg_len u64`, then the payload.
//!   `crc32c` covers exactly the payload bytes; `seg_len` is the total
//!   length of the addressed segment, which lets the client account for
//!   expected bytes and turn a truncation landing exactly on a chunk
//!   boundary (indistinguishable from clean EOF in v2) into a typed
//!   error.
//! * [`Status::Busy`] (v3 only) — admission control: the supplier is
//!   shedding load. No payload; the header's `len` field carries a
//!   retry-after hint in milliseconds instead of a payload length.
//!
//! Version negotiation is client-driven: a client opens with v3 and a
//! genuine v2-only server rejects the unknown magic by dropping the
//! connection, which the client observes as a reset *before any v3
//! response* and downgrades that peer to v2 (see `client.rs`).

use bytes::{Buf, BufMut, BytesMut};
use std::io::{self, IoSlice, Read, Write};

/// Protocol magic ("JBS2" — v2 added pipelined request ids).
pub const REQUEST_MAGIC: u32 = 0x4A42_5332;

/// Protocol magic ("JBS3" — v3 added checksums, busy frames, flags).
pub const REQUEST_MAGIC_V3: u32 = 0x4A42_5333;

/// Size of an encoded v2 request.
pub const REQUEST_LEN: usize = 4 + 8 + 8 + 4 + 8 + 8;

/// Size of an encoded v3 request (v2 plus the flags byte).
pub const REQUEST_LEN_V3: usize = REQUEST_LEN + 1;

/// Size of an encoded response header (status, id, payload length).
pub const RESPONSE_HEADER_LEN: usize = 1 + 8 + 8;

/// Size of the v3 integrity extension following an [`Status::OkCrc`]
/// header: payload CRC32C (u32) + total segment length (u64).
pub const CRC_EXT_LEN: usize = 4 + 8;

/// Request flag (v3): bypass the supplier's staged DataCache and re-read
/// the range from disk. Set on the targeted re-fetch after a checksum
/// mismatch so poisoned cache bytes are not served twice.
pub const FLAG_BYPASS_CACHE: u8 = 1;

/// Upper bound on a response payload. A length header above this is
/// treated as frame corruption rather than an allocation request —
/// without it, a single flipped header bit would make the client try
/// to allocate (and then block reading) up to 2^64 bytes.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Which request dialect a peer spoke. The server echoes the dialect of
/// each request; the client tracks one per peer (see `client.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireVersion {
    /// "JBS2": no checksum, no flags, no busy frames.
    V2,
    /// "JBS3": flags byte, `OkCrc` integrity frames, `Busy` frames.
    V3,
}

/// Response status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Payload follows.
    Ok = 0,
    /// Unknown MOF or reducer.
    NotFound = 1,
    /// Malformed request.
    BadRequest = 2,
    /// Payload follows, preceded by the v3 integrity extension
    /// (`crc32c u32 | seg_len u64`).
    OkCrc = 3,
    /// Supplier is shedding load; retry after the hinted delay. The
    /// header's `len` field carries the hint in milliseconds.
    Busy = 4,
}

impl Status {
    /// Strict decode: an unknown byte is corruption, not a status. (A
    /// corrupted status byte must not masquerade as a legitimate
    /// `BadRequest` verdict from the server — that would turn a
    /// retryable frame error into a permanent one.)
    fn from_u8(v: u8) -> Option<Status> {
        match v {
            0 => Some(Status::Ok),
            1 => Some(Status::NotFound),
            2 => Some(Status::BadRequest),
            3 => Some(Status::OkCrc),
            4 => Some(Status::Busy),
            _ => None,
        }
    }
}

/// One fetch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchRequest {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// MOF id.
    pub mof: u64,
    /// Reducer (partition) number.
    pub reducer: u32,
    /// Segment-relative byte offset.
    pub offset: u64,
    /// Bytes requested (0 = rest of the segment).
    pub len: u64,
    /// v3 request flags ([`FLAG_BYPASS_CACHE`]); dropped on the v2
    /// frame, which has no flags byte.
    pub flags: u8,
}

impl FetchRequest {
    /// Request a whole segment.
    pub fn whole_segment(mof: u64, reducer: u32) -> Self {
        FetchRequest {
            id: 0,
            mof,
            reducer,
            offset: 0,
            len: 0,
            flags: 0,
        }
    }

    /// Does this request carry the cache-bypass flag?
    pub fn bypass_cache(&self) -> bool {
        self.flags & FLAG_BYPASS_CACHE != 0
    }

    /// Encode to the legacy v2 wire format (flags are dropped).
    pub fn encode(&self) -> [u8; REQUEST_LEN] {
        let mut buf = BytesMut::with_capacity(REQUEST_LEN);
        buf.put_u32(REQUEST_MAGIC);
        buf.put_u64(self.id);
        buf.put_u64(self.mof);
        buf.put_u32(self.reducer);
        buf.put_u64(self.offset);
        buf.put_u64(self.len);
        let mut out = [0u8; REQUEST_LEN];
        out.copy_from_slice(&buf);
        out
    }

    /// Encode to the v3 wire format (magic + flags byte).
    pub fn encode_v3(&self) -> [u8; REQUEST_LEN_V3] {
        let mut buf = BytesMut::with_capacity(REQUEST_LEN_V3);
        buf.put_u32(REQUEST_MAGIC_V3);
        buf.put_u8(self.flags);
        buf.put_u64(self.id);
        buf.put_u64(self.mof);
        buf.put_u32(self.reducer);
        buf.put_u64(self.offset);
        buf.put_u64(self.len);
        let mut out = [0u8; REQUEST_LEN_V3];
        out.copy_from_slice(&buf);
        out
    }

    /// Decode either request dialect, reporting which one was spoken.
    pub fn decode(mut buf: &[u8]) -> io::Result<(Self, WireVersion)> {
        if buf.len() < 4 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "short request",
            ));
        }
        let magic = buf.get_u32();
        let (version, need) = match magic {
            REQUEST_MAGIC => (WireVersion::V2, REQUEST_LEN - 4),
            REQUEST_MAGIC_V3 => (WireVersion::V3, REQUEST_LEN_V3 - 4),
            _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic")),
        };
        if buf.len() < need {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "short request",
            ));
        }
        let flags = match version {
            WireVersion::V2 => 0,
            WireVersion::V3 => buf.get_u8(),
        };
        Ok((
            FetchRequest {
                id: buf.get_u64(),
                mof: buf.get_u64(),
                reducer: buf.get_u32(),
                offset: buf.get_u64(),
                len: buf.get_u64(),
                flags,
            },
            version,
        ))
    }

    /// Write this request as a v2 frame.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.encode())
    }

    /// Write this request in the given dialect.
    pub fn write_versioned<W: Write>(&self, w: &mut W, version: WireVersion) -> io::Result<()> {
        match version {
            WireVersion::V2 => w.write_all(&self.encode()),
            WireVersion::V3 => w.write_all(&self.encode_v3()),
        }
    }

    /// Read one request (either dialect) from a stream. Returns
    /// `Ok(None)` on clean EOF before any byte (the peer closed a
    /// reused connection).
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Option<(Self, WireVersion)>> {
        let mut buf = [0u8; REQUEST_LEN_V3];
        // The magic tells us how much more to read.
        if !fill(r, buf.get_mut(..4).unwrap_or_default(), true)? {
            return Ok(None);
        }
        let magic = buf
            .get(..4)
            .and_then(|b| b.try_into().ok())
            .map(u32::from_be_bytes)
            .unwrap_or(0);
        let total = match magic {
            REQUEST_MAGIC => REQUEST_LEN,
            REQUEST_MAGIC_V3 => REQUEST_LEN_V3,
            _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic")),
        };
        fill(r, buf.get_mut(4..total).unwrap_or_default(), false)?;
        Self::decode(buf.get(..total).unwrap_or_default()).map(Some)
    }
}

/// Read exactly `buf.len()` bytes, looping on `Interrupted`. Returns
/// `Ok(false)` on clean EOF before any byte iff `eof_ok`; mid-buffer
/// EOF is always `UnexpectedEof`.
fn fill<R: Read>(r: &mut R, buf: &mut [u8], eof_ok: bool) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(buf.get_mut(filled..).unwrap_or_default()) {
            Ok(0) if filled == 0 && eof_ok => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated request",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// One fetch response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchResponse {
    /// Outcome.
    pub status: Status,
    /// Echo of the request's id.
    pub id: u64,
    /// Segment bytes (empty unless `status` is `Ok`/`OkCrc`).
    pub payload: Vec<u8>,
    /// CRC32C over `payload`; meaningful iff `status == OkCrc`.
    pub crc: u32,
    /// Total length of the addressed segment; meaningful iff
    /// `status == OkCrc`. Lets the client account expected bytes and
    /// detect truncation that lands exactly on a chunk boundary.
    pub seg_len: u64,
    /// Retry-after hint in milliseconds; meaningful iff
    /// `status == Busy`.
    pub retry_after_ms: u64,
}

/// Encode a response head from its parts, without a [`FetchResponse`]
/// in hand: status, request id, the header's `len` field (payload
/// length, or the retry-after hint for `Busy`), and for `OkCrc` the
/// integrity extension `(crc32c, seg_len)`. The reactor uses this to
/// frame payloads that stay resident in the DataCache slab — there is
/// no owned payload `Vec` to hang a `FetchResponse` on.
pub(crate) fn encode_head_parts(
    status: Status,
    id: u64,
    len_field: u64,
    crc_seg: Option<(u32, u64)>,
) -> ([u8; RESPONSE_HEADER_LEN + CRC_EXT_LEN], usize) {
    let mut buf = BytesMut::with_capacity(RESPONSE_HEADER_LEN + CRC_EXT_LEN);
    buf.put_u8(status as u8);
    buf.put_u64(id);
    buf.put_u64(len_field);
    if let Some((crc, seg_len)) = crc_seg {
        buf.put_u32(crc);
        buf.put_u64(seg_len);
    }
    let used = buf.len();
    let mut out = [0u8; RESPONSE_HEADER_LEN + CRC_EXT_LEN];
    out.get_mut(..used).unwrap_or_default().copy_from_slice(&buf);
    (out, used)
}

impl FetchResponse {
    /// A successful v2 response to request `id` (no checksum).
    pub fn ok(id: u64, payload: Vec<u8>) -> Self {
        FetchResponse {
            status: Status::Ok,
            id,
            payload,
            crc: 0,
            seg_len: 0,
            retry_after_ms: 0,
        }
    }

    /// A successful v3 response: payload checksummed at the supplier,
    /// total segment length carried for expected-byte accounting.
    pub fn ok_crc(id: u64, payload: Vec<u8>, seg_len: u64) -> Self {
        let crc = jbs_checksum::crc32c(&payload);
        FetchResponse {
            status: Status::OkCrc,
            id,
            payload,
            crc,
            seg_len,
            retry_after_ms: 0,
        }
    }

    /// An overload response: no payload, retry after `retry_after_ms`.
    pub fn busy(id: u64, retry_after_ms: u64) -> Self {
        FetchResponse {
            status: Status::Busy,
            id,
            payload: Vec::new(),
            crc: 0,
            seg_len: 0,
            // The hint travels in the header's len field, which the
            // reader bounds at MAX_PAYLOAD; clamp so a large hint is
            // never mistaken for corruption.
            retry_after_ms: retry_after_ms.min(60_000),
        }
    }

    /// An error response to request `id`.
    pub fn error(id: u64, status: Status) -> Self {
        FetchResponse {
            status,
            id,
            payload: Vec::new(),
            crc: 0,
            seg_len: 0,
            retry_after_ms: 0,
        }
    }

    /// Does the payload match the carried checksum? Always true for
    /// non-`OkCrc` frames (v2 carries nothing to verify).
    pub fn crc_ok(&self) -> bool {
        self.status != Status::OkCrc || jbs_checksum::crc32c(&self.payload) == self.crc
    }

    /// Header plus (for `OkCrc`) the integrity extension: everything
    /// that precedes the payload on the wire.
    fn encode_head(&self) -> ([u8; RESPONSE_HEADER_LEN + CRC_EXT_LEN], usize) {
        let len_field = if self.status == Status::Busy {
            self.retry_after_ms
        } else {
            self.payload.len() as u64
        };
        let crc_seg = (self.status == Status::OkCrc).then_some((self.crc, self.seg_len));
        encode_head_parts(self.status, self.id, len_field, crc_seg)
    }

    /// Write the frame to a stream.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let (head, used) = self.encode_head();
        w.write_all(head.get(..used).unwrap_or_default())?;
        w.write_all(&self.payload)
    }

    /// Write head + payload in one vectored syscall where the sink
    /// supports it, avoiding the copy of payload bytes into a combined
    /// frame buffer. Handles partial vectored writes and `Interrupted`.
    pub fn write_vectored_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let (head, used) = self.encode_head();
        let total = used + self.payload.len();
        let mut written = 0usize;
        while written < total {
            let n = if written < used {
                let bufs = [
                    IoSlice::new(head.get(written..used).unwrap_or_default()),
                    IoSlice::new(&self.payload),
                ];
                w.write_vectored(&bufs)
            } else {
                let off = written - used;
                w.write(self.payload.get(off..).unwrap_or_default())
            };
            match n {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "response frame write stalled",
                    ))
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Read a full response from a stream. Never panics: an unknown
    /// status byte or an implausible payload length is reported as
    /// `InvalidData` (frame corruption) without allocating.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut hdr = [0u8; RESPONSE_HEADER_LEN];
        r.read_exact(&mut hdr)?;
        let mut buf = hdr.as_slice();
        let status_byte = buf.get_u8();
        let status = Status::from_u8(status_byte).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid status byte {status_byte:#04x}"),
            )
        })?;
        let id = buf.get_u64();
        let len = buf.get_u64();
        if len > MAX_PAYLOAD as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("payload length {len} exceeds cap {MAX_PAYLOAD}"),
            ));
        }
        if status == Status::Busy {
            return Ok(FetchResponse {
                status,
                id,
                payload: Vec::new(),
                crc: 0,
                seg_len: 0,
                retry_after_ms: len,
            });
        }
        let (crc, seg_len) = if status == Status::OkCrc {
            let mut ext = [0u8; CRC_EXT_LEN];
            r.read_exact(&mut ext)?;
            let mut ebuf = ext.as_slice();
            (ebuf.get_u32(), ebuf.get_u64())
        } else {
            (0, 0)
        };
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        Ok(FetchResponse {
            status,
            id,
            payload,
            crc,
            seg_len,
            retry_after_ms: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = FetchRequest {
            id: 0xDEAD_BEEF,
            mof: 7,
            reducer: 3,
            offset: 4096,
            len: 128 << 10,
            flags: 0,
        };
        let enc = req.encode();
        assert_eq!(enc.len(), REQUEST_LEN);
        assert_eq!(FetchRequest::decode(&enc).unwrap(), (req, WireVersion::V2));
    }

    #[test]
    fn v3_request_roundtrip_carries_flags() {
        let req = FetchRequest {
            id: 5,
            mof: 7,
            reducer: 3,
            offset: 4096,
            len: 128 << 10,
            flags: FLAG_BYPASS_CACHE,
        };
        let enc = req.encode_v3();
        assert_eq!(enc.len(), REQUEST_LEN_V3);
        let (back, version) = FetchRequest::decode(&enc).unwrap();
        assert_eq!(back, req);
        assert_eq!(version, WireVersion::V3);
        assert!(back.bypass_cache());
    }

    #[test]
    fn v2_frame_drops_flags() {
        let req = FetchRequest {
            flags: FLAG_BYPASS_CACHE,
            ..FetchRequest::whole_segment(1, 2)
        };
        let (back, _) = FetchRequest::decode(&req.encode()).unwrap();
        assert!(!back.bypass_cache());
    }

    #[test]
    fn request_rejects_bad_magic() {
        let mut enc = FetchRequest::whole_segment(1, 2).encode();
        enc[0] ^= 0xF0;
        assert!(FetchRequest::decode(&enc).is_err());
        assert!(FetchRequest::decode(&enc[..8]).is_err());
    }

    #[test]
    fn request_stream_roundtrip_and_eof() {
        let req = FetchRequest::whole_segment(9, 1);
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        req.write_versioned(&mut buf, WireVersion::V3).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(
            FetchRequest::read_from(&mut cursor).unwrap(),
            Some((req, WireVersion::V2))
        );
        assert_eq!(
            FetchRequest::read_from(&mut cursor).unwrap(),
            Some((req, WireVersion::V3))
        );
        // Clean EOF after full requests -> None.
        assert_eq!(FetchRequest::read_from(&mut cursor).unwrap(), None);
    }

    #[test]
    fn truncated_request_is_an_error() {
        for version in [WireVersion::V2, WireVersion::V3] {
            let req = FetchRequest::whole_segment(9, 1);
            let mut buf = Vec::new();
            req.write_versioned(&mut buf, version).unwrap();
            buf.truncate(buf.len() - 3);
            let mut cursor = std::io::Cursor::new(buf);
            assert!(FetchRequest::read_from(&mut cursor).is_err());
        }
    }

    #[test]
    fn response_roundtrip() {
        let resp = FetchResponse::ok(11, vec![1, 2, 3, 4, 5]);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let back = FetchResponse::read_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.id, 11);
    }

    #[test]
    fn okcrc_roundtrip_and_verify() {
        let resp = FetchResponse::ok_crc(11, vec![1, 2, 3, 4, 5], 999);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let back = FetchResponse::read_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.seg_len, 999);
        assert!(back.crc_ok());
    }

    #[test]
    fn payload_flip_fails_crc_but_reads_cleanly() {
        let resp = FetchResponse::ok_crc(4, (0..=255u8).collect(), 256);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        // Flip one payload byte, past header + extension: the frame
        // still parses (structure intact) but the checksum catches it.
        let n = buf.len();
        buf[n - 10] ^= 0x01;
        let back = FetchResponse::read_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert!(!back.crc_ok());
    }

    #[test]
    fn busy_roundtrip_carries_hint() {
        let resp = FetchResponse::busy(7, 250);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), RESPONSE_HEADER_LEN);
        let back = FetchResponse::read_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.status, Status::Busy);
        assert_eq!(back.retry_after_ms, 250);
        assert!(back.payload.is_empty());
    }

    #[test]
    fn busy_hint_is_clamped() {
        let resp = FetchResponse::busy(7, u64::MAX);
        assert!(resp.retry_after_ms <= 60_000);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        assert!(FetchResponse::read_from(&mut std::io::Cursor::new(buf)).is_ok());
    }

    #[test]
    fn vectored_write_matches_plain_write() {
        for payload in [Vec::new(), vec![7u8; 3], vec![0xA5; 64 << 10]] {
            for resp in [
                FetchResponse::ok(42, payload.clone()),
                FetchResponse::ok_crc(42, payload.clone(), payload.len() as u64),
            ] {
                let mut plain = Vec::new();
                resp.write_to(&mut plain).unwrap();
                let mut vectored = Vec::new();
                resp.write_vectored_to(&mut vectored).unwrap();
                assert_eq!(plain, vectored);
            }
        }
    }

    /// A sink that accepts one byte per call, forcing the vectored
    /// writer through every partial-write resume point (header split,
    /// header/payload boundary, payload split).
    struct TrickleSink(Vec<u8>);

    impl Write for TrickleSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match buf.first() {
                Some(&b) => {
                    self.0.push(b);
                    Ok(1)
                }
                None => Ok(0),
            }
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            for b in bufs {
                if let Some(&byte) = b.first() {
                    self.0.push(byte);
                    return Ok(1);
                }
            }
            Ok(0)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_write_survives_partial_writes() {
        for resp in [
            FetchResponse::ok(9, (0..=255u8).collect()),
            FetchResponse::ok_crc(9, (0..=255u8).collect(), 256),
        ] {
            let mut sink = TrickleSink(Vec::new());
            resp.write_vectored_to(&mut sink).unwrap();
            let mut plain = Vec::new();
            resp.write_to(&mut plain).unwrap();
            assert_eq!(sink.0, plain);
        }
    }

    #[test]
    fn error_response_roundtrip() {
        let resp = FetchResponse::error(3, Status::NotFound);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let back = FetchResponse::read_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.status, Status::NotFound);
        assert_eq!(back.id, 3);
        assert!(back.payload.is_empty());
    }

    #[test]
    fn unknown_status_byte_is_corruption() {
        let resp = FetchResponse::ok(0, vec![1, 2, 3]);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        buf[0] = 0xEE;
        let err = FetchResponse::read_from(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_header_is_corruption_not_allocation() {
        let resp = FetchResponse::ok(0, vec![9; 16]);
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        // Flip a high byte of the length field (after status + id): the
        // decoder must reject it before trying to allocate petabytes.
        buf[1 + 8] ^= 0xFF;
        let err = FetchResponse::read_from(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn many_exchanges_on_one_stream() {
        let mut buf = Vec::new();
        for i in 0..10u64 {
            let req = FetchRequest {
                id: i,
                ..FetchRequest::whole_segment(i, i as u32)
            };
            let version = if i % 2 == 0 {
                WireVersion::V2
            } else {
                WireVersion::V3
            };
            req.write_versioned(&mut buf, version).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for i in 0..10u64 {
            let (req, version) = FetchRequest::read_from(&mut cursor).unwrap().unwrap();
            assert_eq!(req.mof, i);
            assert_eq!(req.id, i);
            let expect = if i % 2 == 0 {
                WireVersion::V2
            } else {
                WireVersion::V3
            };
            assert_eq!(version, expect);
        }
        assert_eq!(FetchRequest::read_from(&mut cursor).unwrap(), None);
    }
}
