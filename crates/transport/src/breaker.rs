//! Per-peer circuit breaker for the fetch scheduler.
//!
//! A supplier that keeps failing consecutively is most likely down or
//! unreachable; burning the whole retry budget per operation against it
//! only delays the verdict and starves healthy peers of client attention.
//! The breaker turns that pattern into an explicit state machine:
//!
//! ```text
//! Closed --(threshold consecutive failures)--> Open
//! Open   --(cooldown elapsed, one probe token)--> HalfOpen
//! HalfOpen --(probe succeeds)--> Closed
//! HalfOpen --(probe fails)--> Open (cooldown doubled, capped)
//! ```
//!
//! While `Open`, new work for the peer fails fast with
//! [`crate::TransportError::CircuitOpen`] and already-admitted work is
//! parked until the next probe time — the scheduler worker sleeps
//! instead of hammering a dead peer.
//!
//! The breaker never reads a clock: every method takes `now_nanos`
//! supplied by the caller (the worker's monotonic anchor in production,
//! synthetic time in the loom model below), which keeps the state
//! machine deterministic and model-checkable. All state sits behind one
//! `state` mutex held only for the transition — never across I/O.

use crate::sync::{lock, Mutex};

/// Internal state. `consecutive` counts failures since the last success;
/// `cooldown_level` doubles the open cooldown per consecutive reopen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Healthy: requests flow, failures are counted.
    Closed {
        /// Consecutive failures so far.
        consecutive: u32,
    },
    /// Failing fast until `until_nanos`.
    Open {
        /// Probe time.
        until_nanos: u64,
        /// How many times the breaker re-opened without closing.
        cooldown_level: u32,
    },
    /// One probe in flight; its outcome decides the next state.
    HalfOpen {
        /// Cooldown level to return to (deepened) if the probe fails.
        cooldown_level: u32,
    },
}

/// What a state-changing call did — the caller emits the matching
/// `breaker.*` trace event for transitions, so tests can assert the
/// open → half-open → close lifecycle from traces alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Transition {
    /// No state change.
    None,
    /// Closed/HalfOpen -> Open.
    Opened,
    /// HalfOpen/Open -> Closed (a success arrived). The Open ->
    /// HalfOpen edge is signalled by [`Admit::Probe`] from
    /// [`Breaker::try_acquire`] instead — the prober is the one caller
    /// who can emit it exactly once.
    Closed,
}

/// Verdict for admitting one unit of work toward the peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admit {
    /// Breaker closed (or disabled): proceed normally.
    Yes,
    /// Cooldown elapsed; the caller holds the single half-open probe
    /// token and must report the outcome via `on_success`/`on_failure`.
    Probe,
    /// Breaker open: fail fast or park until `retry_at_nanos`.
    No {
        /// Earliest time a probe will be granted.
        retry_at_nanos: u64,
    },
}

/// A per-peer circuit breaker. `threshold == 0` disables it entirely
/// (every admit is `Yes`, failures are not tracked).
#[cfg_attr(not(loom), derive(Debug))]
pub(crate) struct Breaker {
    state: Mutex<State>,
    threshold: u32,
    cooldown_nanos: u64,
}

/// Cap on cooldown doubling: 2^6 = 64x the base cooldown.
const MAX_COOLDOWN_LEVEL: u32 = 6;

impl Breaker {
    /// A breaker opening after `threshold` consecutive failures, with
    /// the given base cooldown before the first half-open probe.
    pub(crate) fn new(threshold: u32, cooldown_nanos: u64) -> Self {
        Breaker {
            state: Mutex::new(State::Closed { consecutive: 0 }),
            threshold,
            // A zero cooldown would grant a probe immediately and turn
            // fail-fast into a busy loop.
            cooldown_nanos: cooldown_nanos.max(1),
        }
    }

    /// Is the breaker enabled at all?
    pub(crate) fn enabled(&self) -> bool {
        self.threshold > 0
    }

    fn cooldown_for(&self, level: u32) -> u64 {
        self.cooldown_nanos
            .saturating_mul(1u64 << level.min(MAX_COOLDOWN_LEVEL))
    }

    /// Ask to send work to the peer now.
    pub(crate) fn try_acquire(&self, now_nanos: u64) -> Admit {
        if !self.enabled() {
            return Admit::Yes;
        }
        let mut state = lock(&self.state);
        match *state {
            State::Closed { .. } => Admit::Yes,
            State::Open {
                until_nanos,
                cooldown_level,
            } => {
                if now_nanos >= until_nanos {
                    *state = State::HalfOpen { cooldown_level };
                    Admit::Probe
                } else {
                    Admit::No {
                        retry_at_nanos: until_nanos,
                    }
                }
            }
            // A probe is already in flight; everyone else waits for its
            // verdict (re-ask shortly: the probe resolves quickly).
            State::HalfOpen { .. } => Admit::No {
                retry_at_nanos: now_nanos,
            },
        }
    }

    /// Fail-fast check without consuming the probe token: `true` while
    /// the breaker is open and the cooldown has not elapsed.
    pub(crate) fn is_open(&self, now_nanos: u64) -> bool {
        if !self.enabled() {
            return false;
        }
        match *lock(&self.state) {
            State::Open { until_nanos, .. } => now_nanos < until_nanos,
            _ => false,
        }
    }

    /// Report a successful exchange with the peer.
    pub(crate) fn on_success(&self, _now_nanos: u64) -> Transition {
        if !self.enabled() {
            return Transition::None;
        }
        let mut state = lock(&self.state);
        let was = *state;
        *state = State::Closed { consecutive: 0 };
        match was {
            State::Closed { .. } => Transition::None,
            State::Open { .. } | State::HalfOpen { .. } => Transition::Closed,
        }
    }

    /// Report a failed exchange with the peer.
    pub(crate) fn on_failure(&self, now_nanos: u64) -> Transition {
        if !self.enabled() {
            return Transition::None;
        }
        let mut state = lock(&self.state);
        match *state {
            State::Closed { consecutive } => {
                let consecutive = consecutive + 1;
                if consecutive >= self.threshold {
                    *state = State::Open {
                        until_nanos: now_nanos.saturating_add(self.cooldown_for(0)),
                        cooldown_level: 0,
                    };
                    Transition::Opened
                } else {
                    *state = State::Closed { consecutive };
                    Transition::None
                }
            }
            // The half-open probe failed: back to open, deeper cooldown.
            State::HalfOpen { cooldown_level } => {
                let level = (cooldown_level + 1).min(MAX_COOLDOWN_LEVEL);
                *state = State::Open {
                    until_nanos: now_nanos.saturating_add(self.cooldown_for(level)),
                    cooldown_level: level,
                };
                Transition::Opened
            }
            // Already open: a late failure report changes nothing.
            State::Open { .. } => Transition::None,
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn threshold_zero_disables() {
        let b = Breaker::new(0, 100 * MS);
        assert!(!b.enabled());
        for t in 0..100 {
            assert_eq!(b.on_failure(t), Transition::None);
        }
        assert_eq!(b.try_acquire(1000), Admit::Yes);
        assert!(!b.is_open(1000));
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = Breaker::new(3, 100 * MS);
        assert_eq!(b.on_failure(0), Transition::None);
        assert_eq!(b.on_failure(1), Transition::None);
        assert_eq!(b.on_failure(2), Transition::Opened);
        assert!(b.is_open(3));
        assert_eq!(
            b.try_acquire(3),
            Admit::No {
                retry_at_nanos: 2 + 100 * MS
            }
        );
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = Breaker::new(3, 100 * MS);
        b.on_failure(0);
        b.on_failure(1);
        assert_eq!(b.on_success(2), Transition::None);
        // The count restarted: two more failures do not open.
        b.on_failure(3);
        assert_eq!(b.on_failure(4), Transition::None);
        assert_eq!(b.on_failure(5), Transition::Opened);
    }

    #[test]
    fn probe_lifecycle_close() {
        let b = Breaker::new(1, 100 * MS);
        assert_eq!(b.on_failure(0), Transition::Opened);
        // Before the cooldown: parked.
        assert!(matches!(b.try_acquire(50 * MS), Admit::No { .. }));
        // After: exactly one probe token.
        assert_eq!(b.try_acquire(100 * MS), Admit::Probe);
        assert!(matches!(b.try_acquire(100 * MS + 1), Admit::No { .. }));
        // Probe succeeds: closed, work flows again.
        assert_eq!(b.on_success(101 * MS), Transition::Closed);
        assert_eq!(b.try_acquire(102 * MS), Admit::Yes);
    }

    #[test]
    fn failed_probe_reopens_with_doubled_cooldown() {
        let b = Breaker::new(1, 100 * MS);
        b.on_failure(0);
        assert_eq!(b.try_acquire(100 * MS), Admit::Probe);
        assert_eq!(b.on_failure(100 * MS), Transition::Opened);
        // Doubled: the next probe is 200ms out, not 100.
        assert!(matches!(b.try_acquire(250 * MS), Admit::No { .. }));
        assert_eq!(b.try_acquire(300 * MS), Admit::Probe);
        // Keep failing probes: the cooldown doubles but is capped.
        let mut now = 300 * MS;
        for _ in 0..20 {
            assert_eq!(b.on_failure(now), Transition::Opened);
            let retry_at = match b.try_acquire(now) {
                Admit::No { retry_at_nanos } => retry_at_nanos,
                other => panic!("expected open, got {other:?}"),
            };
            assert!(retry_at - now <= (1 << MAX_COOLDOWN_LEVEL) * 100 * MS);
            now = retry_at;
            assert_eq!(b.try_acquire(now), Admit::Probe);
        }
    }

    #[test]
    fn open_absorbs_late_failure_reports() {
        let b = Breaker::new(2, 100 * MS);
        b.on_failure(0);
        assert_eq!(b.on_failure(1), Transition::Opened);
        // In-flight ops from before the open keep failing; the open
        // window must not slide forward on every report.
        assert_eq!(b.on_failure(2), Transition::None);
        assert_eq!(b.on_failure(50 * MS), Transition::None);
        assert_eq!(b.try_acquire(1 + 100 * MS), Admit::Probe);
    }
}

/// Bounded model checks of the breaker under concurrency: a failure
/// report racing the half-open probe acquisition racing a success
/// report. Build and run with
/// `RUSTFLAGS="--cfg loom" cargo test -p jbs-transport --lib loom_`.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use std::sync::Arc;

    /// Two threads race for the half-open probe token: in every
    /// interleaving exactly one gets `Probe`, the other is parked.
    #[test]
    fn loom_single_probe_token() {
        loom::model(|| {
            let b = Arc::new(Breaker::new(1, 100));
            assert_eq!(b.on_failure(0), Transition::Opened);
            let b2 = Arc::clone(&b);
            let h = loom::thread::spawn(move || b2.try_acquire(200));
            let a = b.try_acquire(200);
            let other = match h.join() {
                Ok(v) => v,
                Err(_) => panic!("prober panicked"),
            };
            let probes = [a, other]
                .iter()
                .filter(|v| matches!(v, Admit::Probe))
                .count();
            assert_eq!(probes, 1, "probe token duplicated or lost: {a:?} {other:?}");
        });
    }

    /// A stale failure report (from an op admitted before the open)
    /// races the probe's success report. Whatever the order, the
    /// breaker ends in a coherent state: either closed (success landed
    /// last or the late failure was absorbed while open/closed-counting)
    /// and work flows, or re-opened with a future probe time — never a
    /// stuck state that admits nothing forever.
    #[test]
    fn loom_failure_report_races_probe_close() {
        loom::model(|| {
            let b = Arc::new(Breaker::new(1, 100));
            assert_eq!(b.on_failure(0), Transition::Opened);
            assert_eq!(b.try_acquire(100), Admit::Probe);
            let b2 = Arc::clone(&b);
            // The probe succeeded...
            let h = loom::thread::spawn(move || b2.on_success(150));
            // ...while an old in-flight op reports its failure.
            let _ = b.on_failure(150);
            if h.join().is_err() {
                panic!("closer panicked");
            }
            // The breaker still makes progress: either admitting now,
            // or open with a probe scheduled no further than the max
            // cooldown out.
            match b.try_acquire(10_000_000_000) {
                Admit::Yes | Admit::Probe => {}
                Admit::No { retry_at_nanos } => {
                    assert!(retry_at_nanos <= 150 + (1 << MAX_COOLDOWN_LEVEL) * 100);
                }
            }
        });
    }

    /// Concurrent failure reports from two ops: the breaker opens
    /// exactly once (one `Opened` transition), so the open event is
    /// emitted once, not once per reporting op.
    #[test]
    fn loom_concurrent_failures_open_once() {
        loom::model(|| {
            let b = Arc::new(Breaker::new(2, 100));
            let b2 = Arc::clone(&b);
            let h = loom::thread::spawn(move || b2.on_failure(10));
            let a = b.on_failure(10);
            let other = match h.join() {
                Ok(v) => v,
                Err(_) => panic!("reporter panicked"),
            };
            let opens = [a, other]
                .iter()
                .filter(|t| matches!(t, Transition::Opened))
                .count();
            assert_eq!(opens, 1, "open transition must fire exactly once");
            assert!(b.is_open(11));
        });
    }
}
