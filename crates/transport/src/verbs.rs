//! A software RDMA verbs layer: Fig. 6's connection establishment and
//! one-sided reads, as real (in-process) code.
//!
//! The paper's RDMA path cannot run here without InfiniBand hardware, but
//! its *semantics* can: this module implements the verbs-shaped API JBS
//! programs against — protection domains with registered memory regions,
//! an `rdma_listen`/`rdma_connect`/`rdma_accept` handshake driven by a
//! network-event thread, queue pairs with two-sided send/recv, and
//! **one-sided `rdma_read`** that pulls bytes from the peer's registered
//! memory without involving any peer thread — the property that gives
//! RDMA its low server CPU utilization in the paper's Figs. 8 and 10.
//!
//! Transport is in-process (std mpsc channels for messages, shared `Arc`
//! memory for one-sided access). `RdmaMofSupplier` / `RdmaNetMerger`
//! below mirror the JBS components on this API; tests verify that
//! segment reads complete with **zero server-side CPU involvement**
//! after registration.
//!
//! Failures surface as [`TransportError`]s; [`rdma_connect_timeout`]
//! bounds the handshake, and the [`Hook::VerbsConnect`]/
//! [`Hook::VerbsRead`] fault hooks let chaos tests exercise this path.

use crate::error::{Result, TransportError};
use crate::faults::{self, FaultAction, FaultPlan, Hook};
use jbs_mapred::mof::MofIndex;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use crate::sync::{lock, Mutex};

/// A remote-access key for a registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteKey(pub u64);

/// A protection domain: the registry of memory regions a peer may read
/// with one-sided operations.
#[derive(Default)]
pub struct ProtectionDomain {
    regions: RwLock<HashMap<RemoteKey, Arc<Vec<u8>>>>,
    next_rkey: AtomicU64,
    /// One-sided reads served (bumped by the *reader*, never by a server
    /// thread — there is none on this path).
    pub one_sided_reads: AtomicU64,
}

impl ProtectionDomain {
    /// An empty protection domain.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn regions_read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<RemoteKey, Arc<Vec<u8>>>> {
        self.regions.read().unwrap_or_else(|e| e.into_inner())
    }

    fn regions_write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<RemoteKey, Arc<Vec<u8>>>> {
        self.regions.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Register `data` for remote access; returns its rkey.
    pub fn register(&self, data: Vec<u8>) -> RemoteKey {
        let rkey = RemoteKey(self.next_rkey.fetch_add(1, Ordering::Relaxed));
        self.regions_write().insert(rkey, Arc::new(data));
        rkey
    }

    /// Invalidate an rkey.
    pub fn deregister(&self, rkey: RemoteKey) -> bool {
        self.regions_write().remove(&rkey).is_some()
    }

    /// Length of a registered region.
    pub fn region_len(&self, rkey: RemoteKey) -> Option<usize> {
        self.regions_read().get(&rkey).map(|r| r.len())
    }

    fn read(&self, rkey: RemoteKey, offset: u64, len: u64) -> Result<Vec<u8>> {
        let regions = self.regions_read();
        let region = regions.get(&rkey).ok_or_else(|| TransportError::NotFound {
            what: format!("rkey {}", rkey.0),
        })?;
        let start = offset as usize;
        let bytes = start
            .checked_add(len as usize)
            .and_then(|end| region.get(start..end))
            .ok_or_else(|| TransportError::OutOfBounds {
                detail: format!(
                    "read [{offset}, {offset}+{len}) past region of {} bytes",
                    region.len()
                ),
            })?;
        self.one_sided_reads.fetch_add(1, Ordering::Relaxed);
        Ok(bytes.to_vec())
    }
}

/// A two-sided message.
pub type Message = Vec<u8>;

/// One endpoint of an established reliable connection.
///
/// Holds send/recv channels (two-sided verbs) and a handle to the peer's
/// protection domain for one-sided reads.
pub struct QueuePair {
    tx: Sender<Message>,
    rx: Receiver<Message>,
    peer_pd: Arc<ProtectionDomain>,
    faults: Option<Arc<FaultPlan>>,
}

impl std::fmt::Debug for QueuePair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuePair").finish_non_exhaustive()
    }
}

impl QueuePair {
    /// Post a send (two-sided).
    pub fn post_send(&self, msg: Message) -> Result<()> {
        self.tx.send(msg).map_err(|_| TransportError::Reset {
            during: "post_send",
        })
    }

    /// Block for the next receive completion (two-sided).
    pub fn poll_recv(&self) -> Result<Message> {
        self.rx.recv().map_err(|_| TransportError::Reset {
            during: "poll_recv",
        })
    }

    /// Block for the next receive completion, up to `timeout`.
    pub fn poll_recv_timeout(&self, timeout: Duration) -> Result<Message> {
        use std::sync::mpsc::RecvTimeoutError;
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout {
                during: "poll_recv",
            },
            RecvTimeoutError::Disconnected => TransportError::Reset {
                during: "poll_recv",
            },
        })
    }

    /// One-sided RDMA read from the peer's registered memory. No peer
    /// thread runs; the data is fetched directly.
    pub fn rdma_read(&self, rkey: RemoteKey, offset: u64, len: u64) -> Result<Vec<u8>> {
        match faults::decide(&self.faults, Hook::VerbsRead) {
            FaultAction::Reset | FaultAction::RefuseConnect => {
                return Err(TransportError::Reset {
                    during: "rdma_read (injected)",
                })
            }
            FaultAction::Stall(d) => std::thread::sleep(d),
            _ => {}
        }
        self.peer_pd.read(rkey, offset, len)
    }
}

/// A pending connection request observed on the server's event channel.
pub struct ConnRequest {
    client_tx: Sender<Message>,
    client_rx: Receiver<Message>,
    client_pd: Arc<ProtectionDomain>,
    established: SyncSender<Arc<ProtectionDomain>>,
}

impl ConnRequest {
    /// `rdma_accept`: allocate the server-side connection and confirm to
    /// the client; both sides then see the `established` event (Fig. 6).
    pub fn accept(self, server_pd: Arc<ProtectionDomain>) -> Result<QueuePair> {
        self.established
            .send(Arc::clone(&server_pd))
            .map_err(|_| TransportError::Reset {
                during: "rdma_accept",
            })?;
        Ok(QueuePair {
            tx: self.client_tx,
            rx: self.client_rx,
            peer_pd: self.client_pd,
            faults: None,
        })
    }
}

/// The server's listening endpoint: connection requests arrive on its
/// event channel, exactly like the paper's "network thread listening for
/// incoming requests on the RDMAServer".
pub struct RdmaListener {
    events: Receiver<ConnRequest>,
}

impl RdmaListener {
    /// Block for the next connection-request event.
    pub fn poll_event(&self) -> Result<ConnRequest> {
        self.events.recv().map_err(|_| TransportError::Reset {
            during: "listener poll",
        })
    }
}

/// A connectable address (the "GID" of this software fabric).
#[derive(Clone)]
pub struct RdmaAddr {
    requests: Sender<ConnRequest>,
}

/// `rdma_listen`: create a listener and its address.
pub fn rdma_listen() -> (RdmaListener, RdmaAddr) {
    let (tx, rx) = channel();
    (RdmaListener { events: rx }, RdmaAddr { requests: tx })
}

/// `rdma_connect`: allocate the client connection, send the connection
/// request, and block until the server's `rdma_accept` produces the
/// `established` event.
pub fn rdma_connect(addr: &RdmaAddr, client_pd: Arc<ProtectionDomain>) -> Result<QueuePair> {
    rdma_connect_opts(addr, client_pd, None, None)
}

/// [`rdma_connect`] with a handshake deadline: gives up with a
/// [`TransportError::Timeout`] if the listener never accepts.
pub fn rdma_connect_timeout(
    addr: &RdmaAddr,
    client_pd: Arc<ProtectionDomain>,
    timeout: Duration,
) -> Result<QueuePair> {
    rdma_connect_opts(addr, client_pd, Some(timeout), None)
}

/// Full-control connect: optional handshake deadline and fault plan (the
/// plan rides on the returned queue pair and drives its
/// [`Hook::VerbsRead`] decisions).
pub fn rdma_connect_opts(
    addr: &RdmaAddr,
    client_pd: Arc<ProtectionDomain>,
    timeout: Option<Duration>,
    fault_plan: Option<Arc<FaultPlan>>,
) -> Result<QueuePair> {
    match faults::decide(&fault_plan, Hook::VerbsConnect) {
        FaultAction::RefuseConnect | FaultAction::Reset => {
            return Err(TransportError::Connect {
                target: "rdma peer".into(),
                source: io::Error::new(io::ErrorKind::ConnectionRefused, "injected refusal"),
            })
        }
        FaultAction::Stall(d) => std::thread::sleep(d),
        _ => {}
    }
    // Client->server and server->client message channels.
    let (c2s_tx, c2s_rx) = channel();
    let (s2c_tx, s2c_rx) = channel();
    let (est_tx, est_rx) = sync_channel(1);
    addr.requests
        .send(ConnRequest {
            client_tx: s2c_tx,
            client_rx: c2s_rx,
            client_pd,
            established: est_tx,
        })
        .map_err(|_| TransportError::Connect {
            target: "rdma peer".into(),
            source: io::Error::new(io::ErrorKind::ConnectionRefused, "no listener"),
        })?;
    let server_pd = match timeout {
        Some(t) => {
            use std::sync::mpsc::RecvTimeoutError;
            est_rx.recv_timeout(t).map_err(|e| match e {
                RecvTimeoutError::Timeout => TransportError::Timeout {
                    during: "rdma_connect",
                },
                RecvTimeoutError::Disconnected => TransportError::Connect {
                    target: "rdma peer".into(),
                    source: io::Error::new(io::ErrorKind::ConnectionAborted, "accept failed"),
                },
            })?
        }
        None => est_rx.recv().map_err(|_| TransportError::Connect {
            target: "rdma peer".into(),
            source: io::Error::new(io::ErrorKind::ConnectionAborted, "accept failed"),
        })?,
    };
    Ok(QueuePair {
        tx: c2s_tx,
        rx: s2c_rx,
        peer_pd: server_pd,
        faults: fault_plan,
    })
}

// ---------------------------------------------------------------------------
// JBS components on the verbs API
// ---------------------------------------------------------------------------

/// Index advertisement: `mof id -> (data rkey, serialized MofIndex)`.
type Catalog = HashMap<u64, (RemoteKey, Vec<u8>)>;

/// The MOFSupplier on RDMA: registers MOF data for one-sided access and
/// answers catalog requests on its event thread. After a client has the
/// catalog, every segment fetch is a one-sided read — the supplier's CPU
/// is out of the data path entirely.
pub struct RdmaMofSupplier {
    pd: Arc<ProtectionDomain>,
    catalog: Arc<Mutex<Catalog>>,
    /// Taken on drop so the event thread's channel closes once every
    /// caller-held [`RdmaAddr`] clone is gone.
    addr: Option<RdmaAddr>,
    event_thread: Option<std::thread::JoinHandle<()>>,
}

impl RdmaMofSupplier {
    /// Start a supplier with an event thread servicing handshakes and
    /// catalog requests.
    pub fn start() -> Self {
        let pd = ProtectionDomain::new();
        let catalog: Arc<Mutex<Catalog>> = Arc::new(Mutex::new(HashMap::new()));
        let (listener, addr) = rdma_listen();
        let thread_pd = Arc::clone(&pd);
        let thread_catalog = Arc::clone(&catalog);
        let event_thread = std::thread::spawn(move || {
            while let Ok(req) = listener.poll_event() {
                let Ok(qp) = req.accept(Arc::clone(&thread_pd)) else {
                    continue;
                };
                let catalog = Arc::clone(&thread_catalog);
                std::thread::spawn(move || {
                    // Serve catalog requests: msg = mof id (8 bytes);
                    // reply = rkey (8 bytes) | index bytes, or empty.
                    while let Ok(msg) = qp.poll_recv() {
                        let reply = if msg.len() == 8 {
                            let mut id = [0u8; 8];
                            id.copy_from_slice(&msg);
                            let mof = u64::from_be_bytes(id);
                            lock(&catalog).get(&mof).map(|(rkey, index)| {
                                let mut out = rkey.0.to_be_bytes().to_vec();
                                out.extend_from_slice(index);
                                out
                            })
                        } else {
                            None
                        };
                        if qp.post_send(reply.unwrap_or_default()).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        RdmaMofSupplier {
            pd,
            catalog,
            addr: Some(addr),
            event_thread: Some(event_thread),
        }
    }

    /// Register a MOF (data + index) for remote one-sided access.
    pub fn publish_mof(&self, mof: u64, data: Vec<u8>, index: &MofIndex) {
        let rkey = self.pd.register(data);
        lock(&self.catalog).insert(mof, (rkey, index.to_bytes().to_vec()));
    }

    /// The supplier's connectable address.
    pub fn addr(&self) -> RdmaAddr {
        self.addr.clone().expect("supplier not dropped")
    }

    /// One-sided reads served against this supplier's memory.
    pub fn one_sided_reads(&self) -> u64 {
        self.pd.one_sided_reads.load(Ordering::Relaxed)
    }
}

impl Drop for RdmaMofSupplier {
    fn drop(&mut self) {
        // Dropping our RdmaAddr lets the listener's channel close once all
        // caller-held clones are gone, unblocking the event thread.
        self.addr.take();
        if let Some(t) = self.event_thread.take() {
            // Don't block drop on callers that still hold an address; the
            // thread exits as soon as the last clone is dropped.
            if std::thread::current().id() != t.thread().id() {
                drop(t); // detach; channel closure terminates the loop
            }
        }
    }
}

/// The NetMerger's RDMA fetch path: one queue pair per supplier, a
/// two-sided catalog exchange per MOF, then one-sided reads for segments.
pub struct RdmaNetMerger {
    pd: Arc<ProtectionDomain>,
    qps: Mutex<Vec<(usize, QueuePair)>>,
    indexes: Mutex<HashMap<(usize, u64), (RemoteKey, MofIndex)>>,
}

impl Default for RdmaNetMerger {
    fn default() -> Self {
        Self::new()
    }
}

impl RdmaNetMerger {
    /// A merger with its own protection domain.
    pub fn new() -> Self {
        RdmaNetMerger {
            pd: ProtectionDomain::new(),
            qps: Mutex::new(Vec::new()),
            indexes: Mutex::new(HashMap::new()),
        }
    }

    /// Connect to a supplier; returns the connection slot id.
    pub fn connect(&self, addr: &RdmaAddr) -> Result<usize> {
        let qp = rdma_connect(addr, Arc::clone(&self.pd))?;
        let mut qps = lock(&self.qps);
        let id = qps.len();
        qps.push((id, qp));
        Ok(id)
    }

    /// Fetch (and cache) the catalog entry for `mof` on supplier `conn`.
    fn catalog_entry(&self, conn: usize, mof: u64) -> Result<(RemoteKey, MofIndex)> {
        if let Some(e) = lock(&self.indexes).get(&(conn, mof)) {
            return Ok(e.clone());
        }
        let reply = {
            let qps = lock(&self.qps);
            let (_, qp) = qps.get(conn).ok_or_else(|| TransportError::NotFound {
                what: format!("connection {conn}"),
            })?;
            qp.post_send(mof.to_be_bytes().to_vec())?;
            qp.poll_recv()?
        };
        let Some((rkey_bytes, index_bytes)) = reply.split_at_checked(8) else {
            return Err(TransportError::NotFound {
                what: format!("mof {mof} in supplier catalog"),
            });
        };
        let rkey_bytes: [u8; 8] = rkey_bytes.try_into().map_err(|_| TransportError::Corrupt {
            detail: "catalog reply rkey field".to_string(),
        })?;
        let rkey = RemoteKey(u64::from_be_bytes(rkey_bytes));
        let index = MofIndex::from_bytes(index_bytes).map_err(|e| TransportError::Corrupt {
            detail: format!("catalog index: {e}"),
        })?;
        let entry = (rkey, index);
        lock(&self.indexes).insert((conn, mof), entry.clone());
        Ok(entry)
    }

    /// Fetch a whole segment with one-sided reads of `buffer` bytes each.
    pub fn fetch_segment(
        &self,
        conn: usize,
        mof: u64,
        reducer: u32,
        buffer: u64,
    ) -> Result<Vec<u8>> {
        let (rkey, index) = self.catalog_entry(conn, mof)?;
        let entry = index
            .entry(reducer as usize)
            .ok_or_else(|| TransportError::NotFound {
                what: format!("reducer {reducer} in mof {mof}"),
            })?;
        let qps = lock(&self.qps);
        let (_, qp) = qps.get(conn).ok_or_else(|| TransportError::NotFound {
            what: format!("connection {conn}"),
        })?;
        let mut out = Vec::with_capacity(entry.part_len as usize);
        let mut off = 0u64;
        while off < entry.part_len {
            let len = buffer.max(1).min(entry.part_len - off);
            out.extend_from_slice(&qp.rdma_read(rkey, entry.offset + off, len)?);
            off += len;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;
    use jbs_mapred::mof::{MofWriter, SegmentReader};

    fn build_mof(records: &[(&str, &str)], partitions: usize) -> (Vec<u8>, MofIndex) {
        let mut w = MofWriter::new();
        for p in 0..partitions {
            w.begin_segment();
            for (i, (k, v)) in records.iter().enumerate() {
                if i % partitions == p {
                    w.append(k.as_bytes(), v.as_bytes());
                }
            }
            w.end_segment();
        }
        let (data, index) = w.finish();
        (data.to_vec(), index)
    }

    #[test]
    fn handshake_establishes_queue_pair() {
        let (listener, addr) = rdma_listen();
        let server_pd = ProtectionDomain::new();
        let server = std::thread::spawn(move || {
            let req = listener.poll_event().unwrap();
            let qp = req.accept(server_pd).unwrap();
            let msg = qp.poll_recv().unwrap();
            qp.post_send(msg).unwrap(); // echo
        });
        let client_pd = ProtectionDomain::new();
        let qp = rdma_connect(&addr, client_pd).unwrap();
        qp.post_send(b"ping".to_vec()).unwrap();
        assert_eq!(qp.poll_recv().unwrap(), b"ping");
        server.join().unwrap();
    }

    #[test]
    fn connect_without_listener_fails() {
        let (listener, addr) = rdma_listen();
        drop(listener);
        let err = rdma_connect(&addr, ProtectionDomain::new()).unwrap_err();
        assert!(matches!(err, TransportError::Connect { .. }), "{err}");
    }

    #[test]
    fn connect_times_out_on_never_accepting_listener() {
        // The listener exists but never services its event channel: the
        // handshake must give up with a Timeout, not hang.
        let (_listener, addr) = rdma_listen();
        let err = rdma_connect_timeout(&addr, ProtectionDomain::new(), Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, TransportError::Timeout { .. }), "{err}");
        assert!(err.is_retryable());
    }

    #[test]
    fn injected_verbs_faults_surface_as_errors() {
        let plan = FaultPlan::builder(9)
            .force(Hook::VerbsConnect, 0, FaultKind::RefuseConnect)
            .build();
        let (_listener, addr) = rdma_listen();
        let err = rdma_connect_opts(
            &addr,
            ProtectionDomain::new(),
            None,
            Some(Arc::clone(&plan)),
        )
        .unwrap_err();
        assert!(matches!(err, TransportError::Connect { .. }), "{err}");
        assert_eq!(plan.stats().refusals, 1);

        // A read-hook reset surfaces from rdma_read.
        let read_plan = FaultPlan::builder(10)
            .force(Hook::VerbsRead, 0, FaultKind::Reset)
            .build();
        let (listener, addr) = rdma_listen();
        let server_pd = ProtectionDomain::new();
        let rkey = server_pd.register(vec![1, 2, 3]);
        let server = std::thread::spawn(move || {
            let req = listener.poll_event().unwrap();
            let _qp = req.accept(server_pd).unwrap();
            // Hold the queue pair until the client is done reading.
            std::thread::sleep(Duration::from_millis(100));
        });
        let qp = rdma_connect_opts(
            &addr,
            ProtectionDomain::new(),
            None,
            Some(Arc::clone(&read_plan)),
        )
        .unwrap();
        let err = qp.rdma_read(rkey, 0, 2).unwrap_err();
        assert!(matches!(err, TransportError::Reset { .. }), "{err}");
        // The next read goes through (forced fault was occurrence 0 only).
        assert_eq!(qp.rdma_read(rkey, 0, 2).unwrap(), vec![1, 2]);
        server.join().unwrap();
    }

    #[test]
    fn one_sided_read_and_bounds() {
        let pd = ProtectionDomain::new();
        let rkey = pd.register(vec![1, 2, 3, 4, 5]);
        assert_eq!(pd.region_len(rkey), Some(5));
        assert_eq!(pd.read(rkey, 1, 3).unwrap(), vec![2, 3, 4]);
        let past = pd.read(rkey, 3, 3).unwrap_err();
        assert!(matches!(past, TransportError::OutOfBounds { .. }), "{past}");
        assert!(!past.is_retryable());
        assert!(pd.read(RemoteKey(999), 0, 1).is_err(), "bad rkey");
        assert!(pd.deregister(rkey));
        assert!(pd.read(rkey, 0, 1).is_err(), "deregistered");
    }

    #[test]
    fn supplier_serves_segments_one_sided() {
        let supplier = RdmaMofSupplier::start();
        let records = [
            ("apple", "1"),
            ("banana", "2"),
            ("cherry", "3"),
            ("date", "4"),
        ];
        let (data, index) = build_mof(&records, 2);
        supplier.publish_mof(7, data.clone(), &index);

        let merger = RdmaNetMerger::new();
        let conn = merger.connect(&supplier.addr()).unwrap();
        for reducer in 0..2u32 {
            let seg = merger.fetch_segment(conn, 7, reducer, 16).unwrap();
            let e = index.entry(reducer as usize).unwrap();
            assert_eq!(
                seg,
                &data[e.offset as usize..(e.offset + e.part_len) as usize]
            );
            assert!(SegmentReader::new(&seg).count() > 0);
        }
        // Segment bytes moved via one-sided reads (many small reads), with
        // the supplier's catalog thread involved only once per MOF.
        assert!(supplier.one_sided_reads() > 4);
    }

    #[test]
    fn unknown_mof_and_reducer_error() {
        let supplier = RdmaMofSupplier::start();
        let (data, index) = build_mof(&[("k", "v")], 1);
        supplier.publish_mof(1, data, &index);
        let merger = RdmaNetMerger::new();
        let conn = merger.connect(&supplier.addr()).unwrap();
        assert!(merger.fetch_segment(conn, 99, 0, 64).is_err());
        assert!(merger.fetch_segment(conn, 1, 5, 64).is_err());
        assert!(merger.fetch_segment(99, 1, 0, 64).is_err());
    }

    #[test]
    fn catalog_is_cached_per_connection() {
        let supplier = RdmaMofSupplier::start();
        let (data, index) = build_mof(&[("k", "v"), ("l", "w")], 1);
        supplier.publish_mof(3, data, &index);
        let merger = RdmaNetMerger::new();
        let conn = merger.connect(&supplier.addr()).unwrap();
        merger.fetch_segment(conn, 3, 0, 8).unwrap();
        let reads_after_first = supplier.one_sided_reads();
        merger.fetch_segment(conn, 3, 0, 8).unwrap();
        // Second fetch re-reads data one-sided but does not need the
        // catalog round trip; read count grows by the same chunk count.
        assert!(supplier.one_sided_reads() >= reads_after_first * 2 - 1);
    }

    #[test]
    fn multiple_clients_share_a_supplier() {
        let supplier = RdmaMofSupplier::start();
        let (data, index) = build_mof(&[("a", "1"), ("b", "2")], 1);
        supplier.publish_mof(0, data.clone(), &index);
        let addr = supplier.addr();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let merger = RdmaNetMerger::new();
                    let conn = merger.connect(&addr).unwrap();
                    merger.fetch_segment(conn, 0, 0, 1024).unwrap().len()
                })
            })
            .collect();
        let sizes: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]));
    }
}
