//! Keyed connection slots: the NetMerger client's consolidation and
//! LRU-eviction logic, factored out generically so the `cfg(loom)`
//! models below drive the *production* code, not a re-implementation.
//!
//! Two locks are involved, in the documented order `conns` → `conn`:
//!
//! * `conns` — the LRU cache mapping a key (supplier address) to its
//!   slot. Held only to look up or insert a slot, never across a dial
//!   or I/O.
//! * `conn` — one slot's connection. Concurrent users of the *same*
//!   key serialize on it (the paper's consolidation property: requests
//!   to one supplier share one ordered connection, Sec. III-C) while
//!   different keys proceed in parallel.
//!
//! A slot evicted by the LRU cap is returned out of the `conns`
//! critical section and dropped there, so connection teardown (for a
//! TCP slot, closing the socket) never runs under the cache lock and an
//! eviction can never stall fetches to unrelated suppliers. A fetch
//! already holding the evicted slot's `conn` lock keeps its `Arc` alive
//! and finishes normally; the connection closes when the last user
//! releases it.

use crate::sync::{lock, AtomicBool, Mutex, Ordering};
use jbs_des::lru::LruCache;
use std::hash::Hash;
use std::sync::Arc;

/// One key's connection slot.
struct Slot<C> {
    conn: Mutex<Option<C>>,
    /// Whether this slot ever held a live connection; a later
    /// re-establishment is then a reconnect, not a first connect.
    ever_connected: AtomicBool,
}

/// What happened to the connection cache during [`SlotMap::with_conn`];
/// the caller turns these into its statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotEvent {
    /// The LRU cap evicted another key's slot.
    Evicted,
    /// A connection was dialed for this call.
    Established {
        /// True when this slot had connected before (re-dial after a
        /// failure or teardown).
        reconnect: bool,
    },
    /// A cached connection was reused.
    Reused,
}

/// LRU-capped map of keys to connection slots.
pub(crate) struct SlotMap<K, C> {
    conns: Mutex<LruCache<K, Arc<Slot<C>>>>,
}

impl<K: Hash + Eq + Clone, C> SlotMap<K, C> {
    /// A map holding at most `cap` (≥ 1) connections.
    pub(crate) fn new(cap: usize) -> Self {
        SlotMap {
            conns: Mutex::new(LruCache::new(cap.max(1))),
        }
    }

    /// Run `f` on `key`'s connection, dialing with `dial` if the slot is
    /// empty. `event` reports cache activity (possibly several events
    /// per call); it runs outside the `conns` lock but may run under the
    /// slot's `conn` lock, so it must only touch locks ordered after
    /// `conn`. If `f` fails the connection is dropped, so the next call
    /// re-dials.
    pub(crate) fn with_conn<T, E>(
        &self,
        key: K,
        dial: impl FnOnce() -> Result<C, E>,
        mut event: impl FnMut(SlotEvent),
        f: impl FnOnce(&mut C) -> Result<T, E>,
    ) -> Result<T, E> {
        let (slot, evicted) = {
            let mut cache = lock(&self.conns);
            match cache.get(&key) {
                Some(s) => (Arc::clone(s), None),
                None => {
                    let s = Arc::new(Slot {
                        conn: Mutex::new(None),
                        ever_connected: AtomicBool::new(false),
                    });
                    let evicted = cache.insert(key, Arc::clone(&s));
                    (s, evicted)
                }
            }
        };
        // The evicted slot (and, unless a concurrent user still holds
        // it, its connection) is torn down here, after the cache lock
        // is released.
        if evicted.is_some() {
            event(SlotEvent::Evicted);
            drop(evicted);
        }

        let mut guard = lock(&slot.conn);
        let mut conn = match guard.take() {
            Some(c) => {
                event(SlotEvent::Reused);
                c
            }
            None => {
                let c = dial()?;
                event(SlotEvent::Established {
                    reconnect: slot.ever_connected.swap(true, Ordering::Relaxed),
                });
                c
            }
        };
        match f(&mut conn) {
            Ok(out) => {
                *guard = Some(conn);
                Ok(out)
            }
            // A broken connection is dropped (still under this slot's
            // own lock, which is exactly what it guards), so the next
            // attempt re-dials.
            Err(e) => Err(e),
        }
    }
}

/// Bounded model checks of the slot logic. Build and run with
/// `RUSTFLAGS="--cfg loom" cargo test -p jbs-transport --lib loom_`.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use crate::sync::AtomicUsize;

    /// Consolidation: two concurrent fetches of the same key dial once
    /// and reuse once, in every interleaving.
    #[test]
    fn loom_same_key_dials_once() {
        loom::model(|| {
            let map = Arc::new(SlotMap::<u8, u8>::new(2));
            let dials = Arc::new(AtomicUsize::new(0));
            let reuses = Arc::new(AtomicUsize::new(0));
            let worker =
                |map: Arc<SlotMap<u8, u8>>, dials: Arc<AtomicUsize>, reuses: Arc<AtomicUsize>| {
                    move || {
                        map.with_conn(
                            7u8,
                            || Ok::<u8, ()>(1),
                            |ev| match ev {
                                SlotEvent::Established { .. } => {
                                    dials.fetch_add(1, Ordering::SeqCst);
                                }
                                SlotEvent::Reused => {
                                    reuses.fetch_add(1, Ordering::SeqCst);
                                }
                                SlotEvent::Evicted => {}
                            },
                            |c| {
                                assert_eq!(*c, 1);
                                Ok(())
                            },
                        )
                    }
                };
            let h = loom::thread::spawn(worker(
                Arc::clone(&map),
                Arc::clone(&dials),
                Arc::clone(&reuses),
            ));
            let r2 = worker(Arc::clone(&map), Arc::clone(&dials), Arc::clone(&reuses))();
            let r1 = match h.join() {
                Ok(r) => r,
                Err(_) => panic!("worker panicked"),
            };
            assert_eq!((r1, r2), (Ok(()), Ok(())));
            assert_eq!(dials.load(Ordering::SeqCst), 1, "consolidated dial");
            assert_eq!(reuses.load(Ordering::SeqCst), 1);
        });
    }

    /// Eviction/re-dial race under a cap of one: two keys fight for the
    /// single cache slot. Both fetches must succeed in every
    /// interleaving (an in-flight fetch keeps its evicted slot alive),
    /// and no schedule may deadlock between the `conns` and `conn`
    /// locks.
    #[test]
    fn loom_eviction_redial_race() {
        loom::model(|| {
            let map = Arc::new(SlotMap::<u8, u8>::new(1));
            let evictions = Arc::new(AtomicUsize::new(0));
            let worker = |map: Arc<SlotMap<u8, u8>>, evictions: Arc<AtomicUsize>, key: u8| {
                move || {
                    map.with_conn(
                        key,
                        || Ok::<u8, ()>(key),
                        |ev| {
                            if ev == SlotEvent::Evicted {
                                evictions.fetch_add(1, Ordering::SeqCst);
                            }
                        },
                        |c| {
                            assert_eq!(*c, key, "fetch served by its own connection");
                            Ok(())
                        },
                    )
                }
            };
            let h = loom::thread::spawn(worker(Arc::clone(&map), Arc::clone(&evictions), 1));
            let r2 = worker(Arc::clone(&map), Arc::clone(&evictions), 2)();
            let r1 = match h.join() {
                Ok(r) => r,
                Err(_) => panic!("worker panicked"),
            };
            assert_eq!((r1, r2), (Ok(()), Ok(())));
            assert!(evictions.load(Ordering::SeqCst) <= 1);
        });
    }

    /// A failed exchange drops the connection; the next call re-dials
    /// and reports it as a reconnect — in every interleaving with a
    /// concurrent successful fetch of another key.
    #[test]
    fn loom_failure_evicts_then_reconnects() {
        loom::model(|| {
            let map = Arc::new(SlotMap::<u8, u8>::new(2));
            let m2 = Arc::clone(&map);
            let h = loom::thread::spawn(move || {
                m2.with_conn(2u8, || Ok::<u8, ()>(2), |_| {}, |_| Ok(()))
            });
            let failed: Result<(), ()> = map.with_conn(1u8, || Ok(1), |_| {}, |_| Err(()));
            assert_eq!(failed, Err(()));
            let mut reconnect_seen = false;
            let ok = map.with_conn(
                1u8,
                || Ok::<u8, ()>(1),
                |ev| {
                    if let SlotEvent::Established { reconnect } = ev {
                        reconnect_seen = reconnect;
                    }
                },
                |_| Ok(()),
            );
            assert_eq!(ok, Ok(()));
            assert!(reconnect_seen, "re-dial after failure is a reconnect");
            match h.join() {
                Ok(r) => assert_eq!(r, Ok(())),
                Err(_) => panic!("worker panicked"),
            }
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn no_event(_: SlotEvent) {}

    #[test]
    fn dials_once_then_reuses() {
        let map = SlotMap::<u8, u32>::new(4);
        let mut events = Vec::new();
        for _ in 0..3 {
            map.with_conn(1, || Ok::<u32, ()>(9), |e| events.push(e), |c| Ok(*c))
                .unwrap();
        }
        assert_eq!(
            events,
            vec![
                SlotEvent::Established { reconnect: false },
                SlotEvent::Reused,
                SlotEvent::Reused
            ]
        );
    }

    #[test]
    fn failure_drops_conn_and_redial_is_reconnect() {
        let map = SlotMap::<u8, u32>::new(4);
        map.with_conn(1, || Ok::<u32, ()>(9), no_event, |_| Ok(()))
            .unwrap();
        let err = map.with_conn(1, || Ok::<u32, ()>(9), no_event, |_| Err::<(), ()>(()));
        assert!(err.is_err());
        let mut events = Vec::new();
        map.with_conn(1, || Ok::<u32, ()>(10), |e| events.push(e), |c| Ok(*c))
            .unwrap();
        assert_eq!(events, vec![SlotEvent::Established { reconnect: true }]);
    }

    #[test]
    fn dial_error_leaves_slot_empty_for_retry() {
        let map = SlotMap::<u8, u32>::new(4);
        let err = map.with_conn(1, || Err::<u32, i32>(-1), no_event, |c| Ok(*c));
        assert_eq!(err, Err(-1));
        let ok = map.with_conn(1, || Ok::<u32, i32>(5), no_event, |c| Ok(*c));
        assert_eq!(ok, Ok(5));
    }

    #[test]
    fn cap_one_evicts_previous_key() {
        let map = SlotMap::<u8, u32>::new(1);
        let mut evictions = 0;
        for key in [1u8, 2, 1] {
            map.with_conn(
                key,
                || Ok::<u32, ()>(u32::from(key)),
                |e| {
                    if e == SlotEvent::Evicted {
                        evictions += 1;
                    }
                },
                |c| Ok(*c),
            )
            .unwrap();
        }
        assert_eq!(evictions, 2, "each new key displaced the previous");
    }
}
