//! The NetMerger client: consolidated fetching plus network-levitated
//! merge, over real sockets.
//!
//! One client serves all reducers of a "node". Connections are cached per
//! supplier address and torn down LRU beyond a cap (Sec. IV-A's
//! 512-connection policy, configurable here). Segment fetches from many
//! suppliers run concurrently, in transport-buffer-sized chunks; fetched
//! segments are k-way merged ([`jbs_mapred::merge`]) into the sorted
//! stream a reduce function consumes.

use crate::wire::{FetchRequest, FetchResponse, Status};
use jbs_des::lru::LruCache;
use jbs_mapred::levitate::{RecordParser, RecordStream, StreamingMerge};
use jbs_mapred::merge::{KWayMerge, Record};
use jbs_mapred::mof::SegmentReader;
use parking_lot::Mutex;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream};

/// A fetch target: which segment on which supplier.
#[derive(Debug, Clone, Copy)]
pub struct SegmentRef {
    /// Supplier address.
    pub addr: SocketAddr,
    /// MOF id on that supplier.
    pub mof: u64,
    /// Reducer (partition) number.
    pub reducer: u32,
}

/// Client statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientStats {
    /// Connections established.
    pub connections_established: u64,
    /// Fetches that reused a cached connection.
    pub connections_reused: u64,
    /// Connections torn down by the LRU cap.
    pub connections_evicted: u64,
    /// Payload bytes fetched.
    pub bytes_fetched: u64,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One supplier's connection slot. Concurrent fetches to the *same*
/// supplier serialize on this lock — the consolidation property: requests
/// to one node share one connection, ordered by arrival (Sec. III-C) —
/// while fetches to different suppliers proceed in parallel.
type ConnSlot = std::sync::Arc<Mutex<Option<Conn>>>;

/// The NetMerger.
pub struct NetMergerClient {
    conns: Mutex<LruCache<SocketAddr, ConnSlot>>,
    stats: Mutex<ClientStats>,
    buffer_bytes: u64,
}

impl NetMergerClient {
    /// A client with the paper's defaults: 128 KB transport buffers and a
    /// 512-connection cache.
    pub fn new() -> Self {
        Self::with_config(128 << 10, 512)
    }

    /// A client with explicit buffer size and connection cap.
    pub fn with_config(buffer_bytes: u64, max_connections: usize) -> Self {
        NetMergerClient {
            conns: Mutex::new(LruCache::new(max_connections.max(1))),
            stats: Mutex::new(ClientStats::default()),
            buffer_bytes: buffer_bytes.max(1),
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ClientStats {
        *self.stats.lock()
    }

    fn with_conn<T>(
        &self,
        addr: SocketAddr,
        f: impl FnOnce(&mut Conn) -> io::Result<T>,
    ) -> io::Result<T> {
        // Get (or create) the supplier's connection slot; LRU-evicting a
        // slot closes its connection once the last user releases it.
        let slot: ConnSlot = {
            let mut cache = self.conns.lock();
            match cache.get(&addr) {
                Some(s) => std::sync::Arc::clone(s),
                None => {
                    let s: ConnSlot = std::sync::Arc::new(Mutex::new(None));
                    if cache.insert(addr, std::sync::Arc::clone(&s)).is_some() {
                        self.stats.lock().connections_evicted += 1;
                    }
                    s
                }
            }
        };
        let mut guard = slot.lock();
        if guard.is_none() {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            self.stats.lock().connections_established += 1;
            *guard = Some(Conn {
                reader: BufReader::new(stream.try_clone()?),
                writer: stream,
            });
        } else {
            self.stats.lock().connections_reused += 1;
        }
        let conn = guard.as_mut().expect("connection just ensured");
        match f(conn) {
            Ok(out) => Ok(out),
            Err(e) => {
                // Drop a broken connection so the next fetch reconnects.
                *guard = None;
                Err(e)
            }
        }
    }

    /// Fetch one whole segment in transport-buffer-sized chunks.
    pub fn fetch_segment(&self, seg: SegmentRef) -> io::Result<Vec<u8>> {
        self.with_conn(seg.addr, |conn| {
            let mut out = Vec::new();
            let mut offset = 0u64;
            loop {
                FetchRequest {
                    mof: seg.mof,
                    reducer: seg.reducer,
                    offset,
                    len: self.buffer_bytes,
                }
                .write_to(&mut conn.writer)?;
                let resp = FetchResponse::read_from(&mut conn.reader)?;
                match resp.status {
                    Status::Ok => {}
                    Status::NotFound => {
                        return Err(io::Error::new(
                            io::ErrorKind::NotFound,
                            format!("mof {} reducer {} not found", seg.mof, seg.reducer),
                        ))
                    }
                    Status::BadRequest => {
                        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad request"))
                    }
                }
                if resp.payload.is_empty() {
                    break;
                }
                offset += resp.payload.len() as u64;
                out.extend_from_slice(&resp.payload);
            }
            self.stats.lock().bytes_fetched += out.len() as u64;
            Ok(out)
        })
    }

    /// Fetch every segment of a reducer concurrently (consolidated across
    /// suppliers) and return the raw segment byte vectors in input order.
    pub fn fetch_all(&self, segs: &[SegmentRef]) -> io::Result<Vec<Vec<u8>>> {
        let results: Vec<io::Result<Vec<u8>>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = segs
                .iter()
                .map(|&seg| scope.spawn(move |_| self.fetch_segment(seg)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("fetch threads panicked");
        results.into_iter().collect()
    }

    /// Fetch one chunk of a segment (a single request/response exchange).
    /// An empty payload means the segment is exhausted.
    pub fn fetch_chunk(&self, seg: SegmentRef, offset: u64) -> io::Result<Vec<u8>> {
        self.with_conn(seg.addr, |conn| {
            FetchRequest {
                mof: seg.mof,
                reducer: seg.reducer,
                offset,
                len: self.buffer_bytes,
            }
            .write_to(&mut conn.writer)?;
            let resp = FetchResponse::read_from(&mut conn.reader)?;
            match resp.status {
                Status::Ok => {
                    self.stats.lock().bytes_fetched += resp.payload.len() as u64;
                    Ok(resp.payload)
                }
                Status::NotFound => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("mof {} reducer {} not found", seg.mof, seg.reducer),
                )),
                Status::BadRequest => {
                    Err(io::Error::new(io::ErrorKind::InvalidData, "bad request"))
                }
            }
        })
    }

    /// **The network-levitated merge over real sockets**: merge a
    /// reducer's segments while their bodies stay on the remote suppliers.
    /// Each segment holds only its current transport buffer in memory; a
    /// buffer is refetched on demand when the merge drains it. Peak client
    /// memory is O(segments × buffer), independent of segment sizes.
    pub fn levitated_merge(&self, segs: &[SegmentRef]) -> io::Result<Vec<Record>> {
        let streams: Vec<NetworkSegmentStream> = segs
            .iter()
            .map(|&seg| NetworkSegmentStream::new(self, seg))
            .collect();
        StreamingMerge::new(streams).collect_all()
    }

    /// Materializing variant: fetch all of a reducer's segments (eagerly,
    /// concurrently) and merge them into one key-sorted record stream.
    pub fn shuffle_and_merge(&self, segs: &[SegmentRef]) -> io::Result<Vec<Record>> {
        let raw = self.fetch_all(segs)?;
        let mut runs: Vec<Vec<Record>> = Vec::with_capacity(raw.len());
        for seg in &raw {
            let mut run = Vec::new();
            for rec in SegmentReader::new(seg) {
                let (k, v) =
                    rec.map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                run.push((k.to_vec(), v.to_vec()));
            }
            runs.push(run);
        }
        let merge = KWayMerge::new(runs.into_iter().map(|r| r.into_iter()).collect());
        Ok(merge.collect())
    }
}

impl Default for NetMergerClient {
    fn default() -> Self {
        Self::new()
    }
}

/// One segment's levitation window: the current transport buffer, parsed
/// incrementally; the next buffer is fetched only when the merge drains
/// this one.
pub struct NetworkSegmentStream<'a> {
    client: &'a NetMergerClient,
    seg: SegmentRef,
    offset: u64,
    parser: RecordParser,
    exhausted: bool,
}

impl<'a> NetworkSegmentStream<'a> {
    /// A lazily-fetched stream over `seg`.
    pub fn new(client: &'a NetMergerClient, seg: SegmentRef) -> Self {
        NetworkSegmentStream {
            client,
            seg,
            offset: 0,
            parser: RecordParser::new(),
            exhausted: false,
        }
    }

    /// Bytes fetched from this segment so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

impl RecordStream for NetworkSegmentStream<'_> {
    fn next_record(&mut self) -> io::Result<Option<Record>> {
        loop {
            if let Some(rec) = self.parser.pop()? {
                return Ok(Some(rec));
            }
            if self.parser.finished() {
                return Ok(None);
            }
            if self.exhausted {
                if self.parser.pending_bytes() == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "segment ended mid-record",
                ));
            }
            let chunk = self.client.fetch_chunk(self.seg, self.offset)?;
            if chunk.is_empty() {
                self.exhausted = true;
            } else {
                self.offset += chunk.len() as u64;
                self.parser.push(&chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::MofSupplierServer;
    use crate::store::MofStore;
    use jbs_mapred::merge::is_sorted;

    fn server_with_records(n: usize, partitions: usize) -> MofSupplierServer {
        let mut store = MofStore::temp().unwrap();
        let records: Vec<Record> = (0..n)
            .map(|i| (format!("key-{:06}", (i * 7919) % n).into_bytes(), vec![i as u8; 20]))
            .collect();
        store
            .write_mof(0, records, partitions, |k| {
                k.iter().map(|&b| b as usize).sum::<usize>() % partitions
            })
            .unwrap();
        MofSupplierServer::start(store).unwrap()
    }

    #[test]
    fn fetch_segment_roundtrips_bytes() {
        let server = server_with_records(300, 2);
        let client = NetMergerClient::new();
        let seg = client
            .fetch_segment(SegmentRef {
                addr: server.addr(),
                mof: 0,
                reducer: 0,
            })
            .unwrap();
        assert!(!seg.is_empty());
        assert!(client.stats().bytes_fetched > 0);
        assert_eq!(client.stats().connections_established, 1);
        server.shutdown();
    }

    #[test]
    fn connection_reuse_across_fetches() {
        let server = server_with_records(100, 2);
        let client = NetMergerClient::new();
        for reducer in [0u32, 1, 0, 1] {
            client
                .fetch_segment(SegmentRef {
                    addr: server.addr(),
                    mof: 0,
                    reducer,
                })
                .unwrap();
        }
        let s = client.stats();
        assert_eq!(s.connections_established, 1, "one connection per supplier");
        assert_eq!(s.connections_reused, 3);
        server.shutdown();
    }

    #[test]
    fn merge_produces_sorted_output() {
        let servers: Vec<MofSupplierServer> =
            (0..3).map(|_| server_with_records(200, 1)).collect();
        let client = NetMergerClient::new();
        let segs: Vec<SegmentRef> = servers
            .iter()
            .map(|s| SegmentRef {
                addr: s.addr(),
                mof: 0,
                reducer: 0,
            })
            .collect();
        let merged = client.shuffle_and_merge(&segs).unwrap();
        assert_eq!(merged.len(), 600);
        assert!(is_sorted(&merged));
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn missing_segment_is_an_error() {
        let server = server_with_records(10, 1);
        let client = NetMergerClient::new();
        let err = client
            .fetch_segment(SegmentRef {
                addr: server.addr(),
                mof: 9,
                reducer: 0,
            })
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        server.shutdown();
    }

    #[test]
    fn levitated_merge_matches_materializing_merge() {
        let servers: Vec<MofSupplierServer> =
            (0..3).map(|_| server_with_records(400, 1)).collect();
        let segs: Vec<SegmentRef> = servers
            .iter()
            .map(|s| SegmentRef {
                addr: s.addr(),
                mof: 0,
                reducer: 0,
            })
            .collect();
        // Small buffers so segments need many on-demand refills.
        let client = NetMergerClient::with_config(2 << 10, 512);
        let levitated = client.levitated_merge(&segs).unwrap();
        let materialized = client.shuffle_and_merge(&segs).unwrap();
        assert_eq!(levitated, materialized);
        assert!(is_sorted(&levitated));
        assert_eq!(levitated.len(), 1200);
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn levitated_stream_fetches_on_demand() {
        let server = server_with_records(2000, 1);
        let client = NetMergerClient::with_config(4 << 10, 512);
        let seg = SegmentRef {
            addr: server.addr(),
            mof: 0,
            reducer: 0,
        };
        let mut stream = NetworkSegmentStream::new(&client, seg);
        // Pulling one record must fetch only the first window, not the
        // whole multi-chunk segment.
        let first = stream.next_record().unwrap().unwrap();
        assert!(!first.0.is_empty());
        assert_eq!(stream.offset(), 4 << 10, "exactly one buffer fetched");
        server.shutdown();
    }

    #[test]
    fn tiny_connection_cache_evicts_lru() {
        let servers: Vec<MofSupplierServer> =
            (0..3).map(|_| server_with_records(50, 1)).collect();
        let client = NetMergerClient::with_config(128 << 10, 1);
        for s in &servers {
            client
                .fetch_segment(SegmentRef {
                    addr: s.addr(),
                    mof: 0,
                    reducer: 0,
                })
                .unwrap();
        }
        // Revisit the first supplier: its connection was evicted.
        client
            .fetch_segment(SegmentRef {
                addr: servers[0].addr(),
                mof: 0,
                reducer: 0,
            })
            .unwrap();
        let s = client.stats();
        assert_eq!(s.connections_established, 4);
        assert_eq!(s.connections_reused, 0);
        for s in servers {
            s.shutdown();
        }
    }
}
