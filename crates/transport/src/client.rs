//! The NetMerger client: consolidated fetching plus network-levitated
//! merge, over real sockets.
//!
//! One client serves all reducers of a "node". Two fetch paths coexist:
//!
//! * the **serial path** (`fetch_segment`, `fetch_chunk`) is strict
//!   lockstep — one request, wait, one response — over connections
//!   cached per supplier address and torn down LRU beyond a cap
//!   (Sec. IV-A's 512-connection policy, configurable here);
//! * the **pipelined path** (`fetch_all`, `levitated_merge`) hands ops
//!   to the background [`crate::sched::FetchScheduler`]: per-supplier
//!   worker threads keep a bounded window of requests in flight per
//!   connection, injected round-robin across segments, so the
//!   supplier's disk prefetch for chunk `k+1` overlaps the network
//!   transmission of chunk `k` end-to-end. Completions stream back over
//!   channels and are consumed as they land.
//!
//! Every fetch on either path is covered by the recovery machinery:
//! per-request read/write deadlines, a [`RetryPolicy`] with
//! deterministic backoff jitter, eviction + re-dial of failed
//! connections, and — because retry operates per chunk — **resume at
//! the received offset**: a segment interrupted at byte `o` continues
//! from `o` on the fresh connection instead of refetching `[0, o)`.
//! [`FetchStats`] counts all of it, including the pipeline gauges
//! (queue depth, window occupancy, speculation discards).

use crate::error::{Result, TransportError};
use crate::faults::{self, FaultAction, FaultPlan, Hook};
use crate::retry::RetryPolicy;
use crate::sched::{FetchDone, FetchOp, FetchScheduler};
use crate::slot::{SlotEvent, SlotMap};
use crate::stats::{FetchStats, FetchStatsSnapshot};
use crate::sync::{lock, Mutex};
use crate::wire::{FetchRequest, FetchResponse, Status, WireVersion, FLAG_BYPASS_CACHE};
use jbs_des::DetRng;
use jbs_mapred::levitate::{RecordParser, RecordStream, StreamingMerge};
use jbs_mapred::merge::{KWayMerge, Record};
use jbs_mapred::mof::SegmentReader;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// A fetch target: which segment on which supplier.
#[derive(Debug, Clone, Copy)]
pub struct SegmentRef {
    /// Supplier address.
    pub addr: SocketAddr,
    /// MOF id on that supplier.
    pub mof: u64,
    /// Reducer (partition) number.
    pub reducer: u32,
}

/// Client statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientStats {
    /// Connections established.
    pub connections_established: u64,
    /// Fetches that reused a cached connection.
    pub connections_reused: u64,
    /// Connections torn down by the LRU cap.
    pub connections_evicted: u64,
    /// Payload bytes fetched.
    pub bytes_fetched: u64,
}

/// Tunables for the NetMerger client.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Transport buffer (chunk) size; the paper uses 128 KB.
    pub buffer_bytes: u64,
    /// Connection-cache cap; the paper uses 512.
    pub max_connections: usize,
    /// Pipelining depth: requests kept in flight per supplier
    /// connection, and ops admitted concurrently per supplier worker.
    /// `1` degenerates to lockstep.
    pub window: usize,
    /// Retry budget and backoff shape for transient failures.
    pub retry: RetryPolicy,
    /// Deadline for establishing a connection.
    pub connect_timeout: Duration,
    /// Per-request read deadline.
    pub read_timeout: Duration,
    /// Per-request write deadline.
    pub write_timeout: Duration,
    /// Seed for the backoff-jitter rng streams.
    pub retry_seed: u64,
    /// Optional fault-injection plan (tests only; `None` in production).
    pub faults: Option<Arc<FaultPlan>>,
    /// Structured tracing sink; [`jbs_obs::Trace::disabled`] (the
    /// default) is a single branch per instrumentation point.
    pub trace: jbs_obs::Trace,
    /// End-to-end integrity: open every peer in the v3 dialect so chunk
    /// payloads arrive CRC32C-sealed and are verified before they are
    /// admitted to the merge. `false` pins every peer to v2 (no
    /// checksums, no busy frames) — the escape hatch for measuring the
    /// checksum overhead or talking to a fleet of legacy suppliers.
    pub checksum: bool,
    /// Integrity re-fetch budget: how many targeted cache-bypass
    /// re-fetches one chunk position may consume (CRC mismatches and
    /// short-EOF accounting violations) before the typed error
    /// surfaces.
    pub integrity_retries: u32,
    /// Per-peer circuit breaker (pipelined path): consecutive
    /// connection-level failures before the peer's breaker opens and
    /// new ops fail fast with [`TransportError::CircuitOpen`]. `0`
    /// disables the breaker entirely.
    pub breaker_threshold: u32,
    /// Base cooldown an open breaker waits before granting its single
    /// half-open probe; doubles on every failed probe (capped at 64x).
    pub breaker_cooldown: Duration,
    /// Replica routing pushed down by the control plane: MOF → replica
    /// addresses plus unhealthy marks. When set, fetch ops aimed at a
    /// breaker-open or unhealthy peer redirect to the next healthy
    /// replica (`failover.redirect` in the trace) instead of failing the
    /// job. `None` (the default) keeps static point-to-point addressing.
    pub routes: Option<Arc<crate::routes::RouteTable>>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            buffer_bytes: 128 << 10,
            max_connections: 512,
            window: 8,
            retry: RetryPolicy::default(),
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry_seed: 0x4A42_5331,
            faults: None,
            trace: jbs_obs::Trace::disabled(),
            checksum: true,
            integrity_retries: 2,
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_millis(100),
            routes: None,
        }
    }
}

pub(crate) struct Conn {
    pub(crate) reader: BufReader<TcpStream>,
    pub(crate) writer: TcpStream,
}

/// Per-peer dialect negotiation state (client-driven; see `wire.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeerVersion {
    /// Speaking v3, unconfirmed. Counts connections that died before
    /// *any* v3 response arrived — the legacy-server signature.
    Probing(u32),
    /// Pinned v3: this peer has produced a v3 response.
    V3,
    /// Downgraded: consecutive fresh connections died before any v3
    /// response; the peer is treated as a legacy v2 supplier.
    V2,
}

/// Probing connections that may die before a peer is declared legacy.
const V3_PROBE_BUDGET: u32 = 2;

/// The client side of wire-version negotiation: every peer starts in
/// v3, pins v3 on the first v3 response, and is downgraded to v2 only
/// after [`V3_PROBE_BUDGET`] connections died without any v3 response
/// (a genuine v2-only server drops the unknown magic every time).
/// Dial failures never count — a dead peer is not a legacy peer.
pub(crate) struct VersionMap {
    enabled: bool,
    versions: Mutex<HashMap<SocketAddr, PeerVersion>>,
}

impl VersionMap {
    pub(crate) fn new(enabled: bool) -> Self {
        VersionMap {
            enabled,
            versions: Mutex::new(HashMap::new()),
        }
    }

    /// The dialect to frame the next request to `addr` in.
    pub(crate) fn version_for(&self, addr: SocketAddr) -> WireVersion {
        if !self.enabled {
            return WireVersion::V2;
        }
        match lock(&self.versions).get(&addr) {
            Some(PeerVersion::V2) => WireVersion::V2,
            _ => WireVersion::V3,
        }
    }

    /// A v3 response arrived from `addr`: pin the peer to v3. Pinned
    /// peers never downgrade — later connection deaths are failures,
    /// not negotiation signals.
    pub(crate) fn confirm_v3(&self, addr: SocketAddr) {
        if self.enabled {
            lock(&self.versions).insert(addr, PeerVersion::V3);
        }
    }

    /// A connection to `addr` died before any v3 response arrived on
    /// it. After [`V3_PROBE_BUDGET`] such deaths the peer is downgraded
    /// to the legacy dialect.
    pub(crate) fn record_probe_failure(&self, addr: SocketAddr) {
        if !self.enabled {
            return;
        }
        let mut versions = lock(&self.versions);
        let state = versions.entry(addr).or_insert(PeerVersion::Probing(0));
        if let PeerVersion::Probing(n) = *state {
            *state = if n + 1 >= V3_PROBE_BUDGET {
                PeerVersion::V2
            } else {
                PeerVersion::Probing(n + 1)
            };
        }
    }
}

/// State shared between the client facade and the scheduler's worker
/// threads.
pub(crate) struct ClientShared {
    pub(crate) stats: Mutex<ClientStats>,
    pub(crate) fetch_stats: FetchStats,
    pub(crate) versions: VersionMap,
    pub(crate) config: ClientConfig,
}

/// Dial a supplier with the configured deadlines (and fault hooks).
/// Used by both the serial path's connection cache and the scheduler's
/// per-peer workers.
pub(crate) fn dial(addr: SocketAddr, config: &ClientConfig) -> Result<Conn> {
    match faults::decide(&config.faults, Hook::ClientConnect) {
        FaultAction::RefuseConnect => {
            return Err(TransportError::Connect {
                target: addr.to_string(),
                source: io::Error::new(io::ErrorKind::ConnectionRefused, "injected refusal"),
            });
        }
        FaultAction::Stall(d) => std::thread::sleep(d),
        _ => {}
    }
    let stream = TcpStream::connect_timeout(&addr, config.connect_timeout).map_err(|e| {
        TransportError::Connect {
            target: addr.to_string(),
            source: e,
        }
    })?;
    let setup = |e| TransportError::Io {
        during: "socket setup",
        source: e,
    };
    stream.set_nodelay(true).map_err(setup)?;
    stream
        .set_read_timeout(Some(config.read_timeout))
        .map_err(setup)?;
    stream
        .set_write_timeout(Some(config.write_timeout))
        .map_err(setup)?;
    let reader = BufReader::new(stream.try_clone().map_err(setup)?);
    Ok(Conn {
        reader,
        writer: stream,
    })
}

/// Bump the per-kind failure counter for a failed attempt.
pub(crate) fn record_failure(fetch: &FetchStats, e: &TransportError) {
    match e {
        TransportError::Timeout { .. } => fetch.record_timeout(),
        TransportError::Reset { .. } => fetch.record_reset(),
        TransportError::Corrupt { .. } => fetch.record_corrupt_frame(),
        TransportError::Connect { .. } => fetch.record_connect_failure(),
        _ => {}
    }
}

/// Round-robin the indices of `segs` across supplier addresses (in
/// order of first appearance): the paper's balanced injection. Ops
/// spread evenly into every peer queue from the start, so all supplier
/// pipelines spin up together instead of being loaded in input order.
fn balanced_order(segs: &[SegmentRef]) -> Vec<usize> {
    let mut groups: Vec<(SocketAddr, VecDeque<usize>)> = Vec::new();
    for (i, s) in segs.iter().enumerate() {
        match groups.iter_mut().find(|(a, _)| *a == s.addr) {
            Some((_, q)) => q.push_back(i),
            None => groups.push((s.addr, VecDeque::from([i]))),
        }
    }
    let mut order = Vec::with_capacity(segs.len());
    let mut more = true;
    while more {
        more = false;
        for (_, q) in &mut groups {
            if let Some(i) = q.pop_front() {
                order.push(i);
                more = true;
            }
        }
    }
    order
}

/// The NetMerger. Connection caching for the serial path —
/// consolidation per supplier, LRU eviction beyond the cap — lives in
/// [`SlotMap`], where the `cfg(loom)` models exercise it; the pipelined
/// path's per-supplier workers live in [`FetchScheduler`].
pub struct NetMergerClient {
    conns: SlotMap<SocketAddr, Conn>,
    backoff_rng: Mutex<DetRng>,
    shared: Arc<ClientShared>,
    sched: FetchScheduler,
}

impl NetMergerClient {
    /// A client with the paper's defaults: 128 KB transport buffers and a
    /// 512-connection cache.
    pub fn new() -> Self {
        Self::with_client_config(ClientConfig::default())
    }

    /// A client with explicit buffer size and connection cap, defaults
    /// elsewhere.
    pub fn with_config(buffer_bytes: u64, max_connections: usize) -> Self {
        Self::with_client_config(ClientConfig {
            buffer_bytes,
            max_connections,
            ..ClientConfig::default()
        })
    }

    /// A client with full control of retry, timeouts, window, and faults.
    pub fn with_client_config(config: ClientConfig) -> Self {
        let shared = Arc::new(ClientShared {
            stats: Mutex::new(ClientStats::default()),
            fetch_stats: FetchStats::new(),
            versions: VersionMap::new(config.checksum),
            config: ClientConfig {
                buffer_bytes: config.buffer_bytes.max(1),
                window: config.window.max(1),
                ..config
            },
        });
        NetMergerClient {
            conns: SlotMap::new(shared.config.max_connections),
            backoff_rng: Mutex::new(DetRng::new(shared.config.retry_seed)),
            sched: FetchScheduler::new(Arc::clone(&shared)),
            shared,
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ClientStats {
        *lock(&self.shared.stats)
    }

    /// Recovery counters and pipeline gauges: retries, reconnects,
    /// timeouts, resumed bytes, queue depth, window occupancy.
    pub fn fetch_stats(&self) -> FetchStatsSnapshot {
        self.shared.fetch_stats.snapshot()
    }

    /// Per-supplier scheduler queue depths (ops submitted but not yet
    /// picked up by that supplier's worker). Quiescent clients read all
    /// zeros.
    pub fn queue_depths(&self) -> Vec<(SocketAddr, usize)> {
        self.sched.queue_depths()
    }

    fn with_conn<T>(&self, addr: SocketAddr, f: impl FnOnce(&mut Conn) -> Result<T>) -> Result<T> {
        // The event callback runs at most under the slot's `conn` lock
        // and takes only `stats`, which the documented lock order places
        // after `conn`.
        self.conns.with_conn(
            addr,
            || dial(addr, &self.shared.config),
            |ev| match ev {
                SlotEvent::Evicted => lock(&self.shared.stats).connections_evicted += 1,
                SlotEvent::Established { reconnect } => {
                    lock(&self.shared.stats).connections_established += 1;
                    if reconnect {
                        self.shared.fetch_stats.record_reconnect();
                    }
                }
                SlotEvent::Reused => lock(&self.shared.stats).connections_reused += 1,
            },
            f,
        )
    }

    /// One request/response exchange on a (possibly reused) cached
    /// connection — the serial path. No retry here; this is the unit the
    /// retry loop wraps. Serial requests carry id 0 and expect it back:
    /// the exchange is lockstep, so any other echo is a desynchronized
    /// stream.
    ///
    /// Returns the payload plus the total segment length when the peer
    /// spoke v3 (`OkCrc`), which the caller feeds into expected-length
    /// accounting. A payload failing its CRC sets `bypass_next` so the
    /// retry issues a targeted cache-bypass re-fetch.
    fn try_fetch_chunk(
        &self,
        seg: SegmentRef,
        offset: u64,
        len: u64,
        bypass: bool,
        bypass_next: &mut bool,
    ) -> Result<(Vec<u8>, Option<u64>)> {
        let version = self.shared.versions.version_for(seg.addr);
        let flags = if bypass && version == WireVersion::V3 {
            FLAG_BYPASS_CACHE
        } else {
            0
        };
        let res = self.with_conn(seg.addr, |conn| {
            FetchRequest {
                id: 0,
                mof: seg.mof,
                reducer: seg.reducer,
                offset,
                len,
                flags,
            }
            .write_versioned(&mut conn.writer, version)
            .map_err(|e| TransportError::from_io("write request", e))?;
            match faults::decide(&self.shared.config.faults, Hook::ClientReadResponse) {
                FaultAction::Reset => {
                    return Err(TransportError::Reset {
                        during: "read response (injected)",
                    })
                }
                FaultAction::Stall(d) => std::thread::sleep(d),
                _ => {}
            }
            let resp = FetchResponse::read_from(&mut conn.reader)
                .map_err(|e| TransportError::from_io("read response", e))?;
            if resp.id != 0 {
                return Err(TransportError::Corrupt {
                    detail: format!("serial exchange echoed pipelined id {}", resp.id),
                });
            }
            match resp.status {
                Status::Ok => {
                    lock(&self.shared.stats).bytes_fetched += resp.payload.len() as u64;
                    Ok((resp.payload, None))
                }
                Status::OkCrc => {
                    self.shared.versions.confirm_v3(seg.addr);
                    if !resp.crc_ok() {
                        // The frame parsed cleanly but the payload does
                        // not match its seal: damage on disk, in cache,
                        // or in RAM. Re-fetch with the bypass flag so
                        // the supplier re-reads from disk instead of
                        // re-serving the same poisoned bytes.
                        *bypass_next = true;
                        return Err(TransportError::Corrupt {
                            detail: format!(
                                "payload CRC32C mismatch at offset {offset} of mof {} reducer {}",
                                seg.mof, seg.reducer
                            ),
                        });
                    }
                    self.shared.config.trace.instant(
                        "integrity.verify",
                        jbs_obs::Entity::mof(seg.mof),
                        offset,
                        resp.payload.len() as u64,
                    );
                    lock(&self.shared.stats).bytes_fetched += resp.payload.len() as u64;
                    Ok((resp.payload, Some(resp.seg_len)))
                }
                Status::Busy => {
                    self.shared.versions.confirm_v3(seg.addr);
                    Err(TransportError::Busy {
                        retry_after: Duration::from_millis(resp.retry_after_ms),
                    })
                }
                Status::NotFound => Err(TransportError::NotFound {
                    what: format!("mof {} reducer {}", seg.mof, seg.reducer),
                }),
                Status::BadRequest => Err(TransportError::BadRequest {
                    detail: format!(
                        "supplier rejected fetch of mof {} reducer {}",
                        seg.mof, seg.reducer
                    ),
                }),
            }
        });
        if let Err(e) = &res {
            // Negotiation: a connection that died before any v3
            // response may be a legacy server rejecting the magic.
            // Dial failures and typed verdicts are not that signature.
            if version == WireVersion::V3
                && matches!(
                    e,
                    TransportError::Reset { .. }
                        | TransportError::Timeout { .. }
                        | TransportError::Io { .. }
                )
            {
                self.shared.versions.record_probe_failure(seg.addr);
            }
        }
        res
    }

    /// Fetch one chunk under the retry policy. `offset` doubles as the
    /// resume point: a retried chunk re-requests exactly `[offset, ...)`,
    /// so bytes before `offset` are never refetched. `bypass_next`
    /// seeds the first attempt with the cache-bypass flag (the caller
    /// already convicted the cached bytes); later attempts set it
    /// themselves on CRC mismatch. A `Busy` pushback sleeps the
    /// supplier's hint instead of the backoff curve when the hint is
    /// longer.
    fn fetch_chunk_with_retry(
        &self,
        seg: SegmentRef,
        offset: u64,
        len: u64,
        mut bypass_next: bool,
    ) -> Result<(Vec<u8>, Option<u64>)> {
        let mut attempt = 0u32;
        loop {
            let bypass = std::mem::take(&mut bypass_next);
            match self.try_fetch_chunk(seg, offset, len, bypass, &mut bypass_next) {
                Ok(out) => return Ok(out),
                Err(e) if e.is_retryable() && attempt < self.shared.config.retry.max_retries => {
                    attempt += 1;
                    record_failure(&self.shared.fetch_stats, &e);
                    if bypass_next {
                        // Integrity-driven targeted re-fetch: tracked
                        // apart from connection-level retries.
                        self.shared.fetch_stats.record_corrupt_refetch();
                        self.shared.config.trace.instant(
                            "integrity.refetch",
                            jbs_obs::Entity::mof(seg.mof),
                            offset,
                            u64::from(attempt),
                        );
                    } else {
                        self.shared.fetch_stats.record_retry();
                    }
                    if attempt == 1 && offset > 0 {
                        // The segment resumes mid-stream: everything
                        // before `offset` survives this recovery.
                        self.shared.fetch_stats.record_resumed_bytes(offset);
                    }
                    let mut delay = {
                        let mut rng = lock(&self.backoff_rng);
                        self.shared.config.retry.backoff(attempt, &mut rng)
                    };
                    if let TransportError::Busy { retry_after } = &e {
                        // Typed pushback: honor the supplier's hint.
                        self.shared.fetch_stats.record_busy_backoff();
                        delay = delay.max(*retry_after);
                    }
                    let _backoff = self.shared.config.trace.span(
                        "retry.backoff",
                        jbs_obs::Entity::peer(u64::from(seg.addr.port())),
                        u64::from(attempt),
                        delay.as_nanos() as u64,
                    );
                    std::thread::sleep(delay);
                }
                Err(e) if e.is_retryable() => {
                    record_failure(&self.shared.fetch_stats, &e);
                    self.shared.fetch_stats.record_exhausted();
                    return Err(TransportError::RetriesExhausted {
                        attempts: attempt + 1,
                        last: Box::new(e),
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fetch one whole segment in transport-buffer-sized chunks, resuming
    /// at the received offset across transient failures. Serial: each
    /// chunk waits for the previous one — the baseline the pipelined
    /// path is measured against.
    ///
    /// Under v3 the segment's total length (carried on every `OkCrc`
    /// frame) is enforced: an empty chunk before `expected` bytes have
    /// arrived — a truncation landing exactly on a chunk boundary,
    /// which v2 cannot tell from clean EOF — triggers a bounded
    /// cache-bypass re-fetch and then a typed
    /// [`TransportError::Truncated`].
    pub fn fetch_segment(&self, seg: SegmentRef) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut offset = 0u64;
        let mut expected: Option<u64> = None;
        let mut integrity_retries = 0u32;
        let mut refetch = false;
        loop {
            let (chunk, seg_len) = self.fetch_chunk_with_retry(
                seg,
                offset,
                self.shared.config.buffer_bytes,
                refetch,
            )?;
            refetch = false;
            if seg_len.is_some() {
                expected = seg_len;
            }
            if chunk.is_empty() {
                if let Some(exp) = expected {
                    if offset < exp {
                        // Short clean EOF: the accounting says more
                        // bytes must exist.
                        if integrity_retries < self.shared.config.integrity_retries {
                            integrity_retries += 1;
                            self.shared.fetch_stats.record_corrupt_refetch();
                            self.shared.config.trace.instant(
                                "integrity.refetch",
                                jbs_obs::Entity::mof(seg.mof),
                                offset,
                                u64::from(integrity_retries),
                            );
                            refetch = true;
                            continue;
                        }
                        return Err(TransportError::Truncated {
                            got: offset,
                            expected: exp,
                        });
                    }
                }
                return Ok(out);
            }
            offset += chunk.len() as u64;
            out.extend_from_slice(&chunk);
        }
    }

    /// The replica a failed `fetch_all` op should retry against, or
    /// `None` when the failure must surface. Redirects fire **only**
    /// behind a health signal — the failed peer's circuit breaker is
    /// open, or the control plane's route table marks it unhealthy —
    /// so a transient error on a healthy peer stays with that peer's
    /// own retry budget. Records the failover stat and traces
    /// `failover.redirect` when a target is found.
    fn failover_replica(
        &self,
        segs: &[SegmentRef],
        tried: &[Vec<SocketAddr>],
        idx: usize,
    ) -> Option<SocketAddr> {
        let routes = self.shared.config.routes.as_ref()?;
        let seg = segs.get(idx)?;
        let tried = tried.get(idx)?;
        let last = *tried.last()?;
        if !routes.is_unhealthy(last) && !self.sched.breaker_open(last) {
            return None;
        }
        let next = routes.failover_target(seg.mof, tried)?;
        self.shared.fetch_stats.record_failover();
        self.shared.config.trace.instant(
            "failover.redirect",
            jbs_obs::Entity::peer(u64::from(next.port())),
            seg.mof,
            u64::from(last.port()),
        );
        Some(next)
    }

    /// Fetch every segment of a reducer through the pipelined scheduler
    /// and return the raw segment byte vectors in input order.
    ///
    /// Ops inject round-robin across supplier addresses (balanced
    /// injection); each supplier's worker keeps up to
    /// [`ClientConfig::window`] requests on the wire, so supplier disk
    /// prefetch and network transmission overlap across the whole
    /// reducer. Failures carry [`TransportError::Segment`] context
    /// naming the exact (MOF, reducer, supplier) that failed; the
    /// lowest-input-index failure is returned.
    pub fn fetch_all(&self, segs: &[SegmentRef]) -> Result<Vec<Vec<u8>>> {
        if segs.is_empty() {
            return Ok(Vec::new());
        }
        let (tx, rx) = mpsc::channel();
        // Addresses each op (keyed by token = input index) has already
        // been aimed at, so a failover never revisits a replica.
        let mut tried: Vec<Vec<SocketAddr>> = segs.iter().map(|s| vec![s.addr]).collect();
        for &i in &balanced_order(segs) {
            let Some(&seg) = segs.get(i) else { continue };
            self.sched.submit(FetchOp {
                token: i as u64,
                seg,
                offset: 0,
                limit: 0,
                done: tx.clone(),
            });
        }
        let mut out: Vec<Option<Vec<u8>>> = segs.iter().map(|_| None).collect();
        let mut failures: Vec<(u64, TransportError)> = Vec::new();
        let mut pending = segs.len();
        while pending > 0 {
            let Ok(done) = rx.recv() else { break };
            match done.result {
                Ok(bytes) => {
                    pending -= 1;
                    if let Some(slot) = out.get_mut(done.token as usize) {
                        *slot = Some(bytes);
                    }
                }
                Err(e) => {
                    // Reactive failover: a failed op whose peer is
                    // breaker-open or marked unhealthy resubmits against
                    // the next untried replica of its MOF; anything else
                    // (or an exhausted replica set) surfaces the error.
                    let idx = done.token as usize;
                    match self.failover_replica(segs, &tried, idx) {
                        Some(next) => {
                            if let (Some(t), Some(&seg)) =
                                (tried.get_mut(idx), segs.get(idx))
                            {
                                t.push(next);
                                self.sched.submit(FetchOp {
                                    token: done.token,
                                    seg: SegmentRef { addr: next, ..seg },
                                    offset: 0,
                                    limit: 0,
                                    done: tx.clone(),
                                });
                            } else {
                                pending -= 1;
                                failures.push((done.token, e));
                            }
                        }
                        None => {
                            pending -= 1;
                            failures.push((done.token, e));
                        }
                    }
                }
            }
        }
        drop(tx);
        // One failure surfaces with its full segment context; several
        // aggregate into a partial-failure report naming every failed
        // segment instead of an opaque first-error.
        if failures.len() > 1 {
            failures.sort_by_key(|(t, _)| *t);
            return Err(TransportError::Partial {
                failures: failures.into_iter().map(|(_, e)| e).collect(),
            });
        }
        if let Some((_, e)) = failures.pop() {
            return Err(e);
        }
        let mut res = Vec::with_capacity(out.len());
        for slot in out {
            match slot {
                Some(bytes) => res.push(bytes),
                None => {
                    return Err(TransportError::Io {
                        during: "fetch_all",
                        source: io::Error::other("fetch op vanished without completing"),
                    })
                }
            }
        }
        Ok(res)
    }

    /// Serial reference for [`Self::fetch_all`]: one thread per segment,
    /// each fetching lockstep over the cached connections. Kept as the
    /// measured baseline (see `crates/bench`) and as a fallback.
    pub fn fetch_all_serial(&self, segs: &[SegmentRef]) -> Result<Vec<Vec<u8>>> {
        let results: Vec<Result<Vec<u8>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = segs
                .iter()
                .map(|&seg| scope.spawn(move || self.fetch_segment(seg)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => Err(TransportError::Io {
                        during: "fetch worker",
                        source: io::Error::other("fetch thread panicked"),
                    }),
                })
                .collect()
        });
        results.into_iter().collect()
    }

    /// Fetch one chunk of a segment (a single serial request/response
    /// exchange, retried on transient failure). An empty payload means
    /// the segment is exhausted.
    pub fn fetch_chunk(&self, seg: SegmentRef, offset: u64) -> Result<Vec<u8>> {
        self.fetch_chunk_with_retry(seg, offset, self.shared.config.buffer_bytes, false)
            .map(|(bytes, _)| bytes)
    }

    /// **The network-levitated merge over real sockets**: merge a
    /// reducer's segments while their bodies stay on the remote suppliers.
    /// Each segment holds its current transport buffer in memory and
    /// keeps the next one in flight through the pipelined scheduler
    /// (double buffering), so the merge consumes chunk `k` while chunk
    /// `k+1` streams in. Peak client memory stays O(segments × buffer),
    /// independent of segment sizes.
    pub fn levitated_merge(&self, segs: &[SegmentRef]) -> Result<Vec<Record>> {
        let streams: Vec<NetworkSegmentStream> = segs
            .iter()
            .map(|&seg| NetworkSegmentStream::new(self, seg))
            .collect();
        StreamingMerge::new(streams)
            .with_trace(self.shared.config.trace.clone())
            .collect_all()
            .map_err(|e| TransportError::from_io("levitated merge", e))
    }

    /// Materializing variant: fetch all of a reducer's segments through
    /// the pipelined scheduler and merge them into one key-sorted record
    /// stream.
    pub fn shuffle_and_merge(&self, segs: &[SegmentRef]) -> Result<Vec<Record>> {
        let raw = self.fetch_all(segs)?;
        let mut runs: Vec<Vec<Record>> = Vec::with_capacity(raw.len());
        for seg in &raw {
            let mut run = Vec::new();
            for rec in SegmentReader::new(seg) {
                let (k, v) = rec.map_err(|e| TransportError::Corrupt {
                    detail: format!("segment record: {e}"),
                })?;
                run.push((k.to_vec(), v.to_vec()));
            }
            runs.push(run);
        }
        let merge = KWayMerge::new(runs.into_iter().map(|r| r.into_iter()).collect());
        Ok(merge.collect())
    }
}

impl Default for NetMergerClient {
    fn default() -> Self {
        Self::new()
    }
}

/// One segment's levitation window: the current transport buffer, parsed
/// incrementally, with the next buffer already in flight through the
/// scheduler (double buffering) while this one is consumed.
pub struct NetworkSegmentStream<'a> {
    client: &'a NetMergerClient,
    seg: SegmentRef,
    /// Absolute offset up to which bytes have been received and parsed.
    offset: u64,
    parser: RecordParser,
    exhausted: bool,
    done_tx: mpsc::Sender<FetchDone>,
    done_rx: mpsc::Receiver<FetchDone>,
    /// Offset of the chunk currently in flight, if any.
    pending: Option<u64>,
    next_token: u64,
}

impl<'a> NetworkSegmentStream<'a> {
    /// A lazily-fetched stream over `seg`.
    pub fn new(client: &'a NetMergerClient, seg: SegmentRef) -> Self {
        let (done_tx, done_rx) = mpsc::channel();
        NetworkSegmentStream {
            client,
            seg,
            offset: 0,
            parser: RecordParser::new(),
            exhausted: false,
            done_tx,
            done_rx,
            pending: None,
            next_token: 0,
        }
    }

    /// Bytes received from this segment so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    fn request(&mut self, offset: u64) {
        let token = self.next_token;
        self.next_token += 1;
        self.client.sched.submit(FetchOp {
            token,
            seg: self.seg,
            offset,
            limit: self.client.shared.config.buffer_bytes,
            done: self.done_tx.clone(),
        });
        self.pending = Some(offset);
    }

    /// The next chunk at `self.offset` (empty at segment end), keeping
    /// one chunk speculatively in flight whenever the previous one came
    /// back full-sized.
    fn next_chunk(&mut self) -> io::Result<Vec<u8>> {
        loop {
            if self.pending.is_none() {
                self.request(self.offset);
            }
            let done = self.done_rx.recv().map_err(|_| {
                io::Error::new(io::ErrorKind::Interrupted, "fetch scheduler disconnected")
            })?;
            let req_off = self.pending.take().unwrap_or(self.offset);
            let payload = done.result.map_err(io::Error::from)?;
            if req_off != self.offset {
                // A speculative chunk aimed past a short read; refetch
                // from the corrected offset.
                continue;
            }
            if !payload.is_empty() {
                self.offset += payload.len() as u64;
                if payload.len() as u64 == self.client.shared.config.buffer_bytes {
                    // Full chunk: speculate the next one so it rides the
                    // wire while the merge consumes this one.
                    self.request(self.offset);
                }
            }
            return Ok(payload);
        }
    }
}

impl RecordStream for NetworkSegmentStream<'_> {
    fn next_record(&mut self) -> io::Result<Option<Record>> {
        loop {
            if let Some(rec) = self.parser.pop()? {
                return Ok(Some(rec));
            }
            if self.parser.finished() {
                return Ok(None);
            }
            if self.exhausted {
                if self.parser.pending_bytes() == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "segment ended mid-record",
                ));
            }
            let chunk = self.next_chunk()?;
            if chunk.is_empty() {
                self.exhausted = true;
            } else {
                self.parser.push(&chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::MofSupplierServer;
    use crate::store::MofStore;
    use jbs_mapred::merge::is_sorted;

    /// Wait for the scheduler's gauges to drain: completions hand off
    /// before workers finish reading trailing speculative responses, so
    /// gauge assertions poll briefly instead of racing the drain.
    fn quiesce(client: &NetMergerClient) -> FetchStatsSnapshot {
        for _ in 0..400 {
            let fs = client.fetch_stats();
            if fs.window_inflight == 0 && fs.queued_ops == 0 {
                return fs;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        client.fetch_stats()
    }

    fn server_with_records(n: usize, partitions: usize) -> MofSupplierServer {
        let mut store = MofStore::temp().unwrap();
        let records: Vec<Record> = (0..n)
            .map(|i| {
                (
                    format!("key-{:06}", (i * 7919) % n).into_bytes(),
                    vec![i as u8; 20],
                )
            })
            .collect();
        store
            .write_mof(0, records, partitions, |k| {
                k.iter().map(|&b| b as usize).sum::<usize>() % partitions
            })
            .unwrap();
        MofSupplierServer::start(store).unwrap()
    }

    #[test]
    fn fetch_segment_roundtrips_bytes() {
        let server = server_with_records(300, 2);
        let client = NetMergerClient::new();
        let seg = client
            .fetch_segment(SegmentRef {
                addr: server.addr(),
                mof: 0,
                reducer: 0,
            })
            .unwrap();
        assert!(!seg.is_empty());
        assert!(client.stats().bytes_fetched > 0);
        assert_eq!(client.stats().connections_established, 1);
        server.shutdown();
    }

    #[test]
    fn connection_reuse_across_fetches() {
        let server = server_with_records(100, 2);
        let client = NetMergerClient::new();
        for reducer in [0u32, 1, 0, 1] {
            client
                .fetch_segment(SegmentRef {
                    addr: server.addr(),
                    mof: 0,
                    reducer,
                })
                .unwrap();
        }
        let s = client.stats();
        assert_eq!(s.connections_established, 1, "one connection per supplier");
        // Reuse is counted per request/response exchange; four segment
        // fetches over one cached connection reuse it at least thrice.
        assert!(s.connections_reused >= 3, "{}", s.connections_reused);
        server.shutdown();
    }

    #[test]
    fn merge_produces_sorted_output() {
        let servers: Vec<MofSupplierServer> = (0..3).map(|_| server_with_records(200, 1)).collect();
        let client = NetMergerClient::new();
        let segs: Vec<SegmentRef> = servers
            .iter()
            .map(|s| SegmentRef {
                addr: s.addr(),
                mof: 0,
                reducer: 0,
            })
            .collect();
        let merged = client.shuffle_and_merge(&segs).unwrap();
        assert_eq!(merged.len(), 600);
        assert!(is_sorted(&merged));
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn pipelined_fetch_all_matches_serial() {
        let servers: Vec<MofSupplierServer> =
            (0..3).map(|_| server_with_records(1500, 2)).collect();
        let segs: Vec<SegmentRef> = servers
            .iter()
            .flat_map(|s| {
                (0..2u32).map(|reducer| SegmentRef {
                    addr: s.addr(),
                    mof: 0,
                    reducer,
                })
            })
            .collect();
        // Small buffers force many chunks per segment, so the window
        // actually pipelines.
        let client = NetMergerClient::with_client_config(ClientConfig {
            buffer_bytes: 4 << 10,
            window: 6,
            ..ClientConfig::default()
        });
        let pipelined = client.fetch_all(&segs).unwrap();
        let serial = client.fetch_all_serial(&segs).unwrap();
        assert_eq!(pipelined, serial, "pipelining must not change bytes");

        let fs = quiesce(&client);
        assert!(fs.window_peak > 1, "requests never overlapped: {fs:?}");
        assert!(fs.queue_depth_peak >= 1, "{fs:?}");
        assert_eq!(fs.window_inflight, 0, "window must drain: {fs:?}");
        assert_eq!(fs.queued_ops, 0, "queues must drain: {fs:?}");
        assert!(
            fs.spec_discards >= 1,
            "segment tails must discard stale speculation: {fs:?}"
        );
        assert!(
            client.queue_depths().iter().all(|(_, d)| *d == 0),
            "per-peer queues must be empty at rest"
        );
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn fetch_all_error_names_the_failing_segment() {
        let server = server_with_records(100, 1);
        let client = NetMergerClient::new();
        let segs = [
            SegmentRef {
                addr: server.addr(),
                mof: 0,
                reducer: 0,
            },
            SegmentRef {
                addr: server.addr(),
                mof: 99,
                reducer: 5,
            },
        ];
        let err = client.fetch_all(&segs).unwrap_err();
        match &err {
            TransportError::Segment {
                mof,
                reducer,
                peer,
                source,
            } => {
                assert_eq!((*mof, *reducer), (99, 5));
                assert_eq!(peer, &server.addr().to_string());
                assert!(matches!(source.as_ref(), TransportError::NotFound { .. }));
            }
            other => panic!("expected segment context, got {other}"),
        }
        assert!(!err.is_retryable());
        server.shutdown();
    }

    #[test]
    fn balanced_order_round_robins_addresses() {
        let a: SocketAddr = "127.0.0.1:7000".parse().unwrap();
        let b: SocketAddr = "127.0.0.1:7001".parse().unwrap();
        let seg = |addr, mof| SegmentRef {
            addr,
            mof,
            reducer: 0,
        };
        // Input clusters by address; injection must interleave them.
        let segs = [seg(a, 0), seg(a, 1), seg(a, 2), seg(b, 3), seg(b, 4)];
        assert_eq!(balanced_order(&segs), vec![0, 3, 1, 4, 2]);
        assert_eq!(balanced_order(&[]), Vec::<usize>::new());
    }

    #[test]
    fn missing_segment_is_an_error() {
        let server = server_with_records(10, 1);
        let client = NetMergerClient::new();
        let err = client
            .fetch_segment(SegmentRef {
                addr: server.addr(),
                mof: 9,
                reducer: 0,
            })
            .unwrap_err();
        assert!(matches!(err, TransportError::NotFound { .. }), "{err}");
        assert!(!err.is_retryable());
        server.shutdown();
    }

    #[test]
    fn dead_supplier_exhausts_retries_with_connect_errors() {
        // Bind then drop a listener so the port is closed but was
        // recently valid.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = NetMergerClient::with_client_config(ClientConfig {
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                jitter_frac: 0.0,
            },
            connect_timeout: Duration::from_millis(200),
            ..ClientConfig::default()
        });
        let err = client
            .fetch_segment(SegmentRef {
                addr,
                mof: 0,
                reducer: 0,
            })
            .unwrap_err();
        assert!(
            matches!(err, TransportError::RetriesExhausted { attempts: 3, .. }),
            "{err}"
        );
        let fs = client.fetch_stats();
        assert_eq!(fs.retries, 2);
        assert_eq!(fs.exhausted, 1);
        assert!(fs.connect_failures >= 3);
    }

    #[test]
    fn dead_supplier_fails_pipelined_ops_with_context() {
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = NetMergerClient::with_client_config(ClientConfig {
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                jitter_frac: 0.0,
            },
            connect_timeout: Duration::from_millis(200),
            ..ClientConfig::default()
        });
        let err = client
            .fetch_all(&[SegmentRef {
                addr,
                mof: 4,
                reducer: 2,
            }])
            .unwrap_err();
        match &err {
            TransportError::Segment { mof, source, .. } => {
                assert_eq!(*mof, 4);
                assert!(
                    matches!(
                        source.as_ref(),
                        TransportError::RetriesExhausted { attempts: 3, .. }
                    ),
                    "{source}"
                );
            }
            other => panic!("expected segment context, got {other}"),
        }
        let fs = client.fetch_stats();
        assert_eq!(fs.retries, 2, "{fs:?}");
        assert_eq!(fs.exhausted, 1, "{fs:?}");
    }

    #[test]
    fn injected_refusals_are_retried_transparently() {
        let server = server_with_records(200, 1);
        let plan = FaultPlan::builder(42)
            .force(
                Hook::ClientConnect,
                0,
                crate::faults::FaultKind::RefuseConnect,
            )
            .build();
        let client = NetMergerClient::with_client_config(ClientConfig {
            retry: RetryPolicy {
                max_retries: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                jitter_frac: 0.0,
            },
            faults: Some(Arc::clone(&plan)),
            ..ClientConfig::default()
        });
        let seg = client
            .fetch_segment(SegmentRef {
                addr: server.addr(),
                mof: 0,
                reducer: 0,
            })
            .unwrap();
        assert!(!seg.is_empty());
        let fs = client.fetch_stats();
        assert!(fs.retries >= 1);
        assert!(fs.connect_failures >= 1);
        assert_eq!(plan.stats().refusals, 1);
        server.shutdown();
    }

    #[test]
    fn levitated_merge_matches_materializing_merge() {
        let servers: Vec<MofSupplierServer> = (0..3).map(|_| server_with_records(400, 1)).collect();
        let segs: Vec<SegmentRef> = servers
            .iter()
            .map(|s| SegmentRef {
                addr: s.addr(),
                mof: 0,
                reducer: 0,
            })
            .collect();
        // Small buffers so segments need many on-demand refills.
        let client = NetMergerClient::with_config(2 << 10, 512);
        let levitated = client.levitated_merge(&segs).unwrap();
        let materialized = client.shuffle_and_merge(&segs).unwrap();
        assert_eq!(levitated, materialized);
        assert!(is_sorted(&levitated));
        assert_eq!(levitated.len(), 1200);
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn levitated_stream_fetches_on_demand() {
        let server = server_with_records(2000, 1);
        let client = NetMergerClient::with_config(4 << 10, 512);
        let seg = SegmentRef {
            addr: server.addr(),
            mof: 0,
            reducer: 0,
        };
        let mut stream = NetworkSegmentStream::new(&client, seg);
        // Pulling one record must receive only the first window (the
        // second is at most in flight), not the whole multi-chunk
        // segment.
        let first = stream.next_record().unwrap().unwrap();
        assert!(!first.0.is_empty());
        assert_eq!(stream.offset(), 4 << 10, "exactly one buffer received");
        server.shutdown();
    }

    #[test]
    fn v3_pins_after_first_response_and_every_chunk_verifies() {
        let server = server_with_records(1000, 1);
        let trace = jbs_obs::Trace::recording(1 << 14);
        let client = NetMergerClient::with_client_config(ClientConfig {
            buffer_bytes: 4 << 10,
            trace: trace.clone(),
            ..ClientConfig::default()
        });
        let seg = SegmentRef {
            addr: server.addr(),
            mof: 0,
            reducer: 0,
        };
        let bytes = client.fetch_segment(seg).unwrap();
        assert!(!bytes.is_empty());
        assert_eq!(
            lock(&client.shared.versions.versions).get(&server.addr()),
            Some(&PeerVersion::V3),
            "peer pinned v3 after its first v3 response"
        );
        // Every received chunk passed verification before admission.
        let verifies = trace.query().count("integrity.verify");
        assert!(verifies >= 2, "per-chunk verification ran: {verifies}");
        assert_eq!(client.fetch_stats().corrupt_refetches, 0);
        server.shutdown();
    }

    #[test]
    fn checksum_disabled_stays_on_v2() {
        let server = server_with_records(100, 1);
        let client = NetMergerClient::with_client_config(ClientConfig {
            checksum: false,
            ..ClientConfig::default()
        });
        let seg = SegmentRef {
            addr: server.addr(),
            mof: 0,
            reducer: 0,
        };
        client.fetch_segment(seg).unwrap();
        assert_eq!(
            client.shared.versions.version_for(server.addr()),
            WireVersion::V2
        );
        server.shutdown();
    }

    #[test]
    fn corrupted_payload_is_refetched_with_bypass() {
        let server_plan = FaultPlan::builder(8)
            .force(
                Hook::ServerPayload,
                0,
                crate::faults::FaultKind::CorruptPayload,
            )
            .build();
        let mut store = MofStore::temp().unwrap();
        let records: Vec<Record> = (0..1500)
            .map(|i| (format!("key-{i:06}").into_bytes(), vec![i as u8; 20]))
            .collect();
        store.write_mof(0, records, 1, |_| 0).unwrap();
        let server = crate::server::MofSupplierServer::start_with_options(
            store,
            crate::server::ServerOptions {
                buffer_bytes: 4 << 10,
                faults: Some(Arc::clone(&server_plan)),
                ..crate::server::ServerOptions::default()
            },
        )
        .unwrap();
        let client = NetMergerClient::with_client_config(ClientConfig {
            buffer_bytes: 4 << 10,
            ..ClientConfig::default()
        });
        let seg = SegmentRef {
            addr: server.addr(),
            mof: 0,
            reducer: 0,
        };
        let first = client.fetch_segment(seg).unwrap();
        let clean = client.fetch_segment(seg).unwrap();
        assert_eq!(first, clean, "corruption never reached the caller");
        let fs = client.fetch_stats();
        assert_eq!(fs.corrupt_refetches, 1, "{fs:?}");
        assert_eq!(server_plan.stats().payload_corruptions, 1);
        assert_eq!(
            server.stats_snapshot().bypass_reads,
            1,
            "the re-fetch carried the bypass flag"
        );
        server.shutdown();
    }

    #[test]
    fn busy_pushback_is_honored_not_fatal() {
        let plan = FaultPlan::builder(9)
            .force(Hook::ServerAdmission, 0, crate::faults::FaultKind::Busy)
            .build();
        let mut store = MofStore::temp().unwrap();
        let records: Vec<Record> = (0..200)
            .map(|i| (format!("k{i:04}").into_bytes(), vec![3; 16]))
            .collect();
        store.write_mof(0, records, 1, |_| 0).unwrap();
        let server = crate::server::MofSupplierServer::start_with_options(
            store,
            crate::server::ServerOptions {
                faults: Some(Arc::clone(&plan)),
                busy_retry_hint: Duration::from_millis(5),
                ..crate::server::ServerOptions::default()
            },
        )
        .unwrap();
        let client = NetMergerClient::new();
        let seg = SegmentRef {
            addr: server.addr(),
            mof: 0,
            reducer: 0,
        };
        let bytes = client.fetch_segment(seg).unwrap();
        assert!(!bytes.is_empty());
        let fs = client.fetch_stats();
        assert_eq!(fs.busy_backoffs, 1, "{fs:?}");
        assert_eq!(server.stats_snapshot().busy_rejections, 1);
        server.shutdown();
    }

    #[test]
    fn boundary_truncation_lie_recovers_via_refetch() {
        // One clean-EOF lie: the accounting notices the shortfall and a
        // bypass re-fetch makes the segment whole.
        let plan = FaultPlan::builder(10)
            .force(Hook::ServerPayload, 0, crate::faults::FaultKind::CleanEof)
            .build();
        let mut store = MofStore::temp().unwrap();
        let records: Vec<Record> = (0..800)
            .map(|i| (format!("k{i:05}").into_bytes(), vec![i as u8; 24]))
            .collect();
        store.write_mof(0, records, 1, |_| 0).unwrap();
        let server = crate::server::MofSupplierServer::start_with_options(
            store,
            crate::server::ServerOptions {
                buffer_bytes: 4 << 10,
                faults: Some(Arc::clone(&plan)),
                ..crate::server::ServerOptions::default()
            },
        )
        .unwrap();
        let client = NetMergerClient::with_client_config(ClientConfig {
            buffer_bytes: 4 << 10,
            ..ClientConfig::default()
        });
        let seg = SegmentRef {
            addr: server.addr(),
            mof: 0,
            reducer: 0,
        };
        let lied = client.fetch_segment(seg).unwrap();
        let clean = client.fetch_segment(seg).unwrap();
        assert_eq!(lied, clean, "the lie was detected and repaired");
        assert!(client.fetch_stats().corrupt_refetches >= 1);
        assert_eq!(plan.stats().clean_eof_lies, 1);
        server.shutdown();
    }

    #[test]
    fn persistent_truncation_surfaces_typed_error() {
        // The lie repeats past the integrity budget: the caller gets a
        // typed Truncated error, not a silently short segment. (Under
        // v2 this exact failure is invisible — the documented blindness
        // the v3 seg_len accounting exists to close.)
        let plan = FaultPlan::builder(11)
            .force(Hook::ServerPayload, 0, crate::faults::FaultKind::CleanEof)
            .force(Hook::ServerPayload, 1, crate::faults::FaultKind::CleanEof)
            .force(Hook::ServerPayload, 2, crate::faults::FaultKind::CleanEof)
            .build();
        let mut store = MofStore::temp().unwrap();
        let records: Vec<Record> = (0..200)
            .map(|i| (format!("k{i:04}").into_bytes(), vec![7; 16]))
            .collect();
        store.write_mof(0, records, 1, |_| 0).unwrap();
        let server = crate::server::MofSupplierServer::start_with_options(
            store,
            crate::server::ServerOptions {
                faults: Some(Arc::clone(&plan)),
                ..crate::server::ServerOptions::default()
            },
        )
        .unwrap();
        let client = NetMergerClient::new();
        let err = client
            .fetch_segment(SegmentRef {
                addr: server.addr(),
                mof: 0,
                reducer: 0,
            })
            .unwrap_err();
        match err {
            TransportError::Truncated { got, expected } => {
                assert_eq!(got, 0);
                assert!(expected > 0);
            }
            other => panic!("expected Truncated, got {other}"),
        }
        assert_eq!(client.fetch_stats().corrupt_refetches, 2, "budget spent");
        server.shutdown();
    }

    #[test]
    fn two_failures_aggregate_into_partial_report() {
        let server = server_with_records(100, 1);
        let client = NetMergerClient::new();
        let segs = [
            SegmentRef {
                addr: server.addr(),
                mof: 0,
                reducer: 0,
            },
            SegmentRef {
                addr: server.addr(),
                mof: 98,
                reducer: 1,
            },
            SegmentRef {
                addr: server.addr(),
                mof: 99,
                reducer: 2,
            },
        ];
        let err = client.fetch_all(&segs).unwrap_err();
        match &err {
            TransportError::Partial { failures } => {
                assert_eq!(failures.len(), 2);
                for f in failures {
                    assert!(matches!(f, TransportError::Segment { .. }), "{f}");
                }
            }
            other => panic!("expected partial report, got {other}"),
        }
        server.shutdown();
    }

    #[test]
    fn tiny_connection_cache_evicts_lru() {
        let servers: Vec<MofSupplierServer> = (0..3).map(|_| server_with_records(50, 1)).collect();
        let client = NetMergerClient::with_config(128 << 10, 1);
        for s in &servers {
            client
                .fetch_segment(SegmentRef {
                    addr: s.addr(),
                    mof: 0,
                    reducer: 0,
                })
                .unwrap();
        }
        // Revisit the first supplier: its connection was evicted.
        client
            .fetch_segment(SegmentRef {
                addr: servers[0].addr(),
                mof: 0,
                reducer: 0,
            })
            .unwrap();
        let s = client.stats();
        assert_eq!(s.connections_established, 4);
        for s in servers {
            s.shutdown();
        }
    }
}
