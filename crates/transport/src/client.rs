//! The NetMerger client: consolidated fetching plus network-levitated
//! merge, over real sockets.
//!
//! One client serves all reducers of a "node". Two fetch paths coexist:
//!
//! * the **serial path** (`fetch_segment`, `fetch_chunk`) is strict
//!   lockstep — one request, wait, one response — over connections
//!   cached per supplier address and torn down LRU beyond a cap
//!   (Sec. IV-A's 512-connection policy, configurable here);
//! * the **pipelined path** (`fetch_all`, `levitated_merge`) hands ops
//!   to the background [`crate::sched::FetchScheduler`]: per-supplier
//!   worker threads keep a bounded window of requests in flight per
//!   connection, injected round-robin across segments, so the
//!   supplier's disk prefetch for chunk `k+1` overlaps the network
//!   transmission of chunk `k` end-to-end. Completions stream back over
//!   channels and are consumed as they land.
//!
//! Every fetch on either path is covered by the recovery machinery:
//! per-request read/write deadlines, a [`RetryPolicy`] with
//! deterministic backoff jitter, eviction + re-dial of failed
//! connections, and — because retry operates per chunk — **resume at
//! the received offset**: a segment interrupted at byte `o` continues
//! from `o` on the fresh connection instead of refetching `[0, o)`.
//! [`FetchStats`] counts all of it, including the pipeline gauges
//! (queue depth, window occupancy, speculation discards).

use crate::error::{Result, TransportError};
use crate::faults::{self, FaultAction, FaultPlan, Hook};
use crate::retry::RetryPolicy;
use crate::sched::{FetchDone, FetchOp, FetchScheduler};
use crate::slot::{SlotEvent, SlotMap};
use crate::stats::{FetchStats, FetchStatsSnapshot};
use crate::sync::{lock, Mutex};
use crate::wire::{FetchRequest, FetchResponse, Status};
use jbs_des::DetRng;
use jbs_mapred::levitate::{RecordParser, RecordStream, StreamingMerge};
use jbs_mapred::merge::{KWayMerge, Record};
use jbs_mapred::mof::SegmentReader;
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// A fetch target: which segment on which supplier.
#[derive(Debug, Clone, Copy)]
pub struct SegmentRef {
    /// Supplier address.
    pub addr: SocketAddr,
    /// MOF id on that supplier.
    pub mof: u64,
    /// Reducer (partition) number.
    pub reducer: u32,
}

/// Client statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientStats {
    /// Connections established.
    pub connections_established: u64,
    /// Fetches that reused a cached connection.
    pub connections_reused: u64,
    /// Connections torn down by the LRU cap.
    pub connections_evicted: u64,
    /// Payload bytes fetched.
    pub bytes_fetched: u64,
}

/// Tunables for the NetMerger client.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Transport buffer (chunk) size; the paper uses 128 KB.
    pub buffer_bytes: u64,
    /// Connection-cache cap; the paper uses 512.
    pub max_connections: usize,
    /// Pipelining depth: requests kept in flight per supplier
    /// connection, and ops admitted concurrently per supplier worker.
    /// `1` degenerates to lockstep.
    pub window: usize,
    /// Retry budget and backoff shape for transient failures.
    pub retry: RetryPolicy,
    /// Deadline for establishing a connection.
    pub connect_timeout: Duration,
    /// Per-request read deadline.
    pub read_timeout: Duration,
    /// Per-request write deadline.
    pub write_timeout: Duration,
    /// Seed for the backoff-jitter rng streams.
    pub retry_seed: u64,
    /// Optional fault-injection plan (tests only; `None` in production).
    pub faults: Option<Arc<FaultPlan>>,
    /// Structured tracing sink; [`jbs_obs::Trace::disabled`] (the
    /// default) is a single branch per instrumentation point.
    pub trace: jbs_obs::Trace,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            buffer_bytes: 128 << 10,
            max_connections: 512,
            window: 8,
            retry: RetryPolicy::default(),
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry_seed: 0x4A42_5331,
            faults: None,
            trace: jbs_obs::Trace::disabled(),
        }
    }
}

pub(crate) struct Conn {
    pub(crate) reader: BufReader<TcpStream>,
    pub(crate) writer: TcpStream,
}

/// State shared between the client facade and the scheduler's worker
/// threads.
pub(crate) struct ClientShared {
    pub(crate) stats: Mutex<ClientStats>,
    pub(crate) fetch_stats: FetchStats,
    pub(crate) config: ClientConfig,
}

/// Dial a supplier with the configured deadlines (and fault hooks).
/// Used by both the serial path's connection cache and the scheduler's
/// per-peer workers.
pub(crate) fn dial(addr: SocketAddr, config: &ClientConfig) -> Result<Conn> {
    match faults::decide(&config.faults, Hook::ClientConnect) {
        FaultAction::RefuseConnect => {
            return Err(TransportError::Connect {
                target: addr.to_string(),
                source: io::Error::new(io::ErrorKind::ConnectionRefused, "injected refusal"),
            });
        }
        FaultAction::Stall(d) => std::thread::sleep(d),
        _ => {}
    }
    let stream = TcpStream::connect_timeout(&addr, config.connect_timeout).map_err(|e| {
        TransportError::Connect {
            target: addr.to_string(),
            source: e,
        }
    })?;
    let setup = |e| TransportError::Io {
        during: "socket setup",
        source: e,
    };
    stream.set_nodelay(true).map_err(setup)?;
    stream
        .set_read_timeout(Some(config.read_timeout))
        .map_err(setup)?;
    stream
        .set_write_timeout(Some(config.write_timeout))
        .map_err(setup)?;
    let reader = BufReader::new(stream.try_clone().map_err(setup)?);
    Ok(Conn {
        reader,
        writer: stream,
    })
}

/// Bump the per-kind failure counter for a failed attempt.
pub(crate) fn record_failure(fetch: &FetchStats, e: &TransportError) {
    match e {
        TransportError::Timeout { .. } => fetch.record_timeout(),
        TransportError::Reset { .. } => fetch.record_reset(),
        TransportError::Corrupt { .. } => fetch.record_corrupt_frame(),
        TransportError::Connect { .. } => fetch.record_connect_failure(),
        _ => {}
    }
}

/// Round-robin the indices of `segs` across supplier addresses (in
/// order of first appearance): the paper's balanced injection. Ops
/// spread evenly into every peer queue from the start, so all supplier
/// pipelines spin up together instead of being loaded in input order.
fn balanced_order(segs: &[SegmentRef]) -> Vec<usize> {
    let mut groups: Vec<(SocketAddr, VecDeque<usize>)> = Vec::new();
    for (i, s) in segs.iter().enumerate() {
        match groups.iter_mut().find(|(a, _)| *a == s.addr) {
            Some((_, q)) => q.push_back(i),
            None => groups.push((s.addr, VecDeque::from([i]))),
        }
    }
    let mut order = Vec::with_capacity(segs.len());
    let mut more = true;
    while more {
        more = false;
        for (_, q) in &mut groups {
            if let Some(i) = q.pop_front() {
                order.push(i);
                more = true;
            }
        }
    }
    order
}

/// The NetMerger. Connection caching for the serial path —
/// consolidation per supplier, LRU eviction beyond the cap — lives in
/// [`SlotMap`], where the `cfg(loom)` models exercise it; the pipelined
/// path's per-supplier workers live in [`FetchScheduler`].
pub struct NetMergerClient {
    conns: SlotMap<SocketAddr, Conn>,
    backoff_rng: Mutex<DetRng>,
    shared: Arc<ClientShared>,
    sched: FetchScheduler,
}

impl NetMergerClient {
    /// A client with the paper's defaults: 128 KB transport buffers and a
    /// 512-connection cache.
    pub fn new() -> Self {
        Self::with_client_config(ClientConfig::default())
    }

    /// A client with explicit buffer size and connection cap, defaults
    /// elsewhere.
    pub fn with_config(buffer_bytes: u64, max_connections: usize) -> Self {
        Self::with_client_config(ClientConfig {
            buffer_bytes,
            max_connections,
            ..ClientConfig::default()
        })
    }

    /// A client with full control of retry, timeouts, window, and faults.
    pub fn with_client_config(config: ClientConfig) -> Self {
        let shared = Arc::new(ClientShared {
            stats: Mutex::new(ClientStats::default()),
            fetch_stats: FetchStats::new(),
            config: ClientConfig {
                buffer_bytes: config.buffer_bytes.max(1),
                window: config.window.max(1),
                ..config
            },
        });
        NetMergerClient {
            conns: SlotMap::new(shared.config.max_connections),
            backoff_rng: Mutex::new(DetRng::new(shared.config.retry_seed)),
            sched: FetchScheduler::new(Arc::clone(&shared)),
            shared,
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ClientStats {
        *lock(&self.shared.stats)
    }

    /// Recovery counters and pipeline gauges: retries, reconnects,
    /// timeouts, resumed bytes, queue depth, window occupancy.
    pub fn fetch_stats(&self) -> FetchStatsSnapshot {
        self.shared.fetch_stats.snapshot()
    }

    /// Per-supplier scheduler queue depths (ops submitted but not yet
    /// picked up by that supplier's worker). Quiescent clients read all
    /// zeros.
    pub fn queue_depths(&self) -> Vec<(SocketAddr, usize)> {
        self.sched.queue_depths()
    }

    fn with_conn<T>(&self, addr: SocketAddr, f: impl FnOnce(&mut Conn) -> Result<T>) -> Result<T> {
        // The event callback runs at most under the slot's `conn` lock
        // and takes only `stats`, which the documented lock order places
        // after `conn`.
        self.conns.with_conn(
            addr,
            || dial(addr, &self.shared.config),
            |ev| match ev {
                SlotEvent::Evicted => lock(&self.shared.stats).connections_evicted += 1,
                SlotEvent::Established { reconnect } => {
                    lock(&self.shared.stats).connections_established += 1;
                    if reconnect {
                        self.shared.fetch_stats.record_reconnect();
                    }
                }
                SlotEvent::Reused => lock(&self.shared.stats).connections_reused += 1,
            },
            f,
        )
    }

    /// One request/response exchange on a (possibly reused) cached
    /// connection — the serial path. No retry here; this is the unit the
    /// retry loop wraps. Serial requests carry id 0 and expect it back:
    /// the exchange is lockstep, so any other echo is a desynchronized
    /// stream.
    fn try_fetch_chunk(&self, seg: SegmentRef, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.with_conn(seg.addr, |conn| {
            FetchRequest {
                id: 0,
                mof: seg.mof,
                reducer: seg.reducer,
                offset,
                len,
            }
            .write_to(&mut conn.writer)
            .map_err(|e| TransportError::from_io("write request", e))?;
            match faults::decide(&self.shared.config.faults, Hook::ClientReadResponse) {
                FaultAction::Reset => {
                    return Err(TransportError::Reset {
                        during: "read response (injected)",
                    })
                }
                FaultAction::Stall(d) => std::thread::sleep(d),
                _ => {}
            }
            let resp = FetchResponse::read_from(&mut conn.reader)
                .map_err(|e| TransportError::from_io("read response", e))?;
            if resp.id != 0 {
                return Err(TransportError::Corrupt {
                    detail: format!("serial exchange echoed pipelined id {}", resp.id),
                });
            }
            match resp.status {
                Status::Ok => {
                    lock(&self.shared.stats).bytes_fetched += resp.payload.len() as u64;
                    Ok(resp.payload)
                }
                Status::NotFound => Err(TransportError::NotFound {
                    what: format!("mof {} reducer {}", seg.mof, seg.reducer),
                }),
                Status::BadRequest => Err(TransportError::BadRequest {
                    detail: format!(
                        "supplier rejected fetch of mof {} reducer {}",
                        seg.mof, seg.reducer
                    ),
                }),
            }
        })
    }

    /// Fetch one chunk under the retry policy. `offset` doubles as the
    /// resume point: a retried chunk re-requests exactly `[offset, ...)`,
    /// so bytes before `offset` are never refetched.
    fn fetch_chunk_with_retry(&self, seg: SegmentRef, offset: u64, len: u64) -> Result<Vec<u8>> {
        let mut attempt = 0u32;
        loop {
            match self.try_fetch_chunk(seg, offset, len) {
                Ok(payload) => return Ok(payload),
                Err(e) if e.is_retryable() && attempt < self.shared.config.retry.max_retries => {
                    attempt += 1;
                    record_failure(&self.shared.fetch_stats, &e);
                    self.shared.fetch_stats.record_retry();
                    if attempt == 1 && offset > 0 {
                        // The segment resumes mid-stream: everything
                        // before `offset` survives this recovery.
                        self.shared.fetch_stats.record_resumed_bytes(offset);
                    }
                    let delay = {
                        let mut rng = lock(&self.backoff_rng);
                        self.shared.config.retry.backoff(attempt, &mut rng)
                    };
                    let _backoff = self.shared.config.trace.span(
                        "retry.backoff",
                        jbs_obs::Entity::peer(u64::from(seg.addr.port())),
                        u64::from(attempt),
                        delay.as_nanos() as u64,
                    );
                    std::thread::sleep(delay);
                }
                Err(e) if e.is_retryable() => {
                    record_failure(&self.shared.fetch_stats, &e);
                    self.shared.fetch_stats.record_exhausted();
                    return Err(TransportError::RetriesExhausted {
                        attempts: attempt + 1,
                        last: Box::new(e),
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fetch one whole segment in transport-buffer-sized chunks, resuming
    /// at the received offset across transient failures. Serial: each
    /// chunk waits for the previous one — the baseline the pipelined
    /// path is measured against.
    pub fn fetch_segment(&self, seg: SegmentRef) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut offset = 0u64;
        loop {
            let chunk =
                self.fetch_chunk_with_retry(seg, offset, self.shared.config.buffer_bytes)?;
            if chunk.is_empty() {
                return Ok(out);
            }
            offset += chunk.len() as u64;
            out.extend_from_slice(&chunk);
        }
    }

    /// Fetch every segment of a reducer through the pipelined scheduler
    /// and return the raw segment byte vectors in input order.
    ///
    /// Ops inject round-robin across supplier addresses (balanced
    /// injection); each supplier's worker keeps up to
    /// [`ClientConfig::window`] requests on the wire, so supplier disk
    /// prefetch and network transmission overlap across the whole
    /// reducer. Failures carry [`TransportError::Segment`] context
    /// naming the exact (MOF, reducer, supplier) that failed; the
    /// lowest-input-index failure is returned.
    pub fn fetch_all(&self, segs: &[SegmentRef]) -> Result<Vec<Vec<u8>>> {
        if segs.is_empty() {
            return Ok(Vec::new());
        }
        let (tx, rx) = mpsc::channel();
        for &i in &balanced_order(segs) {
            let Some(&seg) = segs.get(i) else { continue };
            self.sched.submit(FetchOp {
                token: i as u64,
                seg,
                offset: 0,
                limit: 0,
                done: tx.clone(),
            });
        }
        // Completions close the channel once every op has sent exactly
        // one result and dropped its sender clone.
        drop(tx);
        let mut out: Vec<Option<Vec<u8>>> = segs.iter().map(|_| None).collect();
        let mut first_err: Option<(u64, TransportError)> = None;
        for done in rx {
            match done.result {
                Ok(bytes) => {
                    if let Some(slot) = out.get_mut(done.token as usize) {
                        *slot = Some(bytes);
                    }
                }
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(t, _)| done.token < *t) {
                        first_err = Some((done.token, e));
                    }
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        let mut res = Vec::with_capacity(out.len());
        for slot in out {
            match slot {
                Some(bytes) => res.push(bytes),
                None => {
                    return Err(TransportError::Io {
                        during: "fetch_all",
                        source: io::Error::other("fetch op vanished without completing"),
                    })
                }
            }
        }
        Ok(res)
    }

    /// Serial reference for [`Self::fetch_all`]: one thread per segment,
    /// each fetching lockstep over the cached connections. Kept as the
    /// measured baseline (see `crates/bench`) and as a fallback.
    pub fn fetch_all_serial(&self, segs: &[SegmentRef]) -> Result<Vec<Vec<u8>>> {
        let results: Vec<Result<Vec<u8>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = segs
                .iter()
                .map(|&seg| scope.spawn(move || self.fetch_segment(seg)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => Err(TransportError::Io {
                        during: "fetch worker",
                        source: io::Error::other("fetch thread panicked"),
                    }),
                })
                .collect()
        });
        results.into_iter().collect()
    }

    /// Fetch one chunk of a segment (a single serial request/response
    /// exchange, retried on transient failure). An empty payload means
    /// the segment is exhausted.
    pub fn fetch_chunk(&self, seg: SegmentRef, offset: u64) -> Result<Vec<u8>> {
        self.fetch_chunk_with_retry(seg, offset, self.shared.config.buffer_bytes)
    }

    /// **The network-levitated merge over real sockets**: merge a
    /// reducer's segments while their bodies stay on the remote suppliers.
    /// Each segment holds its current transport buffer in memory and
    /// keeps the next one in flight through the pipelined scheduler
    /// (double buffering), so the merge consumes chunk `k` while chunk
    /// `k+1` streams in. Peak client memory stays O(segments × buffer),
    /// independent of segment sizes.
    pub fn levitated_merge(&self, segs: &[SegmentRef]) -> Result<Vec<Record>> {
        let streams: Vec<NetworkSegmentStream> = segs
            .iter()
            .map(|&seg| NetworkSegmentStream::new(self, seg))
            .collect();
        StreamingMerge::new(streams)
            .with_trace(self.shared.config.trace.clone())
            .collect_all()
            .map_err(|e| TransportError::from_io("levitated merge", e))
    }

    /// Materializing variant: fetch all of a reducer's segments through
    /// the pipelined scheduler and merge them into one key-sorted record
    /// stream.
    pub fn shuffle_and_merge(&self, segs: &[SegmentRef]) -> Result<Vec<Record>> {
        let raw = self.fetch_all(segs)?;
        let mut runs: Vec<Vec<Record>> = Vec::with_capacity(raw.len());
        for seg in &raw {
            let mut run = Vec::new();
            for rec in SegmentReader::new(seg) {
                let (k, v) = rec.map_err(|e| TransportError::Corrupt {
                    detail: format!("segment record: {e}"),
                })?;
                run.push((k.to_vec(), v.to_vec()));
            }
            runs.push(run);
        }
        let merge = KWayMerge::new(runs.into_iter().map(|r| r.into_iter()).collect());
        Ok(merge.collect())
    }
}

impl Default for NetMergerClient {
    fn default() -> Self {
        Self::new()
    }
}

/// One segment's levitation window: the current transport buffer, parsed
/// incrementally, with the next buffer already in flight through the
/// scheduler (double buffering) while this one is consumed.
pub struct NetworkSegmentStream<'a> {
    client: &'a NetMergerClient,
    seg: SegmentRef,
    /// Absolute offset up to which bytes have been received and parsed.
    offset: u64,
    parser: RecordParser,
    exhausted: bool,
    done_tx: mpsc::Sender<FetchDone>,
    done_rx: mpsc::Receiver<FetchDone>,
    /// Offset of the chunk currently in flight, if any.
    pending: Option<u64>,
    next_token: u64,
}

impl<'a> NetworkSegmentStream<'a> {
    /// A lazily-fetched stream over `seg`.
    pub fn new(client: &'a NetMergerClient, seg: SegmentRef) -> Self {
        let (done_tx, done_rx) = mpsc::channel();
        NetworkSegmentStream {
            client,
            seg,
            offset: 0,
            parser: RecordParser::new(),
            exhausted: false,
            done_tx,
            done_rx,
            pending: None,
            next_token: 0,
        }
    }

    /// Bytes received from this segment so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    fn request(&mut self, offset: u64) {
        let token = self.next_token;
        self.next_token += 1;
        self.client.sched.submit(FetchOp {
            token,
            seg: self.seg,
            offset,
            limit: self.client.shared.config.buffer_bytes,
            done: self.done_tx.clone(),
        });
        self.pending = Some(offset);
    }

    /// The next chunk at `self.offset` (empty at segment end), keeping
    /// one chunk speculatively in flight whenever the previous one came
    /// back full-sized.
    fn next_chunk(&mut self) -> io::Result<Vec<u8>> {
        loop {
            if self.pending.is_none() {
                self.request(self.offset);
            }
            let done = self.done_rx.recv().map_err(|_| {
                io::Error::new(io::ErrorKind::Interrupted, "fetch scheduler disconnected")
            })?;
            let req_off = self.pending.take().unwrap_or(self.offset);
            let payload = done.result.map_err(io::Error::from)?;
            if req_off != self.offset {
                // A speculative chunk aimed past a short read; refetch
                // from the corrected offset.
                continue;
            }
            if !payload.is_empty() {
                self.offset += payload.len() as u64;
                if payload.len() as u64 == self.client.shared.config.buffer_bytes {
                    // Full chunk: speculate the next one so it rides the
                    // wire while the merge consumes this one.
                    self.request(self.offset);
                }
            }
            return Ok(payload);
        }
    }
}

impl RecordStream for NetworkSegmentStream<'_> {
    fn next_record(&mut self) -> io::Result<Option<Record>> {
        loop {
            if let Some(rec) = self.parser.pop()? {
                return Ok(Some(rec));
            }
            if self.parser.finished() {
                return Ok(None);
            }
            if self.exhausted {
                if self.parser.pending_bytes() == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "segment ended mid-record",
                ));
            }
            let chunk = self.next_chunk()?;
            if chunk.is_empty() {
                self.exhausted = true;
            } else {
                self.parser.push(&chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::MofSupplierServer;
    use crate::store::MofStore;
    use jbs_mapred::merge::is_sorted;

    /// Wait for the scheduler's gauges to drain: completions hand off
    /// before workers finish reading trailing speculative responses, so
    /// gauge assertions poll briefly instead of racing the drain.
    fn quiesce(client: &NetMergerClient) -> FetchStatsSnapshot {
        for _ in 0..400 {
            let fs = client.fetch_stats();
            if fs.window_inflight == 0 && fs.queued_ops == 0 {
                return fs;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        client.fetch_stats()
    }

    fn server_with_records(n: usize, partitions: usize) -> MofSupplierServer {
        let mut store = MofStore::temp().unwrap();
        let records: Vec<Record> = (0..n)
            .map(|i| {
                (
                    format!("key-{:06}", (i * 7919) % n).into_bytes(),
                    vec![i as u8; 20],
                )
            })
            .collect();
        store
            .write_mof(0, records, partitions, |k| {
                k.iter().map(|&b| b as usize).sum::<usize>() % partitions
            })
            .unwrap();
        MofSupplierServer::start(store).unwrap()
    }

    #[test]
    fn fetch_segment_roundtrips_bytes() {
        let server = server_with_records(300, 2);
        let client = NetMergerClient::new();
        let seg = client
            .fetch_segment(SegmentRef {
                addr: server.addr(),
                mof: 0,
                reducer: 0,
            })
            .unwrap();
        assert!(!seg.is_empty());
        assert!(client.stats().bytes_fetched > 0);
        assert_eq!(client.stats().connections_established, 1);
        server.shutdown();
    }

    #[test]
    fn connection_reuse_across_fetches() {
        let server = server_with_records(100, 2);
        let client = NetMergerClient::new();
        for reducer in [0u32, 1, 0, 1] {
            client
                .fetch_segment(SegmentRef {
                    addr: server.addr(),
                    mof: 0,
                    reducer,
                })
                .unwrap();
        }
        let s = client.stats();
        assert_eq!(s.connections_established, 1, "one connection per supplier");
        // Reuse is counted per request/response exchange; four segment
        // fetches over one cached connection reuse it at least thrice.
        assert!(s.connections_reused >= 3, "{}", s.connections_reused);
        server.shutdown();
    }

    #[test]
    fn merge_produces_sorted_output() {
        let servers: Vec<MofSupplierServer> = (0..3).map(|_| server_with_records(200, 1)).collect();
        let client = NetMergerClient::new();
        let segs: Vec<SegmentRef> = servers
            .iter()
            .map(|s| SegmentRef {
                addr: s.addr(),
                mof: 0,
                reducer: 0,
            })
            .collect();
        let merged = client.shuffle_and_merge(&segs).unwrap();
        assert_eq!(merged.len(), 600);
        assert!(is_sorted(&merged));
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn pipelined_fetch_all_matches_serial() {
        let servers: Vec<MofSupplierServer> =
            (0..3).map(|_| server_with_records(1500, 2)).collect();
        let segs: Vec<SegmentRef> = servers
            .iter()
            .flat_map(|s| {
                (0..2u32).map(|reducer| SegmentRef {
                    addr: s.addr(),
                    mof: 0,
                    reducer,
                })
            })
            .collect();
        // Small buffers force many chunks per segment, so the window
        // actually pipelines.
        let client = NetMergerClient::with_client_config(ClientConfig {
            buffer_bytes: 4 << 10,
            window: 6,
            ..ClientConfig::default()
        });
        let pipelined = client.fetch_all(&segs).unwrap();
        let serial = client.fetch_all_serial(&segs).unwrap();
        assert_eq!(pipelined, serial, "pipelining must not change bytes");

        let fs = quiesce(&client);
        assert!(fs.window_peak > 1, "requests never overlapped: {fs:?}");
        assert!(fs.queue_depth_peak >= 1, "{fs:?}");
        assert_eq!(fs.window_inflight, 0, "window must drain: {fs:?}");
        assert_eq!(fs.queued_ops, 0, "queues must drain: {fs:?}");
        assert!(
            fs.spec_discards >= 1,
            "segment tails must discard stale speculation: {fs:?}"
        );
        assert!(
            client.queue_depths().iter().all(|(_, d)| *d == 0),
            "per-peer queues must be empty at rest"
        );
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn fetch_all_error_names_the_failing_segment() {
        let server = server_with_records(100, 1);
        let client = NetMergerClient::new();
        let segs = [
            SegmentRef {
                addr: server.addr(),
                mof: 0,
                reducer: 0,
            },
            SegmentRef {
                addr: server.addr(),
                mof: 99,
                reducer: 5,
            },
        ];
        let err = client.fetch_all(&segs).unwrap_err();
        match &err {
            TransportError::Segment {
                mof,
                reducer,
                peer,
                source,
            } => {
                assert_eq!((*mof, *reducer), (99, 5));
                assert_eq!(peer, &server.addr().to_string());
                assert!(matches!(source.as_ref(), TransportError::NotFound { .. }));
            }
            other => panic!("expected segment context, got {other}"),
        }
        assert!(!err.is_retryable());
        server.shutdown();
    }

    #[test]
    fn balanced_order_round_robins_addresses() {
        let a: SocketAddr = "127.0.0.1:7000".parse().unwrap();
        let b: SocketAddr = "127.0.0.1:7001".parse().unwrap();
        let seg = |addr, mof| SegmentRef {
            addr,
            mof,
            reducer: 0,
        };
        // Input clusters by address; injection must interleave them.
        let segs = [seg(a, 0), seg(a, 1), seg(a, 2), seg(b, 3), seg(b, 4)];
        assert_eq!(balanced_order(&segs), vec![0, 3, 1, 4, 2]);
        assert_eq!(balanced_order(&[]), Vec::<usize>::new());
    }

    #[test]
    fn missing_segment_is_an_error() {
        let server = server_with_records(10, 1);
        let client = NetMergerClient::new();
        let err = client
            .fetch_segment(SegmentRef {
                addr: server.addr(),
                mof: 9,
                reducer: 0,
            })
            .unwrap_err();
        assert!(matches!(err, TransportError::NotFound { .. }), "{err}");
        assert!(!err.is_retryable());
        server.shutdown();
    }

    #[test]
    fn dead_supplier_exhausts_retries_with_connect_errors() {
        // Bind then drop a listener so the port is closed but was
        // recently valid.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = NetMergerClient::with_client_config(ClientConfig {
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                jitter_frac: 0.0,
            },
            connect_timeout: Duration::from_millis(200),
            ..ClientConfig::default()
        });
        let err = client
            .fetch_segment(SegmentRef {
                addr,
                mof: 0,
                reducer: 0,
            })
            .unwrap_err();
        assert!(
            matches!(err, TransportError::RetriesExhausted { attempts: 3, .. }),
            "{err}"
        );
        let fs = client.fetch_stats();
        assert_eq!(fs.retries, 2);
        assert_eq!(fs.exhausted, 1);
        assert!(fs.connect_failures >= 3);
    }

    #[test]
    fn dead_supplier_fails_pipelined_ops_with_context() {
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = NetMergerClient::with_client_config(ClientConfig {
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                jitter_frac: 0.0,
            },
            connect_timeout: Duration::from_millis(200),
            ..ClientConfig::default()
        });
        let err = client
            .fetch_all(&[SegmentRef {
                addr,
                mof: 4,
                reducer: 2,
            }])
            .unwrap_err();
        match &err {
            TransportError::Segment { mof, source, .. } => {
                assert_eq!(*mof, 4);
                assert!(
                    matches!(
                        source.as_ref(),
                        TransportError::RetriesExhausted { attempts: 3, .. }
                    ),
                    "{source}"
                );
            }
            other => panic!("expected segment context, got {other}"),
        }
        let fs = client.fetch_stats();
        assert_eq!(fs.retries, 2, "{fs:?}");
        assert_eq!(fs.exhausted, 1, "{fs:?}");
    }

    #[test]
    fn injected_refusals_are_retried_transparently() {
        let server = server_with_records(200, 1);
        let plan = FaultPlan::builder(42)
            .force(
                Hook::ClientConnect,
                0,
                crate::faults::FaultKind::RefuseConnect,
            )
            .build();
        let client = NetMergerClient::with_client_config(ClientConfig {
            retry: RetryPolicy {
                max_retries: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                jitter_frac: 0.0,
            },
            faults: Some(Arc::clone(&plan)),
            ..ClientConfig::default()
        });
        let seg = client
            .fetch_segment(SegmentRef {
                addr: server.addr(),
                mof: 0,
                reducer: 0,
            })
            .unwrap();
        assert!(!seg.is_empty());
        let fs = client.fetch_stats();
        assert!(fs.retries >= 1);
        assert!(fs.connect_failures >= 1);
        assert_eq!(plan.stats().refusals, 1);
        server.shutdown();
    }

    #[test]
    fn levitated_merge_matches_materializing_merge() {
        let servers: Vec<MofSupplierServer> = (0..3).map(|_| server_with_records(400, 1)).collect();
        let segs: Vec<SegmentRef> = servers
            .iter()
            .map(|s| SegmentRef {
                addr: s.addr(),
                mof: 0,
                reducer: 0,
            })
            .collect();
        // Small buffers so segments need many on-demand refills.
        let client = NetMergerClient::with_config(2 << 10, 512);
        let levitated = client.levitated_merge(&segs).unwrap();
        let materialized = client.shuffle_and_merge(&segs).unwrap();
        assert_eq!(levitated, materialized);
        assert!(is_sorted(&levitated));
        assert_eq!(levitated.len(), 1200);
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn levitated_stream_fetches_on_demand() {
        let server = server_with_records(2000, 1);
        let client = NetMergerClient::with_config(4 << 10, 512);
        let seg = SegmentRef {
            addr: server.addr(),
            mof: 0,
            reducer: 0,
        };
        let mut stream = NetworkSegmentStream::new(&client, seg);
        // Pulling one record must receive only the first window (the
        // second is at most in flight), not the whole multi-chunk
        // segment.
        let first = stream.next_record().unwrap().unwrap();
        assert!(!first.0.is_empty());
        assert_eq!(stream.offset(), 4 << 10, "exactly one buffer received");
        server.shutdown();
    }

    #[test]
    fn tiny_connection_cache_evicts_lru() {
        let servers: Vec<MofSupplierServer> = (0..3).map(|_| server_with_records(50, 1)).collect();
        let client = NetMergerClient::with_config(128 << 10, 1);
        for s in &servers {
            client
                .fetch_segment(SegmentRef {
                    addr: s.addr(),
                    mof: 0,
                    reducer: 0,
                })
                .unwrap();
        }
        // Revisit the first supplier: its connection was evicted.
        client
            .fetch_segment(SegmentRef {
                addr: servers[0].addr(),
                mof: 0,
                reducer: 0,
            })
            .unwrap();
        let s = client.stats();
        assert_eq!(s.connections_established, 4);
        for s in servers {
            s.shutdown();
        }
    }
}
