//! The NetMerger client: consolidated fetching plus network-levitated
//! merge, over real sockets.
//!
//! One client serves all reducers of a "node". Connections are cached per
//! supplier address and torn down LRU beyond a cap (Sec. IV-A's
//! 512-connection policy, configurable here). Segment fetches from many
//! suppliers run concurrently, in transport-buffer-sized chunks; fetched
//! segments are k-way merged ([`jbs_mapred::merge`]) into the sorted
//! stream a reduce function consumes.
//!
//! Every fetch is covered by the recovery machinery: per-request
//! read/write deadlines, a [`RetryPolicy`] with deterministic backoff
//! jitter, eviction + re-dial of failed connections, and — because
//! retry operates per chunk — **resume at the received offset**: a
//! segment interrupted at byte `o` continues from `o` on the fresh
//! connection instead of refetching `[0, o)`. [`FetchStats`] counts all
//! of it.

use crate::error::{Result, TransportError};
use crate::faults::{self, FaultAction, FaultPlan, Hook};
use crate::retry::RetryPolicy;
use crate::slot::{SlotEvent, SlotMap};
use crate::stats::{FetchStats, FetchStatsSnapshot};
use crate::sync::{lock, Mutex};
use crate::wire::{FetchRequest, FetchResponse, Status};
use jbs_des::DetRng;
use jbs_mapred::levitate::{RecordParser, RecordStream, StreamingMerge};
use jbs_mapred::merge::{KWayMerge, Record};
use jbs_mapred::mof::SegmentReader;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A fetch target: which segment on which supplier.
#[derive(Debug, Clone, Copy)]
pub struct SegmentRef {
    /// Supplier address.
    pub addr: SocketAddr,
    /// MOF id on that supplier.
    pub mof: u64,
    /// Reducer (partition) number.
    pub reducer: u32,
}

/// Client statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientStats {
    /// Connections established.
    pub connections_established: u64,
    /// Fetches that reused a cached connection.
    pub connections_reused: u64,
    /// Connections torn down by the LRU cap.
    pub connections_evicted: u64,
    /// Payload bytes fetched.
    pub bytes_fetched: u64,
}

/// Tunables for the NetMerger client.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Transport buffer (chunk) size; the paper uses 128 KB.
    pub buffer_bytes: u64,
    /// Connection-cache cap; the paper uses 512.
    pub max_connections: usize,
    /// Retry budget and backoff shape for transient failures.
    pub retry: RetryPolicy,
    /// Deadline for establishing a connection.
    pub connect_timeout: Duration,
    /// Per-request read deadline.
    pub read_timeout: Duration,
    /// Per-request write deadline.
    pub write_timeout: Duration,
    /// Seed for the backoff-jitter rng stream.
    pub retry_seed: u64,
    /// Optional fault-injection plan (tests only; `None` in production).
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            buffer_bytes: 128 << 10,
            max_connections: 512,
            retry: RetryPolicy::default(),
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry_seed: 0x4A42_5331,
            faults: None,
        }
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// The NetMerger. Connection caching — consolidation per supplier, LRU
/// eviction beyond the cap — lives in [`SlotMap`], where the `cfg(loom)`
/// models exercise it.
pub struct NetMergerClient {
    conns: SlotMap<SocketAddr, Conn>,
    stats: Mutex<ClientStats>,
    fetch_stats: FetchStats,
    backoff_rng: Mutex<DetRng>,
    config: ClientConfig,
}

impl NetMergerClient {
    /// A client with the paper's defaults: 128 KB transport buffers and a
    /// 512-connection cache.
    pub fn new() -> Self {
        Self::with_client_config(ClientConfig::default())
    }

    /// A client with explicit buffer size and connection cap, defaults
    /// elsewhere.
    pub fn with_config(buffer_bytes: u64, max_connections: usize) -> Self {
        Self::with_client_config(ClientConfig {
            buffer_bytes,
            max_connections,
            ..ClientConfig::default()
        })
    }

    /// A client with full control of retry, timeouts, and faults.
    pub fn with_client_config(config: ClientConfig) -> Self {
        NetMergerClient {
            conns: SlotMap::new(config.max_connections),
            stats: Mutex::new(ClientStats::default()),
            fetch_stats: FetchStats::new(),
            backoff_rng: Mutex::new(DetRng::new(config.retry_seed)),
            config: ClientConfig {
                buffer_bytes: config.buffer_bytes.max(1),
                ..config
            },
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ClientStats {
        *lock(&self.stats)
    }

    /// Recovery counters: retries, reconnects, timeouts, resumed bytes.
    pub fn fetch_stats(&self) -> FetchStatsSnapshot {
        self.fetch_stats.snapshot()
    }

    /// Bump the per-kind failure counter for a failed attempt.
    fn record_failure(&self, e: &TransportError) {
        match e {
            TransportError::Timeout { .. } => self.fetch_stats.record_timeout(),
            TransportError::Reset { .. } => self.fetch_stats.record_reset(),
            TransportError::Corrupt { .. } => self.fetch_stats.record_corrupt_frame(),
            TransportError::Connect { .. } => self.fetch_stats.record_connect_failure(),
            _ => {}
        }
    }

    fn dial(&self, addr: SocketAddr) -> Result<Conn> {
        match faults::decide(&self.config.faults, Hook::ClientConnect) {
            FaultAction::RefuseConnect => {
                return Err(TransportError::Connect {
                    target: addr.to_string(),
                    source: io::Error::new(io::ErrorKind::ConnectionRefused, "injected refusal"),
                });
            }
            FaultAction::Stall(d) => std::thread::sleep(d),
            _ => {}
        }
        let stream =
            TcpStream::connect_timeout(&addr, self.config.connect_timeout).map_err(|e| {
                TransportError::Connect {
                    target: addr.to_string(),
                    source: e,
                }
            })?;
        let setup = |e| TransportError::Io {
            during: "socket setup",
            source: e,
        };
        stream.set_nodelay(true).map_err(setup)?;
        stream
            .set_read_timeout(Some(self.config.read_timeout))
            .map_err(setup)?;
        stream
            .set_write_timeout(Some(self.config.write_timeout))
            .map_err(setup)?;
        let reader = BufReader::new(stream.try_clone().map_err(setup)?);
        Ok(Conn {
            reader,
            writer: stream,
        })
    }

    fn with_conn<T>(&self, addr: SocketAddr, f: impl FnOnce(&mut Conn) -> Result<T>) -> Result<T> {
        // The event callback runs at most under the slot's `conn` lock
        // and takes only `stats`, which the documented lock order places
        // after `conn`.
        self.conns.with_conn(
            addr,
            || self.dial(addr),
            |ev| match ev {
                SlotEvent::Evicted => lock(&self.stats).connections_evicted += 1,
                SlotEvent::Established { reconnect } => {
                    lock(&self.stats).connections_established += 1;
                    if reconnect {
                        self.fetch_stats.record_reconnect();
                    }
                }
                SlotEvent::Reused => lock(&self.stats).connections_reused += 1,
            },
            f,
        )
    }

    /// One request/response exchange on a (possibly reused) connection.
    /// No retry here; this is the unit the retry loop wraps.
    fn try_fetch_chunk(&self, seg: SegmentRef, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.with_conn(seg.addr, |conn| {
            FetchRequest {
                mof: seg.mof,
                reducer: seg.reducer,
                offset,
                len,
            }
            .write_to(&mut conn.writer)
            .map_err(|e| TransportError::from_io("write request", e))?;
            match faults::decide(&self.config.faults, Hook::ClientReadResponse) {
                FaultAction::Reset => {
                    return Err(TransportError::Reset {
                        during: "read response (injected)",
                    })
                }
                FaultAction::Stall(d) => std::thread::sleep(d),
                _ => {}
            }
            let resp = FetchResponse::read_from(&mut conn.reader)
                .map_err(|e| TransportError::from_io("read response", e))?;
            match resp.status {
                Status::Ok => {
                    lock(&self.stats).bytes_fetched += resp.payload.len() as u64;
                    Ok(resp.payload)
                }
                Status::NotFound => Err(TransportError::NotFound {
                    what: format!("mof {} reducer {}", seg.mof, seg.reducer),
                }),
                Status::BadRequest => Err(TransportError::BadRequest {
                    detail: format!(
                        "supplier rejected fetch of mof {} reducer {}",
                        seg.mof, seg.reducer
                    ),
                }),
            }
        })
    }

    /// Fetch one chunk under the retry policy. `offset` doubles as the
    /// resume point: a retried chunk re-requests exactly `[offset, ...)`,
    /// so bytes before `offset` are never refetched.
    fn fetch_chunk_with_retry(&self, seg: SegmentRef, offset: u64, len: u64) -> Result<Vec<u8>> {
        let mut attempt = 0u32;
        loop {
            match self.try_fetch_chunk(seg, offset, len) {
                Ok(payload) => return Ok(payload),
                Err(e) if e.is_retryable() && attempt < self.config.retry.max_retries => {
                    attempt += 1;
                    self.record_failure(&e);
                    self.fetch_stats.record_retry();
                    if attempt == 1 && offset > 0 {
                        // The segment resumes mid-stream: everything
                        // before `offset` survives this recovery.
                        self.fetch_stats.record_resumed_bytes(offset);
                    }
                    let delay = {
                        let mut rng = lock(&self.backoff_rng);
                        self.config.retry.backoff(attempt, &mut rng)
                    };
                    std::thread::sleep(delay);
                }
                Err(e) if e.is_retryable() => {
                    self.record_failure(&e);
                    self.fetch_stats.record_exhausted();
                    return Err(TransportError::RetriesExhausted {
                        attempts: attempt + 1,
                        last: Box::new(e),
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fetch one whole segment in transport-buffer-sized chunks, resuming
    /// at the received offset across transient failures.
    pub fn fetch_segment(&self, seg: SegmentRef) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut offset = 0u64;
        loop {
            let chunk = self.fetch_chunk_with_retry(seg, offset, self.config.buffer_bytes)?;
            if chunk.is_empty() {
                return Ok(out);
            }
            offset += chunk.len() as u64;
            out.extend_from_slice(&chunk);
        }
    }

    /// Fetch every segment of a reducer concurrently (consolidated across
    /// suppliers) and return the raw segment byte vectors in input order.
    pub fn fetch_all(&self, segs: &[SegmentRef]) -> Result<Vec<Vec<u8>>> {
        let results: Vec<Result<Vec<u8>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = segs
                .iter()
                .map(|&seg| scope.spawn(move || self.fetch_segment(seg)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => Err(TransportError::Io {
                        during: "fetch worker",
                        source: io::Error::other("fetch thread panicked"),
                    }),
                })
                .collect()
        });
        results.into_iter().collect()
    }

    /// Fetch one chunk of a segment (a single request/response exchange,
    /// retried on transient failure). An empty payload means the segment
    /// is exhausted.
    pub fn fetch_chunk(&self, seg: SegmentRef, offset: u64) -> Result<Vec<u8>> {
        self.fetch_chunk_with_retry(seg, offset, self.config.buffer_bytes)
    }

    /// **The network-levitated merge over real sockets**: merge a
    /// reducer's segments while their bodies stay on the remote suppliers.
    /// Each segment holds only its current transport buffer in memory; a
    /// buffer is refetched on demand when the merge drains it. Peak client
    /// memory is O(segments × buffer), independent of segment sizes.
    pub fn levitated_merge(&self, segs: &[SegmentRef]) -> Result<Vec<Record>> {
        let streams: Vec<NetworkSegmentStream> = segs
            .iter()
            .map(|&seg| NetworkSegmentStream::new(self, seg))
            .collect();
        StreamingMerge::new(streams)
            .collect_all()
            .map_err(|e| TransportError::from_io("levitated merge", e))
    }

    /// Materializing variant: fetch all of a reducer's segments (eagerly,
    /// concurrently) and merge them into one key-sorted record stream.
    pub fn shuffle_and_merge(&self, segs: &[SegmentRef]) -> Result<Vec<Record>> {
        let raw = self.fetch_all(segs)?;
        let mut runs: Vec<Vec<Record>> = Vec::with_capacity(raw.len());
        for seg in &raw {
            let mut run = Vec::new();
            for rec in SegmentReader::new(seg) {
                let (k, v) = rec.map_err(|e| TransportError::Corrupt {
                    detail: format!("segment record: {e}"),
                })?;
                run.push((k.to_vec(), v.to_vec()));
            }
            runs.push(run);
        }
        let merge = KWayMerge::new(runs.into_iter().map(|r| r.into_iter()).collect());
        Ok(merge.collect())
    }
}

impl Default for NetMergerClient {
    fn default() -> Self {
        Self::new()
    }
}

/// One segment's levitation window: the current transport buffer, parsed
/// incrementally; the next buffer is fetched only when the merge drains
/// this one.
pub struct NetworkSegmentStream<'a> {
    client: &'a NetMergerClient,
    seg: SegmentRef,
    offset: u64,
    parser: RecordParser,
    exhausted: bool,
}

impl<'a> NetworkSegmentStream<'a> {
    /// A lazily-fetched stream over `seg`.
    pub fn new(client: &'a NetMergerClient, seg: SegmentRef) -> Self {
        NetworkSegmentStream {
            client,
            seg,
            offset: 0,
            parser: RecordParser::new(),
            exhausted: false,
        }
    }

    /// Bytes fetched from this segment so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

impl RecordStream for NetworkSegmentStream<'_> {
    fn next_record(&mut self) -> io::Result<Option<Record>> {
        loop {
            if let Some(rec) = self.parser.pop()? {
                return Ok(Some(rec));
            }
            if self.parser.finished() {
                return Ok(None);
            }
            if self.exhausted {
                if self.parser.pending_bytes() == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "segment ended mid-record",
                ));
            }
            let chunk = self
                .client
                .fetch_chunk(self.seg, self.offset)
                .map_err(io::Error::from)?;
            if chunk.is_empty() {
                self.exhausted = true;
            } else {
                self.offset += chunk.len() as u64;
                self.parser.push(&chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::MofSupplierServer;
    use crate::store::MofStore;
    use jbs_mapred::merge::is_sorted;

    fn server_with_records(n: usize, partitions: usize) -> MofSupplierServer {
        let mut store = MofStore::temp().unwrap();
        let records: Vec<Record> = (0..n)
            .map(|i| {
                (
                    format!("key-{:06}", (i * 7919) % n).into_bytes(),
                    vec![i as u8; 20],
                )
            })
            .collect();
        store
            .write_mof(0, records, partitions, |k| {
                k.iter().map(|&b| b as usize).sum::<usize>() % partitions
            })
            .unwrap();
        MofSupplierServer::start(store).unwrap()
    }

    #[test]
    fn fetch_segment_roundtrips_bytes() {
        let server = server_with_records(300, 2);
        let client = NetMergerClient::new();
        let seg = client
            .fetch_segment(SegmentRef {
                addr: server.addr(),
                mof: 0,
                reducer: 0,
            })
            .unwrap();
        assert!(!seg.is_empty());
        assert!(client.stats().bytes_fetched > 0);
        assert_eq!(client.stats().connections_established, 1);
        server.shutdown();
    }

    #[test]
    fn connection_reuse_across_fetches() {
        let server = server_with_records(100, 2);
        let client = NetMergerClient::new();
        for reducer in [0u32, 1, 0, 1] {
            client
                .fetch_segment(SegmentRef {
                    addr: server.addr(),
                    mof: 0,
                    reducer,
                })
                .unwrap();
        }
        let s = client.stats();
        assert_eq!(s.connections_established, 1, "one connection per supplier");
        // Reuse is counted per request/response exchange; four segment
        // fetches over one cached connection reuse it at least thrice.
        assert!(s.connections_reused >= 3, "{}", s.connections_reused);
        server.shutdown();
    }

    #[test]
    fn merge_produces_sorted_output() {
        let servers: Vec<MofSupplierServer> = (0..3).map(|_| server_with_records(200, 1)).collect();
        let client = NetMergerClient::new();
        let segs: Vec<SegmentRef> = servers
            .iter()
            .map(|s| SegmentRef {
                addr: s.addr(),
                mof: 0,
                reducer: 0,
            })
            .collect();
        let merged = client.shuffle_and_merge(&segs).unwrap();
        assert_eq!(merged.len(), 600);
        assert!(is_sorted(&merged));
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn missing_segment_is_an_error() {
        let server = server_with_records(10, 1);
        let client = NetMergerClient::new();
        let err = client
            .fetch_segment(SegmentRef {
                addr: server.addr(),
                mof: 9,
                reducer: 0,
            })
            .unwrap_err();
        assert!(matches!(err, TransportError::NotFound { .. }), "{err}");
        assert!(!err.is_retryable());
        server.shutdown();
    }

    #[test]
    fn dead_supplier_exhausts_retries_with_connect_errors() {
        // Bind then drop a listener so the port is closed but was
        // recently valid.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = NetMergerClient::with_client_config(ClientConfig {
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                jitter_frac: 0.0,
            },
            connect_timeout: Duration::from_millis(200),
            ..ClientConfig::default()
        });
        let err = client
            .fetch_segment(SegmentRef {
                addr,
                mof: 0,
                reducer: 0,
            })
            .unwrap_err();
        assert!(
            matches!(err, TransportError::RetriesExhausted { attempts: 3, .. }),
            "{err}"
        );
        let fs = client.fetch_stats();
        assert_eq!(fs.retries, 2);
        assert_eq!(fs.exhausted, 1);
        assert!(fs.connect_failures >= 3);
    }

    #[test]
    fn injected_refusals_are_retried_transparently() {
        let server = server_with_records(200, 1);
        let plan = FaultPlan::builder(42)
            .force(
                Hook::ClientConnect,
                0,
                crate::faults::FaultKind::RefuseConnect,
            )
            .build();
        let client = NetMergerClient::with_client_config(ClientConfig {
            retry: RetryPolicy {
                max_retries: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                jitter_frac: 0.0,
            },
            faults: Some(Arc::clone(&plan)),
            ..ClientConfig::default()
        });
        let seg = client
            .fetch_segment(SegmentRef {
                addr: server.addr(),
                mof: 0,
                reducer: 0,
            })
            .unwrap();
        assert!(!seg.is_empty());
        let fs = client.fetch_stats();
        assert!(fs.retries >= 1);
        assert!(fs.connect_failures >= 1);
        assert_eq!(plan.stats().refusals, 1);
        server.shutdown();
    }

    #[test]
    fn levitated_merge_matches_materializing_merge() {
        let servers: Vec<MofSupplierServer> = (0..3).map(|_| server_with_records(400, 1)).collect();
        let segs: Vec<SegmentRef> = servers
            .iter()
            .map(|s| SegmentRef {
                addr: s.addr(),
                mof: 0,
                reducer: 0,
            })
            .collect();
        // Small buffers so segments need many on-demand refills.
        let client = NetMergerClient::with_config(2 << 10, 512);
        let levitated = client.levitated_merge(&segs).unwrap();
        let materialized = client.shuffle_and_merge(&segs).unwrap();
        assert_eq!(levitated, materialized);
        assert!(is_sorted(&levitated));
        assert_eq!(levitated.len(), 1200);
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn levitated_stream_fetches_on_demand() {
        let server = server_with_records(2000, 1);
        let client = NetMergerClient::with_config(4 << 10, 512);
        let seg = SegmentRef {
            addr: server.addr(),
            mof: 0,
            reducer: 0,
        };
        let mut stream = NetworkSegmentStream::new(&client, seg);
        // Pulling one record must fetch only the first window, not the
        // whole multi-chunk segment.
        let first = stream.next_record().unwrap().unwrap();
        assert!(!first.0.is_empty());
        assert_eq!(stream.offset(), 4 << 10, "exactly one buffer fetched");
        server.shutdown();
    }

    #[test]
    fn tiny_connection_cache_evicts_lru() {
        let servers: Vec<MofSupplierServer> = (0..3).map(|_| server_with_records(50, 1)).collect();
        let client = NetMergerClient::with_config(128 << 10, 1);
        for s in &servers {
            client
                .fetch_segment(SegmentRef {
                    addr: s.addr(),
                    mof: 0,
                    reducer: 0,
                })
                .unwrap();
        }
        // Revisit the first supplier: its connection was evicted.
        client
            .fetch_segment(SegmentRef {
                addr: servers[0].addr(),
                mof: 0,
                reducer: 0,
            })
            .unwrap();
        let s = client.stats();
        assert_eq!(s.connections_established, 4);
        for s in servers {
            s.shutdown();
        }
    }
}
