//! The NetMerger's background fetch scheduler: per-supplier request
//! queues drained by worker threads that keep a **bounded window of
//! pipelined requests** in flight on each connection.
//!
//! This is the client half of the Fig. 4 fix. The serial fetch path
//! (`NetMergerClient::fetch_segment`) is strict lockstep — request,
//! wait, response, request — so disk time on the supplier and network
//! time strictly add. Here, each supplier address gets one worker thread
//! that:
//!
//! * admits up to `window` fetch ops from its [`DispatchQueue`] into an
//!   active set;
//! * round-robins chunk requests across the active ops (the paper's
//!   balanced injection), keeping up to `window` requests on the wire —
//!   so while chunk `k` streams back, chunk `k+1` is already being
//!   staged by the supplier's prefetch thread;
//! * matches responses to requests by the **id echo** in strict FIFO
//!   order: TCP delivers responses in request order, so a mismatched id
//!   means the stream desynchronized and the connection is torn down as
//!   corrupt rather than trusted;
//! * requests *speculative* offsets for multi-chunk ops (chunk `k+1`'s
//!   offset is predicted before chunk `k` lands). A short read proves
//!   the prediction wrong: speculation collapses back to the committed
//!   offset and the stale responses are discarded by offset mismatch
//!   ([`crate::stats::FetchStatsSnapshot::spec_discards`]);
//! * keeps PR 1's recovery semantics **per in-flight op**: any
//!   connection-level failure drains the window, resets every active op
//!   to its committed offset (resume — bytes received are never
//!   refetched), and retries under the shared [`RetryPolicy`] budget
//!   with deterministic backoff; exhaustion fails every active op with
//!   its own [`TransportError::Segment`] context.
//!
//! Completion is a channel handoff: each [`FetchOp`] carries the sender
//! half of its submitter's channel, so `fetch_all` and the levitated
//! merge consume segments as they land instead of joining threads in
//! order.
//!
//! Locking: `peers` (the worker registry) is taken before a worker's
//! `ops` queue lock on the submit path; workers take `ops` alone, and
//! `stats` only with nothing else held. Neither is ever held across
//! socket I/O, sleeps, or a channel send.

use crate::breaker::{Admit, Breaker, Transition};
use crate::client::{dial, record_failure, ClientShared, SegmentRef};
use crate::error::{Result, TransportError};
use crate::faults::{self, FaultAction, Hook};
use crate::prefetch::Pop;
use crate::sync::{lock, Mutex};
use crate::wire::{FetchRequest, FetchResponse, Status, WireVersion, FLAG_BYPASS_CACHE};
use jbs_des::DetRng;
use jbs_obs::Entity;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::SocketAddr;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// One queued fetch: a chunk (or whole remainder) of one segment.
pub(crate) struct FetchOp {
    /// Caller-chosen correlation token, echoed in [`FetchDone`]. Tokens
    /// are scoped to the `done` channel, not global.
    pub(crate) token: u64,
    /// Which segment on which supplier.
    pub(crate) seg: SegmentRef,
    /// Absolute segment offset the fetch starts at.
    pub(crate) offset: u64,
    /// `0` fetches the whole remainder `[offset, end)` across as many
    /// pipelined chunks as it takes; otherwise one single-exchange chunk
    /// of at most `limit` bytes (short or empty at segment end).
    pub(crate) limit: u64,
    /// Completion handoff; every accepted op sends exactly one result.
    pub(crate) done: mpsc::Sender<FetchDone>,
}

/// The completion record for one [`FetchOp`].
pub(crate) struct FetchDone {
    /// The op's `token`, so a submitter multiplexing one channel can
    /// tell its completions apart.
    pub(crate) token: u64,
    /// The fetched bytes, or the failure wrapped in per-segment context.
    pub(crate) result: Result<Vec<u8>>,
}

struct OpQueue<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// The per-peer op queue: a plain FIFO with a closed latch, factored out
/// of the worker so the `cfg(loom)` models below drive the production
/// push/pop/close logic. Fairness across *segments* comes from the
/// worker's round-robin over its active set, not from queue order.
pub(crate) struct DispatchQueue<T> {
    ops: Mutex<OpQueue<T>>,
}

impl<T> DispatchQueue<T> {
    pub(crate) fn new() -> Self {
        DispatchQueue {
            ops: Mutex::new(OpQueue {
                queue: VecDeque::new(),
                closed: false,
            }),
        }
    }

    /// Queue an op. Returns it back if the queue is already closed, so
    /// the caller fails its completion channel instead of losing it.
    pub(crate) fn push(&self, item: T) -> std::result::Result<(), T> {
        let mut ops = lock(&self.ops);
        if ops.closed {
            return Err(item);
        }
        ops.queue.push_back(item);
        Ok(())
    }

    /// Take the oldest queued op, or learn the queue is empty / closed.
    pub(crate) fn try_pop(&self) -> Pop<T> {
        let mut ops = lock(&self.ops);
        match ops.queue.pop_front() {
            Some(item) => Pop::Item(item),
            None if ops.closed => Pop::Closed,
            None => Pop::Empty,
        }
    }

    /// Close the queue and drain everything still pending so the caller
    /// can fail those ops' completions. Pushes after this are refused.
    pub(crate) fn close(&self) -> Vec<T> {
        let mut ops = lock(&self.ops);
        ops.closed = true;
        ops.queue.drain(..).collect()
    }

    /// Ops currently queued (not yet admitted by the worker).
    pub(crate) fn len(&self) -> usize {
        lock(&self.ops).queue.len()
    }
}

/// The scheduler owned by [`crate::client::NetMergerClient`]: a registry
/// of per-supplier queues and worker threads, spawned lazily on the
/// first op for an address and joined on drop.
pub(crate) struct FetchScheduler {
    shared: Arc<ClientShared>,
    peers: Mutex<HashMap<SocketAddr, PeerHandle>>,
    /// Monotonic time origin shared with every worker, so the circuit
    /// breakers (which never read a clock themselves) see one timeline.
    anchor: Instant,
}

struct PeerHandle {
    queue: Arc<DispatchQueue<FetchOp>>,
    /// Wakes the worker when it is parked with nothing active.
    tick: mpsc::Sender<()>,
    /// This peer's circuit breaker, shared with its worker: the submit
    /// path fails fast against it while the worker drives transitions.
    breaker: Arc<Breaker>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl FetchScheduler {
    pub(crate) fn new(shared: Arc<ClientShared>) -> Self {
        FetchScheduler {
            shared,
            peers: Mutex::new(HashMap::new()),
            anchor: Instant::now(),
        }
    }

    /// Whether `addr`'s circuit breaker is currently open. Peers no op
    /// has ever been submitted for have no breaker and read closed.
    pub(crate) fn breaker_open(&self, addr: SocketAddr) -> bool {
        let breaker = {
            let peers = lock(&self.peers);
            peers.get(&addr).map(|h| Arc::clone(&h.breaker))
        };
        match breaker {
            Some(b) => b.is_open(self.anchor.elapsed().as_nanos() as u64),
            None => false,
        }
    }

    /// Proactive failover: an op aimed at a peer the control plane marks
    /// unhealthy (or whose breaker is already open) is rewritten to the
    /// first healthy replica of its MOF before any queueing. Fires only
    /// behind one of those health signals — a healthy peer's ops are
    /// never rerouted — and only when a [`crate::routes::RouteTable`]
    /// is configured.
    fn reroute(&self, mut op: FetchOp) -> FetchOp {
        let Some(routes) = &self.shared.config.routes else {
            return op;
        };
        let addr = op.seg.addr;
        if !routes.is_unhealthy(addr) && !self.breaker_open(addr) {
            return op;
        }
        let Some(next) = routes.failover_target(op.seg.mof, &[addr]) else {
            return op;
        };
        self.shared.fetch_stats.record_failover();
        self.shared.config.trace.instant(
            "failover.redirect",
            Entity::peer(u64::from(next.port())),
            op.seg.mof,
            u64::from(addr.port()),
        );
        op.seg.addr = next;
        op
    }

    /// Hand an op to its supplier's worker, spawning the worker on first
    /// contact. An op for a peer whose circuit breaker is open fails
    /// fast with [`TransportError::CircuitOpen`] — no queueing, no wire
    /// traffic — unless a configured route table redirects it to a
    /// healthy replica first. An op refused by a closed queue (client
    /// shutting down) fails through its own completion channel.
    pub(crate) fn submit(&self, op: FetchOp) {
        let op = self.reroute(op);
        let addr = op.seg.addr;
        let (peer_id, mof, reducer) = (
            u64::from(op.seg.addr.port()),
            op.seg.mof,
            u64::from(op.seg.reducer),
        );
        let (queue, tick, breaker) = {
            let mut peers = lock(&self.peers);
            let h = peers
                .entry(op.seg.addr)
                .or_insert_with(|| spawn_worker(op.seg.addr, Arc::clone(&self.shared), self.anchor));
            (Arc::clone(&h.queue), h.tick.clone(), Arc::clone(&h.breaker))
        };
        if breaker.is_open(self.anchor.elapsed().as_nanos() as u64) {
            self.shared.fetch_stats.record_breaker_fast_fail();
            self.shared
                .config
                .trace
                .instant("breaker.fast_fail", Entity::peer(peer_id), mof, reducer);
            fail_op(op, TransportError::CircuitOpen {
                peer: addr.to_string(),
            });
            return;
        }
        match queue.push(op) {
            Ok(()) => {
                self.shared.fetch_stats.record_op_queued();
                self.shared.config.trace.instant(
                    "sched.dispatch",
                    Entity::peer(peer_id),
                    mof,
                    reducer,
                );
                let _ = tick.send(());
            }
            Err(op) => fail_op(op, shutdown_error()),
        }
    }

    /// Per-peer queue depths (ops admitted but not yet picked up), for
    /// the pipeline gauges.
    pub(crate) fn queue_depths(&self) -> Vec<(SocketAddr, usize)> {
        let peers = lock(&self.peers);
        peers
            .iter()
            .map(|(addr, h)| (*addr, h.queue.len()))
            .collect()
    }
}

impl Drop for FetchScheduler {
    fn drop(&mut self) {
        let handles: Vec<PeerHandle> = {
            let mut peers = lock(&self.peers);
            peers.drain().map(|(_, h)| h).collect()
        };
        // Close every queue first so no worker admits more work, and
        // fail the ops that never reached a worker.
        for h in &handles {
            for op in h.queue.close() {
                self.shared.fetch_stats.record_op_dequeued();
                fail_op(op, shutdown_error());
            }
            let _ = h.tick.send(());
        }
        for mut h in handles {
            // Dropping the tick sender unparks a worker blocked on an
            // empty queue; it observes Closed and exits.
            drop(h.tick);
            if let Some(t) = h.worker.take() {
                let _ = t.join();
            }
        }
    }
}

fn shutdown_error() -> TransportError {
    TransportError::Io {
        during: "fetch scheduler",
        source: io::Error::new(io::ErrorKind::Interrupted, "client shut down"),
    }
}

fn fail_op(op: FetchOp, e: TransportError) {
    let err = TransportError::Segment {
        mof: op.seg.mof,
        reducer: op.seg.reducer,
        peer: op.seg.addr.to_string(),
        source: Box::new(e),
    };
    let _ = op.done.send(FetchDone {
        token: op.token,
        result: Err(err),
    });
}

/// Seed material that differs per worker but is identical across runs,
/// so backoff jitter stays deterministic under a fixed `retry_seed`.
fn addr_seed(addr: &SocketAddr) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    addr.hash(&mut h);
    h.finish()
}

fn spawn_worker(addr: SocketAddr, shared: Arc<ClientShared>, anchor: Instant) -> PeerHandle {
    let queue = Arc::new(DispatchQueue::new());
    let (tick_tx, tick_rx) = mpsc::channel();
    let breaker = Arc::new(Breaker::new(
        shared.config.breaker_threshold,
        shared.config.breaker_cooldown.as_nanos() as u64,
    ));
    let worker_queue = Arc::clone(&queue);
    let worker_breaker = Arc::clone(&breaker);
    let worker = std::thread::spawn(move || {
        Worker::new(addr, shared, worker_queue, tick_rx, worker_breaker, anchor).run();
    });
    PeerHandle {
        queue,
        tick: tick_tx,
        breaker,
        worker: Some(worker),
    }
}

/// One op admitted into a worker's active set.
struct ActiveOp {
    op: FetchOp,
    /// Bytes received and appended so far (multi-chunk ops).
    buf: Vec<u8>,
    /// Absolute offset up to which `buf` is complete.
    committed: u64,
    /// Absolute offset the *next* (possibly speculative) request starts
    /// at; collapses back to `committed` on a short read or a failure.
    spec: u64,
    /// Offset up to which resume credit was already recorded, so one op
    /// surviving several reconnects doesn't double-count.
    resume_mark: u64,
    /// Segment length declared by the supplier's v3 `OkCrc` frames —
    /// the accounting that unmasks a truncation landing exactly on a
    /// chunk boundary. `None` until the first v3 response (v2 peers
    /// never fill it; their clean EOFs are trusted blind).
    expected: Option<u64>,
    /// The next request at the committed offset must carry
    /// [`FLAG_BYPASS_CACHE`]: the last chunk there failed verification,
    /// so the supplier must re-read disk, not its (possibly poisoned)
    /// cache.
    bypass_next: bool,
    /// Remaining targeted re-fetches (CRC mismatches + boundary-EOF
    /// lies) before the typed error surfaces for this op.
    refetch_budget: u32,
}

/// One request on the wire, awaiting its response in FIFO order.
struct Outstanding {
    id: u64,
    key: u64,
    offset: u64,
    len: u64,
}

struct Worker {
    addr: SocketAddr,
    shared: Arc<ClientShared>,
    queue: Arc<DispatchQueue<FetchOp>>,
    ticks: mpsc::Receiver<()>,
    conn: Option<crate::client::Conn>,
    /// Active ops by worker-local key (caller tokens are not unique
    /// across submitters, so they cannot key this map).
    active: HashMap<u64, ActiveOp>,
    /// Round-robin order over `active` for balanced chunk injection.
    rotation: VecDeque<u64>,
    outstanding: VecDeque<Outstanding>,
    next_key: u64,
    next_id: u64,
    /// Connection-level failures since the last successful response.
    attempts: u32,
    ever_connected: bool,
    rng: DetRng,
    closed: bool,
    /// This peer's circuit breaker (shared with the submit path).
    breaker: Arc<Breaker>,
    /// Monotonic origin for breaker timestamps.
    anchor: Instant,
    /// Dialect the current connection incarnation speaks, decided by
    /// the [`crate::client::VersionMap`] at dial time.
    conn_version: WireVersion,
    /// Whether any v3 response arrived on the current connection — the
    /// signal that separates "legacy server dropped the unknown magic"
    /// from an ordinary mid-stream failure during negotiation.
    saw_v3_response: bool,
}

impl Worker {
    /// Trace handle shared with the owning client config.
    fn trace(&self) -> &jbs_obs::Trace {
        &self.shared.config.trace
    }

    /// This worker's trace entity: the supplier, keyed by TCP port
    /// (loopback addresses differ only there).
    fn peer(&self) -> Entity {
        Entity::peer(u64::from(self.addr.port()))
    }

    fn new(
        addr: SocketAddr,
        shared: Arc<ClientShared>,
        queue: Arc<DispatchQueue<FetchOp>>,
        ticks: mpsc::Receiver<()>,
        breaker: Arc<Breaker>,
        anchor: Instant,
    ) -> Self {
        let seed = shared.config.retry_seed ^ addr_seed(&addr);
        Worker {
            addr,
            shared,
            queue,
            ticks,
            conn: None,
            active: HashMap::new(),
            rotation: VecDeque::new(),
            outstanding: VecDeque::new(),
            next_key: 0,
            // Id 0 is reserved for the serial (non-pipelined) path.
            next_id: 1,
            attempts: 0,
            ever_connected: false,
            rng: DetRng::new(seed),
            closed: false,
            breaker,
            anchor,
            conn_version: WireVersion::V2,
            saw_v3_response: false,
        }
    }

    /// Nanoseconds since the scheduler's monotonic anchor.
    fn now(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }

    /// Sleep until the breaker's probe time in short slices, staying
    /// responsive to scheduler shutdown (the tick sender disappearing).
    fn park_until(&mut self, retry_at_nanos: u64) {
        const SLICE: Duration = Duration::from_millis(20);
        loop {
            match self.ticks.try_recv() {
                Ok(()) | Err(mpsc::TryRecvError::Empty) => {}
                Err(mpsc::TryRecvError::Disconnected) => {
                    self.closed = true;
                    return;
                }
            }
            let now = self.now();
            if now >= retry_at_nanos {
                return;
            }
            std::thread::sleep(Duration::from_nanos(retry_at_nanos - now).min(SLICE));
        }
    }

    fn run(&mut self) {
        loop {
            self.admit();
            if self.closed {
                self.fail_all_active(&shutdown_error());
                return;
            }
            if self.active.is_empty() {
                if !self.outstanding.is_empty() {
                    // The last op completed with speculative requests
                    // still on the wire. Drain their responses (they
                    // discard as stale) before parking — otherwise the
                    // next op on this connection would read them as the
                    // answers to ITS requests and desynchronize.
                    if let Err(e) = self.read_one() {
                        self.on_failure(e);
                    }
                    continue;
                }
                // Parked: nothing to fetch until a submit ticks us, or
                // the sender disappears (scheduler dropped).
                match self.ticks.recv() {
                    Ok(()) => continue,
                    Err(_) => {
                        self.closed = true;
                        continue;
                    }
                }
            }
            if let Err(e) = self.pump() {
                self.on_failure(e);
            }
        }
    }

    /// Move queued ops into the active set, up to the window.
    fn admit(&mut self) {
        let window = self.shared.config.window.max(1);
        while self.active.len() < window {
            match self.queue.try_pop() {
                Pop::Item(op) => {
                    self.shared.fetch_stats.record_op_dequeued();
                    self.trace().instant(
                        "sched.admit",
                        self.peer(),
                        op.seg.mof,
                        u64::from(op.seg.reducer),
                    );
                    if self.conn.is_some() {
                        // The pipelined analogue of a connection-cache
                        // hit: this op rides the worker's live socket.
                        lock(&self.shared.stats).connections_reused += 1;
                    }
                    let key = self.next_key;
                    self.next_key += 1;
                    let committed = op.offset;
                    self.rotation.push_back(key);
                    self.active.insert(
                        key,
                        ActiveOp {
                            op,
                            buf: Vec::new(),
                            committed,
                            spec: committed,
                            resume_mark: committed,
                            expected: None,
                            bypass_next: false,
                            refetch_budget: self.shared.config.integrity_retries,
                        },
                    );
                }
                Pop::Empty => break,
                Pop::Closed => {
                    self.closed = true;
                    break;
                }
            }
        }
    }

    /// One scheduling step: connect if needed (subject to the circuit
    /// breaker), top up the in-flight window round-robin across active
    /// ops, then consume one response.
    fn pump(&mut self) -> Result<()> {
        if self.conn.is_none() {
            match self.breaker.try_acquire(self.now()) {
                Admit::Yes => {}
                Admit::Probe => {
                    // This connection attempt IS the half-open probe;
                    // its outcome reports through the normal
                    // success/failure paths below.
                    self.trace()
                        .instant("breaker.half_open", self.peer(), 0, 0);
                }
                Admit::No { retry_at_nanos } => {
                    // Open: already-admitted work parks until the probe
                    // time instead of hammering a dead peer.
                    self.park_until(retry_at_nanos);
                    return Ok(());
                }
            }
            let conn = dial(self.addr, &self.shared.config)?;
            lock(&self.shared.stats).connections_established += 1;
            if self.ever_connected {
                self.shared.fetch_stats.record_reconnect();
            }
            self.ever_connected = true;
            self.conn = Some(conn);
            self.conn_version = self.shared.versions.version_for(self.addr);
            self.saw_v3_response = false;
        }
        self.fill_window()?;
        if self.outstanding.is_empty() {
            // Nothing on the wire and nothing issuable — only possible
            // transiently; go round again rather than blocking on read.
            return Ok(());
        }
        self.read_one()
    }

    /// The next chunk request for an active op, or `None` if the op has
    /// nothing more to ask for right now.
    fn next_request(&self, a: &ActiveOp) -> Option<(u64, u64)> {
        if a.op.limit == 0 {
            // Whole-remainder op: always another (speculative) chunk;
            // the window bounds how far ahead we run.
            Some((a.spec, self.shared.config.buffer_bytes))
        } else if a.spec == a.op.offset {
            // Single-exchange chunk: issued at most once per connection
            // incarnation (spec collapses back on failure for re-issue).
            Some((a.spec, a.op.limit))
        } else {
            None
        }
    }

    /// Top up the pipeline window, visiting active ops round-robin so
    /// chunk injection stays balanced across segments.
    fn fill_window(&mut self) -> Result<()> {
        let window = self.shared.config.window.max(1);
        loop {
            if self.outstanding.len() >= window {
                return Ok(());
            }
            let mut progressed = false;
            for _ in 0..self.rotation.len() {
                if self.outstanding.len() >= window {
                    break;
                }
                let Some(key) = self.rotation.pop_front() else {
                    break;
                };
                // Completed ops leave stale rotation entries; drop them.
                let Some(a) = self.active.get(&key) else {
                    continue;
                };
                let Some((offset, len)) = self.next_request(a) else {
                    self.rotation.push_back(key);
                    continue;
                };
                self.send_request(key, offset, len)?;
                self.rotation.push_back(key);
                progressed = true;
            }
            if !progressed {
                return Ok(());
            }
        }
    }

    fn send_request(&mut self, key: u64, offset: u64, len: u64) -> Result<()> {
        let Some(a) = self.active.get(&key) else {
            return Ok(());
        };
        let (mof, reducer) = (a.op.seg.mof, a.op.seg.reducer);
        // A targeted re-fetch after a failed verification asks the
        // supplier to re-read disk instead of serving the poisoned
        // cache entry back (v3-only; v2 has no flags byte).
        let bypass =
            a.bypass_next && offset == a.committed && self.conn_version == WireVersion::V3;
        let id = self.next_id;
        self.next_id += 1;
        let Some(conn) = self.conn.as_mut() else {
            return Err(TransportError::Reset {
                during: "write request",
            });
        };
        FetchRequest {
            id,
            mof,
            reducer,
            offset,
            len,
            flags: if bypass { FLAG_BYPASS_CACHE } else { 0 },
        }
        .write_versioned(&mut conn.writer, self.conn_version)
        .map_err(|e| TransportError::from_io("write request", e))?;
        self.outstanding.push_back(Outstanding {
            id,
            key,
            offset,
            len,
        });
        self.shared.fetch_stats.record_window_send();
        self.trace().instant("sched.send", self.peer(), offset, len);
        let peer = self.peer();
        if let Some(a) = self.active.get_mut(&key) {
            if offset > a.committed {
                // This request runs ahead of confirmed data: offset
                // speculation in action.
                self.shared
                    .config
                    .trace
                    .instant("sched.speculate", peer, offset, a.committed);
            }
            a.spec = offset.saturating_add(len);
            if bypass {
                a.bypass_next = false;
            }
        }
        Ok(())
    }

    /// Read one response and match it to the head of the FIFO window.
    fn read_one(&mut self) -> Result<()> {
        match faults::decide(&self.shared.config.faults, Hook::ClientReadResponse) {
            FaultAction::Reset => {
                return Err(TransportError::Reset {
                    during: "read response (injected)",
                })
            }
            FaultAction::Stall(d) => std::thread::sleep(d),
            _ => {}
        }
        let Some(conn) = self.conn.as_mut() else {
            return Err(TransportError::Reset {
                during: "read response",
            });
        };
        let resp = FetchResponse::read_from(&mut conn.reader)
            .map_err(|e| TransportError::from_io("read response", e))?;
        let Some(exp) = self.outstanding.pop_front() else {
            return Err(TransportError::Corrupt {
                detail: "response frame with no outstanding request".into(),
            });
        };
        self.shared.fetch_stats.record_window_recv();
        self.trace()
            .instant("sched.recv", self.peer(), resp.id, resp.payload.len() as u64);
        if resp.id != exp.id {
            // In-order pipelining means the echoed id MUST match the
            // oldest unanswered request; anything else is a
            // desynchronized stream we cannot trust.
            return Err(TransportError::Corrupt {
                detail: format!(
                    "pipelined response id {} does not match outstanding id {}",
                    resp.id, exp.id
                ),
            });
        }
        // Any well-formed, correctly-matched response is progress: the
        // connection works, so the failure budget resets.
        self.attempts = 0;
        if self.breaker.on_success(self.now()) == Transition::Closed {
            self.trace().instant("breaker.close", self.peer(), 0, 0);
        }
        match resp.status {
            Status::Ok => self.apply_payload(exp, resp.payload),
            Status::OkCrc => {
                self.shared.versions.confirm_v3(self.addr);
                self.saw_v3_response = true;
                if !resp.crc_ok() {
                    self.on_bad_payload(exp);
                    return Ok(());
                }
                self.trace().instant(
                    "integrity.verify",
                    self.peer(),
                    exp.offset,
                    resp.payload.len() as u64,
                );
                if let Some(a) = self.active.get_mut(&exp.key) {
                    a.expected = Some(resp.seg_len);
                }
                self.apply_payload(exp, resp.payload)
            }
            Status::Busy => {
                self.shared.versions.confirm_v3(self.addr);
                self.saw_v3_response = true;
                self.on_busy(exp, resp.retry_after_ms);
                Ok(())
            }
            Status::NotFound => {
                let what = self.describe(exp.key);
                self.complete(exp.key, Err(TransportError::NotFound { what }));
                Ok(())
            }
            Status::BadRequest => {
                let detail = format!("supplier rejected fetch of {}", self.describe(exp.key));
                self.complete(exp.key, Err(TransportError::BadRequest { detail }));
                Ok(())
            }
        }
    }

    /// A pipelined payload failed its CRC32C. If it targeted the
    /// committed offset of a live op, aim a targeted cache-bypass
    /// re-fetch there (bounded by the integrity budget); a stale
    /// speculative frame is discarded like any other.
    fn on_bad_payload(&mut self, exp: Outstanding) {
        enum Verdict {
            Stale,
            Refetch,
            Exhausted,
        }
        let verdict = match self.active.get_mut(&exp.key) {
            None => Verdict::Stale,
            Some(a) if exp.offset != a.committed => Verdict::Stale,
            Some(a) if a.refetch_budget == 0 => Verdict::Exhausted,
            Some(a) => {
                a.refetch_budget -= 1;
                a.bypass_next = true;
                a.spec = a.committed;
                Verdict::Refetch
            }
        };
        match verdict {
            Verdict::Stale => {
                self.shared.fetch_stats.record_spec_discard();
                self.trace()
                    .instant("sched.spec_discard", self.peer(), exp.offset, 0);
            }
            Verdict::Refetch => {
                self.shared.fetch_stats.record_corrupt_refetch();
                self.trace()
                    .instant("integrity.refetch", self.peer(), exp.offset, exp.len);
            }
            Verdict::Exhausted => self.complete(
                exp.key,
                Err(TransportError::Corrupt {
                    detail: format!(
                        "pipelined chunk at offset {} failed CRC32C verification \
                         after targeted re-fetches",
                        exp.offset
                    ),
                }),
            ),
        }
    }

    /// The supplier shed this request under admission control: honor
    /// the retry-after hint before injecting more requests, and re-aim
    /// the op so the denied chunk is re-requested.
    fn on_busy(&mut self, exp: Outstanding, retry_after_ms: u64) {
        self.shared.fetch_stats.record_busy_backoff();
        self.trace()
            .instant("sched.busy", self.peer(), exp.offset, retry_after_ms);
        if let Some(a) = self.active.get_mut(&exp.key) {
            a.spec = a.committed;
        }
        std::thread::sleep(Duration::from_millis(retry_after_ms.min(1_000)));
    }

    fn describe(&self, key: u64) -> String {
        match self.active.get(&key) {
            Some(a) => format!("mof {} reducer {}", a.op.seg.mof, a.op.seg.reducer),
            None => "completed op".into(),
        }
    }

    fn apply_payload(&mut self, exp: Outstanding, payload: Vec<u8>) -> Result<()> {
        let Some(a) = self.active.get_mut(&exp.key) else {
            // The op already completed (or failed); this was a
            // speculative request past its end.
            self.shared.fetch_stats.record_spec_discard();
            self.shared
                .config
                .trace
                .instant("sched.spec_discard", self.peer(), exp.offset, 0);
            return Ok(());
        };
        if exp.offset != a.committed {
            // Stale speculation: a short read moved the committed offset
            // below where this request was aimed.
            let committed = a.committed;
            self.shared.fetch_stats.record_spec_discard();
            self.shared
                .config
                .trace
                .instant("sched.spec_discard", self.peer(), exp.offset, committed);
            return Ok(());
        }
        if a.op.limit > 0 {
            // Single-exchange chunk: the payload (possibly short or
            // empty at segment end) IS the result — but an empty chunk
            // *before* the v3-declared segment end is a boundary
            // truncation lie, not an EOF (a levitated stream would
            // otherwise terminate early and silently lose records).
            if payload.is_empty() {
                if let Some(exp_len) = a.expected {
                    if exp.offset < exp_len {
                        if a.refetch_budget > 0 {
                            a.refetch_budget -= 1;
                            a.bypass_next = true;
                            a.spec = a.committed;
                            self.shared.fetch_stats.record_corrupt_refetch();
                            self.shared.config.trace.instant(
                                "integrity.refetch",
                                self.peer(),
                                exp.offset,
                                exp_len,
                            );
                            return Ok(());
                        }
                        self.complete(
                            exp.key,
                            Err(TransportError::Truncated {
                                got: exp.offset,
                                expected: exp_len,
                            }),
                        );
                        return Ok(());
                    }
                }
            }
            lock(&self.shared.stats).bytes_fetched += payload.len() as u64;
            self.complete(exp.key, Ok(payload));
            return Ok(());
        }
        if payload.is_empty() {
            // Empty at exactly the committed offset: end of segment —
            // unless the v3 accounting says bytes are still owed, in
            // which case this "clean EOF" is a truncation lie landing
            // exactly on a chunk boundary.
            if let Some(exp_len) = a.expected {
                if a.committed < exp_len {
                    if a.refetch_budget > 0 {
                        a.refetch_budget -= 1;
                        a.bypass_next = true;
                        a.spec = a.committed;
                        let committed = a.committed;
                        self.shared.fetch_stats.record_corrupt_refetch();
                        self.shared.config.trace.instant(
                            "integrity.refetch",
                            self.peer(),
                            committed,
                            exp_len,
                        );
                        return Ok(());
                    }
                    let got = a.committed;
                    self.complete(
                        exp.key,
                        Err(TransportError::Truncated {
                            got,
                            expected: exp_len,
                        }),
                    );
                    return Ok(());
                }
            }
            let buf = std::mem::take(&mut a.buf);
            self.complete(exp.key, Ok(buf));
            return Ok(());
        }
        let len = payload.len() as u64;
        lock(&self.shared.stats).bytes_fetched += len;
        a.buf.extend_from_slice(&payload);
        a.committed = a.committed.saturating_add(len);
        if len < exp.len {
            // Short read: outstanding speculation beyond this point is
            // aimed wrong; re-aim the next request at the new committed
            // offset and let the stale responses be discarded above.
            a.spec = a.committed;
        }
        Ok(())
    }

    /// Deliver one op's result and retire it from the active set.
    fn complete(&mut self, key: u64, result: Result<Vec<u8>>) {
        if let Some(a) = self.active.remove(&key) {
            let result = result.map_err(|e| TransportError::Segment {
                mof: a.op.seg.mof,
                reducer: a.op.seg.reducer,
                peer: a.op.seg.addr.to_string(),
                source: Box::new(e),
            });
            let _ = a.op.done.send(FetchDone {
                token: a.op.token,
                result,
            });
        }
    }

    /// A connection-level failure: drain the window, rewind every active
    /// op to its committed offset (resume), and either back off for a
    /// retry or fail everything with exhausted context.
    fn on_failure(&mut self, e: TransportError) {
        record_failure(&self.shared.fetch_stats, &e);
        // Version negotiation: a connection that died mid-stream before
        // producing ANY v3 response is the legacy-server signature (a
        // v2-only supplier drops the unknown magic). Dial failures are
        // excluded — a dead peer is not a legacy peer.
        if self.conn_version == WireVersion::V3
            && !self.saw_v3_response
            && matches!(
                e,
                TransportError::Reset { .. }
                    | TransportError::Timeout { .. }
                    | TransportError::Io { .. }
            )
            && self.conn.is_some()
        {
            self.shared.versions.record_probe_failure(self.addr);
        }
        if self.breaker.on_failure(self.now()) == Transition::Opened {
            self.trace()
                .instant("breaker.open", self.peer(), u64::from(self.attempts + 1), 0);
        }
        self.conn = None;
        let drained = self.outstanding.len() as u64;
        self.outstanding.clear();
        self.shared.fetch_stats.record_window_drained(drained);
        for a in self.active.values_mut() {
            a.spec = a.committed;
            if a.committed > a.resume_mark {
                // These bytes survive the reconnect: the op resumes at
                // `committed` instead of refetching from its start.
                self.shared
                    .fetch_stats
                    .record_resumed_bytes(a.committed - a.resume_mark);
                a.resume_mark = a.committed;
            }
        }
        // Rebuild the injection rotation from the active set: a key
        // popped for a send that failed mid-write never made it back,
        // and losing it would starve its op forever.
        self.rotation = self.active.keys().copied().collect();
        if !e.is_retryable() {
            self.fail_all_active(&e);
            return;
        }
        self.attempts += 1;
        if self.attempts <= self.shared.config.retry.max_retries {
            self.shared.fetch_stats.record_retry();
            let delay = self
                .shared
                .config
                .retry
                .backoff(self.attempts, &mut self.rng);
            let _backoff = self.trace().span(
                "retry.backoff",
                self.peer(),
                u64::from(self.attempts),
                delay.as_nanos() as u64,
            );
            std::thread::sleep(delay);
        } else {
            self.shared.fetch_stats.record_exhausted();
            let attempts = self.attempts;
            self.attempts = 0;
            self.fail_all_active(&TransportError::RetriesExhausted {
                attempts,
                last: Box::new(e),
            });
        }
    }

    /// Fail every active op with (a structural copy of) `e`, each in its
    /// own segment context.
    fn fail_all_active(&mut self, e: &TransportError) {
        let keys: Vec<u64> = self.active.keys().copied().collect();
        for key in keys {
            self.complete(key, Err(e.duplicate()));
        }
        self.rotation.clear();
    }
}

/// Bounded model checks of the dispatch queue. Build and run with
/// `RUSTFLAGS="--cfg loom" cargo test -p jbs-transport --lib loom_`.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;

    /// A push racing the shutdown close: in every interleaving the op
    /// surfaces exactly once — refused back to the pusher, or drained by
    /// close — never both, never lost. This is the invariant that makes
    /// "every accepted op completes exactly once" hold across shutdown.
    #[test]
    fn loom_push_races_close_exactly_once() {
        loom::model(|| {
            let q = Arc::new(DispatchQueue::new());
            let q2 = Arc::clone(&q);
            let h = loom::thread::spawn(move || q2.push(7u32).err());
            let drained = q.close();
            let refused = match h.join() {
                Ok(r) => r,
                Err(_) => panic!("pusher panicked"),
            };
            let surfaced = usize::from(refused.is_some()) + drained.len();
            assert_eq!(surfaced, 1, "op must surface exactly once");
            // After close the queue stays terminal.
            assert!(matches!(q.try_pop(), Pop::Closed));
            assert!(q.push(8u32).is_err());
        });
    }

    /// Shutdown while a worker holds in-flight work: a pop races close.
    /// Every queued op surfaces exactly once — via the pop (in-flight in
    /// the worker) or via close's drain — and the queue reads Closed
    /// afterwards, so the worker cannot admit work the scheduler will
    /// never see complete.
    #[test]
    fn loom_close_races_pop_loses_nothing() {
        loom::model(|| {
            let q = Arc::new(DispatchQueue::new());
            assert!(q.push(1u32).is_ok());
            assert!(q.push(2u32).is_ok());
            let q2 = Arc::clone(&q);
            let h = loom::thread::spawn(move || match q2.try_pop() {
                Pop::Item(v) => Some(v),
                _ => None,
            });
            let drained = q.close();
            let popped = match h.join() {
                Ok(p) => p,
                Err(_) => panic!("popper panicked"),
            };
            let mut all = drained;
            if let Some(v) = popped {
                all.push(v);
            }
            all.sort_unstable();
            assert_eq!(all, vec![1, 2], "every op surfaces exactly once");
            assert!(matches!(q.try_pop(), Pop::Closed));
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn dispatch_queue_is_fifo_until_closed() {
        let q = DispatchQueue::new();
        assert!(matches!(q.try_pop(), Pop::<u32>::Empty));
        assert!(q.push(1u32).is_ok());
        assert!(q.push(2u32).is_ok());
        assert_eq!(q.len(), 2);
        assert!(matches!(q.try_pop(), Pop::Item(1)));
        let drained = q.close();
        assert_eq!(drained, vec![2]);
        assert!(matches!(q.try_pop(), Pop::Closed));
        assert_eq!(q.push(3u32).err(), Some(3));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn addr_seed_is_stable_and_distinguishes_peers() {
        let a: SocketAddr = "127.0.0.1:7000".parse().expect("addr");
        let b: SocketAddr = "127.0.0.1:7001".parse().expect("addr");
        assert_eq!(addr_seed(&a), addr_seed(&a));
        assert_ne!(addr_seed(&a), addr_seed(&b));
    }
}
