//! # jbs-disk — rotating-disk and page-cache model
//!
//! The evaluation cluster in the paper has two Western Digital 500 GB SATA
//! drives per node (Sec. V). Disk behaviour drives two of the paper's key
//! results:
//!
//! * jobs with small intermediate data (≤ 64 GB) are barely disk-bound
//!   because Map Output Files (MOFs) "reside in disk cache or system
//!   buffers" (Sec. V-A) — modeled here by a node-wide [`PageCache`] that is
//!   populated on writes and consulted on reads;
//! * jobs with large data (≥ 128 GB) become disk-bound, and the win of JBS's
//!   batched, pipelined prefetching comes from restoring *sequential* disk
//!   access — modeled here by [`Disk`] charging a seek + rotational delay on
//!   every discontinuous access and pure transfer time on contiguous ones.
//!
//! [`NodeStorage`] combines the per-node disks and the shared page cache and
//! is the only type the upper layers normally touch.

pub mod model;
pub mod pagecache;
pub mod storage;

pub use model::{Disk, DiskParams, IoGrant};
pub use pagecache::{CacheOutcome, PageCache};
pub use storage::{CachePolicy, FileId, NodeStorage, ReadOutcome};
