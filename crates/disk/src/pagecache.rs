//! Node-wide OS page cache model.
//!
//! Block-granular (default 1 MiB) LRU over `(file, block)` pairs. Writes and
//! completed reads populate the cache; reads report which byte ranges hit
//! and which block-aligned runs must go to disk. This is the mechanism
//! behind the paper's observation that small jobs are served from "disk
//! cache or system buffers" while ≥128 GB jobs hit the spindles (Sec. V-A).

use jbs_des::lru::LruCache;

/// Key of one cached block.
type BlockKey = (u64, u64); // (file, block index)

/// Result of probing the cache for a read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Bytes of the request satisfied from memory.
    pub hit_bytes: u64,
    /// Block-aligned `(offset, len)` runs that must be read from disk.
    /// Runs are coalesced: adjacent missing blocks form one run.
    pub miss_runs: Vec<(u64, u64)>,
}

impl CacheOutcome {
    /// Total bytes that must come from disk.
    pub fn miss_bytes(&self) -> u64 {
        self.miss_runs.iter().map(|&(_, l)| l).sum()
    }

    /// True when the whole request was in memory.
    pub fn fully_cached(&self) -> bool {
        self.miss_runs.is_empty()
    }
}

/// Configuration snapshot of a [`PageCache`].
#[derive(Debug, Clone)]
pub struct PageCacheConfig {
    /// Cache capacity in bytes.
    pub capacity_bytes: u64,
    /// Block (page-cluster) size in bytes.
    pub block_size: u64,
}

/// The cache itself.
pub struct PageCache {
    block_size: u64,
    lru: LruCache<BlockKey, ()>,
    hit_bytes: u64,
    miss_bytes: u64,
}

impl PageCache {
    /// A cache of `capacity_bytes` with 256 KiB blocks (a typical kernel
    /// readahead window; also the granularity at which misses are clustered
    /// into disk requests).
    pub fn new(capacity_bytes: u64) -> Self {
        Self::with_block_size(capacity_bytes, 256 << 10)
    }

    /// A cache with an explicit block size (must divide into at least one
    /// block of capacity).
    pub fn with_block_size(capacity_bytes: u64, block_size: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let blocks = (capacity_bytes / block_size).max(1) as usize;
        PageCache {
            block_size,
            lru: LruCache::new(blocks),
            hit_bytes: 0,
            miss_bytes: 0,
        }
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.lru.capacity() as u64 * self.block_size
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.lru.len() as u64 * self.block_size
    }

    fn block_range(&self, offset: u64, len: u64) -> (u64, u64) {
        let first = offset / self.block_size;
        let last = if len == 0 {
            first
        } else {
            (offset + len - 1) / self.block_size
        };
        (first, last)
    }

    /// Probe the cache for a read of `[offset, offset+len)` in `file`.
    /// Hit blocks are touched (become MRU); missing blocks are *not*
    /// inserted — call [`PageCache::fill`] once the disk read completes.
    pub fn read(&mut self, file: u64, offset: u64, len: u64) -> CacheOutcome {
        if len == 0 {
            return CacheOutcome {
                hit_bytes: 0,
                miss_runs: Vec::new(),
            };
        }
        let (first, last) = self.block_range(offset, len);
        let mut hit_bytes = 0u64;
        let mut miss_runs: Vec<(u64, u64)> = Vec::new();
        for b in first..=last {
            let block_start = b * self.block_size;
            let block_end = block_start + self.block_size;
            // Portion of the request inside this block.
            let covered = (offset + len).min(block_end) - offset.max(block_start);
            if self.lru.touch(&(file, b)) {
                hit_bytes += covered;
            } else {
                // Whole blocks are fetched from disk (read-ahead clustering).
                match miss_runs.last_mut() {
                    Some((run_off, run_len)) if *run_off + *run_len == block_start => {
                        *run_len += self.block_size;
                    }
                    _ => miss_runs.push((block_start, self.block_size)),
                }
            }
        }
        self.hit_bytes += hit_bytes;
        self.miss_bytes += len - hit_bytes;
        CacheOutcome {
            hit_bytes,
            miss_runs,
        }
    }

    /// Insert the blocks covering `[offset, offset+len)` of `file`
    /// (after a disk read, or on a buffered write).
    pub fn fill(&mut self, file: u64, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let (first, last) = self.block_range(offset, len);
        for b in first..=last {
            self.lru.insert((file, b), ());
        }
    }

    /// Buffered write: populates the cache like `fill`.
    pub fn write(&mut self, file: u64, offset: u64, len: u64) {
        self.fill(file, offset, len);
    }

    /// Drop every cached block of `file` (e.g. when the file is deleted
    /// after a ReduceTask consumes it).
    pub fn invalidate_file(&mut self, file: u64) {
        let doomed: Vec<BlockKey> = self
            .lru
            .keys_mru()
            .into_iter()
            .filter(|&(f, _)| f == file)
            .collect();
        for k in doomed {
            self.lru.remove(&k);
        }
    }

    /// Lifetime hit bytes.
    pub fn total_hit_bytes(&self) -> u64 {
        self.hit_bytes
    }

    /// Lifetime miss bytes.
    pub fn total_miss_bytes(&self) -> u64 {
        self.miss_bytes
    }

    /// Lifetime byte hit ratio (0 when nothing read).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hit_bytes + self.miss_bytes;
        if total == 0 {
            0.0
        } else {
            self.hit_bytes as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn cold_read_misses_whole_range() {
        let mut c = PageCache::new(64 * MB);
        let o = c.read(1, 0, 4 * MB);
        assert_eq!(o.hit_bytes, 0);
        assert_eq!(o.miss_runs, vec![(0, 4 * MB)]);
        assert_eq!(o.miss_bytes(), 4 * MB);
        assert!(!o.fully_cached());
    }

    #[test]
    fn fill_then_read_hits() {
        let mut c = PageCache::new(64 * MB);
        c.fill(1, 0, 4 * MB);
        let o = c.read(1, 0, 4 * MB);
        assert!(o.fully_cached());
        assert_eq!(o.hit_bytes, 4 * MB);
        assert!((c.hit_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn write_populates_cache() {
        let mut c = PageCache::new(64 * MB);
        c.write(2, MB, 2 * MB);
        let o = c.read(2, MB, 2 * MB);
        assert!(o.fully_cached());
    }

    #[test]
    fn partial_hit_reports_miss_runs() {
        let mut c = PageCache::with_block_size(64 * MB, MB);
        c.fill(1, 0, MB); // block 0 only
        c.fill(1, 2 * MB, MB); // block 2 only
        let o = c.read(1, 0, 4 * MB); // blocks 0..3
        assert_eq!(o.hit_bytes, 2 * MB);
        assert_eq!(o.miss_runs, vec![(MB, MB), (3 * MB, MB)]);
    }

    #[test]
    fn adjacent_missing_blocks_coalesce() {
        let mut c = PageCache::with_block_size(64 * MB, MB);
        c.fill(1, 0, MB);
        let o = c.read(1, 0, 8 * MB);
        assert_eq!(o.miss_runs, vec![(MB, 7 * MB)]);
    }

    #[test]
    fn eviction_under_pressure() {
        let mut c = PageCache::new(4 * MB);
        c.fill(1, 0, 4 * MB); // fills cache exactly
        c.fill(2, 0, 2 * MB); // evicts two LRU blocks of file 1
        let o = c.read(1, 0, 4 * MB);
        assert_eq!(o.hit_bytes, 2 * MB);
        assert!(c.resident_bytes() <= c.capacity_bytes());
    }

    #[test]
    fn unaligned_read_accounts_partial_blocks() {
        let mut c = PageCache::with_block_size(64 * MB, MB);
        c.fill(1, 0, MB);
        // Read 512 KiB spanning the end of block 0 and start of block 1.
        let o = c.read(1, MB - 256 * 1024, 512 * 1024);
        assert_eq!(o.hit_bytes, 256 * 1024);
        assert_eq!(o.miss_runs, vec![(MB, MB)]);
    }

    #[test]
    fn invalidate_file_drops_only_that_file() {
        let mut c = PageCache::new(64 * MB);
        c.fill(1, 0, 2 * MB);
        c.fill(2, 0, 2 * MB);
        c.invalidate_file(1);
        assert!(!c.read(1, 0, 2 * MB).fully_cached());
        assert!(c.read(2, 0, 2 * MB).fully_cached());
    }

    #[test]
    fn default_block_is_readahead_sized() {
        let c = PageCache::new(64 * MB);
        assert_eq!(c.block_size(), 256 << 10);
        assert_eq!(c.capacity_bytes(), 64 * MB);
    }

    #[test]
    fn zero_length_read_is_noop() {
        let mut c = PageCache::new(4 * MB);
        let o = c.read(1, 123, 0);
        assert_eq!(o.hit_bytes, 0);
        assert!(o.miss_runs.is_empty());
        assert!(o.fully_cached());
    }
}
