//! Per-node storage: a set of disks behind one shared page cache.
//!
//! Files are statically routed to a disk by hashing the file id, as Hadoop's
//! `LocalDirAllocator` spreads MOFs and spills across the configured local
//! directories. Reads probe the page cache first; only miss runs touch the
//! platter. Buffered writes return immediately (writeback) but still occupy
//! the disk arm, so heavy write traffic delays later reads — visible during
//! the spill-heavy map phase of large jobs.

use crate::model::{Disk, DiskParams};
use crate::pagecache::PageCache;
use jbs_des::SimTime;
use std::fmt;

/// Identifier of a simulated file (MOF, index file, spill, HDFS block...).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
)]
pub struct FileId(pub u64);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// Result of a read against [`NodeStorage`].
#[derive(Debug, Clone, Copy)]
pub struct ReadOutcome {
    /// When the last byte was available.
    pub completed: SimTime,
    /// Bytes served from the page cache.
    pub hit_bytes: u64,
    /// Bytes read from a platter (block-aligned, may exceed the request).
    pub disk_bytes: u64,
    /// Positioning penalties paid.
    pub seeks: u32,
}

impl ReadOutcome {
    /// True when no platter access was needed.
    pub fn fully_cached(&self) -> bool {
        self.disk_bytes == 0
    }
}

/// Whether an access should populate the page cache.
///
/// Streaming use-once traffic — HDFS input reads, final output writes —
/// behaves like `Bypass` on a real kernel (drop-behind / writeback then
/// reclaim), so it must not evict the freshly written MOFs that the
/// shuffle is about to read. MOF and spill traffic is `Cache`d.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Populate the cache (hot data: MOFs, spills).
    Cache,
    /// Probe the cache but do not populate it (use-once streams).
    Bypass,
}

/// All storage of one node.
pub struct NodeStorage {
    disks: Vec<Disk>,
    cache: PageCache,
}

impl NodeStorage {
    /// `ndisks` identical drives sharing a page cache of `cache_bytes`.
    pub fn new(ndisks: usize, params: DiskParams, cache_bytes: u64) -> Self {
        assert!(ndisks >= 1, "need at least one disk");
        NodeStorage {
            disks: (0..ndisks).map(|_| Disk::new(params.clone())).collect(),
            cache: PageCache::new(cache_bytes),
        }
    }

    /// Which disk a file lives on.
    pub fn disk_for(&self, file: FileId) -> usize {
        // Fibonacci hashing spreads consecutive ids across drives.
        (file.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.disks.len()
    }

    /// Read `[offset, offset+len)` of `file`, submitted at `now`, with an
    /// explicit cache policy.
    pub fn read_with(
        &mut self,
        now: SimTime,
        file: FileId,
        offset: u64,
        len: u64,
        policy: CachePolicy,
    ) -> ReadOutcome {
        let probe = self.cache.read(file.0, offset, len);
        if probe.fully_cached() {
            return ReadOutcome {
                completed: now,
                hit_bytes: probe.hit_bytes,
                disk_bytes: 0,
                seeks: 0,
            };
        }
        let disk = self.disk_for(file);
        let mut completed = now;
        let mut disk_bytes = 0u64;
        let mut seeks = 0u32;
        for &(run_off, run_len) in &probe.miss_runs {
            let g = self.disks[disk].read(now, file.0, run_off, run_len);
            completed = completed.max(g.end);
            disk_bytes += run_len;
            if g.seeked {
                seeks += 1;
            }
            if policy == CachePolicy::Cache {
                self.cache.fill(file.0, run_off, run_len);
            }
        }
        ReadOutcome {
            completed,
            hit_bytes: probe.hit_bytes,
            disk_bytes,
            seeks,
        }
    }

    /// Cached read (see [`NodeStorage::read_with`]).
    pub fn read(&mut self, now: SimTime, file: FileId, offset: u64, len: u64) -> ReadOutcome {
        self.read_with(now, file, offset, len, CachePolicy::Cache)
    }

    /// Buffered write with an explicit cache policy: returns at once and
    /// charges the platter asynchronously (the arm stays busy, delaying
    /// later I/O).
    pub fn write_with(
        &mut self,
        now: SimTime,
        file: FileId,
        offset: u64,
        len: u64,
        policy: CachePolicy,
    ) -> SimTime {
        if len == 0 {
            return now;
        }
        if policy == CachePolicy::Cache {
            self.cache.write(file.0, offset, len);
        }
        let disk = self.disk_for(file);
        self.disks[disk].write(now, file.0, offset, len);
        now
    }

    /// Buffered cached write (see [`NodeStorage::write_with`]).
    pub fn write(&mut self, now: SimTime, file: FileId, offset: u64, len: u64) -> SimTime {
        self.write_with(now, file, offset, len, CachePolicy::Cache)
    }

    /// Synchronous (write-through) write: returns when the data is on the
    /// platter. Used for fsync-like barriers, e.g. committing a MOF index.
    pub fn write_sync(&mut self, now: SimTime, file: FileId, offset: u64, len: u64) -> SimTime {
        self.write_sync_with(now, file, offset, len, CachePolicy::Cache)
    }

    /// Synchronous write with an explicit cache policy.
    pub fn write_sync_with(
        &mut self,
        now: SimTime,
        file: FileId,
        offset: u64,
        len: u64,
        policy: CachePolicy,
    ) -> SimTime {
        if len == 0 {
            return now;
        }
        if policy == CachePolicy::Cache {
            self.cache.write(file.0, offset, len);
        }
        let disk = self.disk_for(file);
        self.disks[disk].write(now, file.0, offset, len).end
    }

    /// Drop cached blocks of a file (after its consumer is done with it).
    pub fn invalidate(&mut self, file: FileId) {
        self.cache.invalidate_file(file.0);
    }

    /// Earliest time the file's disk frees up.
    pub fn disk_next_free(&self, file: FileId) -> SimTime {
        self.disks[self.disk_for(file)].next_free()
    }

    /// Aggregate busy time across all arms.
    pub fn total_disk_busy(&self) -> SimTime {
        self.disks.iter().map(|d| d.busy_time()).sum()
    }

    /// Aggregate seek count across all arms.
    pub fn total_seeks(&self) -> u64 {
        self.disks.iter().map(|d| d.seeks()).sum()
    }

    /// Aggregate platter bytes read.
    pub fn total_bytes_read(&self) -> u64 {
        self.disks.iter().map(|d| d.bytes_read()).sum()
    }

    /// Aggregate platter bytes written.
    pub fn total_bytes_written(&self) -> u64 {
        self.disks.iter().map(|d| d.bytes_written()).sum()
    }

    /// The shared page cache (for statistics).
    pub fn cache(&self) -> &PageCache {
        &self.cache
    }

    /// Number of drives.
    pub fn ndisks(&self) -> usize {
        self.disks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn storage() -> NodeStorage {
        NodeStorage::new(2, DiskParams::sata_500gb(), 64 * MB)
    }

    #[test]
    fn cold_read_goes_to_disk() {
        let mut s = storage();
        let r = s.read(SimTime::ZERO, FileId(1), 0, 4 * MB);
        assert!(!r.fully_cached());
        assert_eq!(r.disk_bytes, 4 * MB);
        assert!(r.completed > SimTime::ZERO);
        assert_eq!(r.seeks, 1);
    }

    #[test]
    fn warm_read_is_instant() {
        let mut s = storage();
        s.write(SimTime::ZERO, FileId(1), 0, 4 * MB);
        let r = s.read(SimTime::from_secs(1), FileId(1), 0, 4 * MB);
        assert!(r.fully_cached());
        assert_eq!(r.completed, SimTime::from_secs(1));
        assert_eq!(r.hit_bytes, 4 * MB);
    }

    #[test]
    fn files_spread_across_disks() {
        let s = storage();
        let mut on0 = 0;
        for i in 0..100 {
            if s.disk_for(FileId(i)) == 0 {
                on0 += 1;
            }
        }
        assert!(on0 > 20 && on0 < 80, "distribution skewed: {on0}/100");
    }

    #[test]
    fn buffered_write_returns_immediately_but_occupies_arm() {
        let mut s = storage();
        let f = FileId(1);
        let t = s.write(SimTime::ZERO, f, 0, 100 * MB);
        assert_eq!(t, SimTime::ZERO);
        // A cold read of a *different* file on the same disk must wait for
        // the writeback.
        let same_disk_file = (0..1000)
            .map(FileId)
            .find(|&g| g != f && s.disk_for(g) == s.disk_for(f))
            .unwrap();
        let r = s.read(SimTime::ZERO, same_disk_file, 0, MB);
        assert!(r.completed.as_secs_f64() > 0.9, "read at {}", r.completed);
    }

    #[test]
    fn sync_write_waits_for_platter() {
        let mut s = storage();
        let t = s.write_sync(SimTime::ZERO, FileId(3), 0, 100 * MB);
        assert!(t.as_secs_f64() > 0.9);
        assert_eq!(
            s.write_sync(SimTime::ZERO, FileId(3), 0, 0),
            SimTime::ZERO
        );
    }

    #[test]
    fn invalidate_forces_disk_read() {
        let mut s = storage();
        s.write(SimTime::ZERO, FileId(1), 0, MB);
        s.invalidate(FileId(1));
        let r = s.read(SimTime::from_secs(5), FileId(1), 0, MB);
        assert!(!r.fully_cached());
    }

    #[test]
    fn bypass_read_does_not_populate_cache() {
        let mut s = storage();
        let r1 = s.read_with(SimTime::ZERO, FileId(1), 0, MB, CachePolicy::Bypass);
        assert!(!r1.fully_cached());
        // Re-reading must hit the disk again: bypass did not fill.
        let r2 = s.read_with(r1.completed, FileId(1), 0, MB, CachePolicy::Bypass);
        assert!(!r2.fully_cached());
    }

    #[test]
    fn bypass_write_does_not_populate_cache() {
        let mut s = storage();
        s.write_with(SimTime::ZERO, FileId(1), 0, MB, CachePolicy::Bypass);
        assert!(!s.read(SimTime::from_secs(1), FileId(1), 0, MB).fully_cached());
        let t = s.write_sync_with(SimTime::from_secs(2), FileId(2), 0, MB, CachePolicy::Bypass);
        assert!(t > SimTime::from_secs(2));
        assert!(!s.read(t, FileId(2), 0, MB).fully_cached());
    }

    #[test]
    fn bypass_read_still_uses_existing_cache_entries() {
        let mut s = storage();
        s.write(SimTime::ZERO, FileId(1), 0, MB); // cached
        let r = s.read_with(SimTime::from_secs(1), FileId(1), 0, MB, CachePolicy::Bypass);
        assert!(r.fully_cached());
    }

    #[test]
    fn totals_accumulate() {
        let mut s = storage();
        s.write(SimTime::ZERO, FileId(1), 0, MB);
        s.read(SimTime::ZERO, FileId(2), 0, MB);
        assert_eq!(s.total_bytes_written(), MB);
        assert_eq!(s.total_bytes_read(), MB);
        assert!(s.total_seeks() >= 2);
        assert!(s.total_disk_busy() > SimTime::ZERO);
        assert_eq!(s.ndisks(), 2);
    }
}
