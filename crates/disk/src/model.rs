//! The mechanical disk: one arm, seek/rotational positioning costs, and a
//! sequential transfer rate.
//!
//! The model intentionally stays at the level that shapes the paper's
//! results: a request contiguous with the previous one on the same file pays
//! only transfer time; any discontinuity pays an average seek plus half a
//! rotation. The arm is a FIFO resource, so interleaved request streams from
//! concurrent HttpServlets destroy sequentiality exactly as they do on real
//! hardware (Fig. 2a, Fig. 4 vs. Fig. 5).

use jbs_des::server::{FifoServer, Grant};
use jbs_des::SimTime;

/// Mechanical characteristics of one drive.
#[derive(Debug, Clone)]
pub struct DiskParams {
    /// Sequential read bandwidth in bytes/second.
    pub seq_read_bw: f64,
    /// Sequential write bandwidth in bytes/second.
    pub seq_write_bw: f64,
    /// Average seek time.
    pub avg_seek: SimTime,
    /// Average rotational delay (half a revolution).
    pub avg_rotational: SimTime,
    /// Fixed per-request controller/command overhead.
    pub per_request_overhead: SimTime,
}

impl DiskParams {
    /// A circa-2012 7200 rpm 500 GB SATA drive, as in the paper's testbed:
    /// ~110 MB/s outer-zone sequential reads, 8.5 ms average seek, 4.16 ms
    /// average rotational delay.
    pub fn sata_500gb() -> Self {
        DiskParams {
            seq_read_bw: 110.0 * 1e6,
            seq_write_bw: 100.0 * 1e6,
            avg_seek: SimTime::from_micros(8_500),
            avg_rotational: SimTime::from_micros(4_160),
            per_request_overhead: SimTime::from_micros(100),
        }
    }

    /// Positioning cost paid on any non-contiguous access.
    pub fn positioning(&self) -> SimTime {
        self.avg_seek + self.avg_rotational
    }

    /// Pure transfer time for `bytes` at the sequential read rate.
    pub fn read_transfer(&self, bytes: u64) -> SimTime {
        SimTime::for_bytes(bytes, self.seq_read_bw)
    }

    /// Pure transfer time for `bytes` at the sequential write rate.
    pub fn write_transfer(&self, bytes: u64) -> SimTime {
        SimTime::for_bytes(bytes, self.seq_write_bw)
    }
}

/// Result of an I/O submission.
#[derive(Debug, Clone, Copy)]
pub struct IoGrant {
    /// When the device started working on the request.
    pub start: SimTime,
    /// When the data was on (or off) the platter.
    pub end: SimTime,
    /// Whether the request paid a positioning (seek + rotation) penalty.
    pub seeked: bool,
}

/// Identifies the head position after the last completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeadPos {
    file: u64,
    /// Byte offset just past the last transfer.
    end_offset: u64,
}

/// One drive: a FIFO arm plus head-position tracking.
#[derive(Debug, Clone)]
pub struct Disk {
    params: DiskParams,
    arm: FifoServer,
    head: Option<HeadPos>,
    seeks: u64,
    sequential: u64,
    bytes_read: u64,
    bytes_written: u64,
}

impl Disk {
    /// A new idle drive.
    pub fn new(params: DiskParams) -> Self {
        Disk {
            params,
            arm: FifoServer::new(),
            head: None,
            seeks: 0,
            sequential: 0,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    fn access(&mut self, now: SimTime, file: u64, offset: u64, bytes: u64, write: bool) -> IoGrant {
        let contiguous = self.head == Some(HeadPos {
            file,
            end_offset: offset,
        });
        let positioning = if contiguous {
            SimTime::ZERO
        } else {
            self.params.positioning()
        };
        let transfer = if write {
            self.params.write_transfer(bytes)
        } else {
            self.params.read_transfer(bytes)
        };
        let service = self.params.per_request_overhead + positioning + transfer;
        let Grant { start, end } = self.arm.serve(now, service);
        self.head = Some(HeadPos {
            file,
            end_offset: offset + bytes,
        });
        if contiguous {
            self.sequential += 1;
        } else {
            self.seeks += 1;
        }
        if write {
            self.bytes_written += bytes;
        } else {
            self.bytes_read += bytes;
        }
        IoGrant {
            start,
            end,
            seeked: !contiguous,
        }
    }

    /// Read `bytes` from `file` at `offset`, submitted at `now`.
    pub fn read(&mut self, now: SimTime, file: u64, offset: u64, bytes: u64) -> IoGrant {
        self.access(now, file, offset, bytes, false)
    }

    /// Write `bytes` to `file` at `offset`, submitted at `now`.
    pub fn write(&mut self, now: SimTime, file: u64, offset: u64, bytes: u64) -> IoGrant {
        self.access(now, file, offset, bytes, true)
    }

    /// When the arm frees up for a new request.
    pub fn next_free(&self) -> SimTime {
        self.arm.next_free()
    }

    /// Total time the arm has been busy.
    pub fn busy_time(&self) -> SimTime {
        self.arm.busy_time()
    }

    /// Requests that paid a positioning penalty.
    pub fn seeks(&self) -> u64 {
        self.seeks
    }

    /// Requests that were contiguous with their predecessor.
    pub fn sequential_requests(&self) -> u64 {
        self.sequential
    }

    /// Total bytes read from the platter.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written to the platter.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// The drive's parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(DiskParams::sata_500gb())
    }

    #[test]
    fn first_access_seeks() {
        let mut d = disk();
        let g = d.read(SimTime::ZERO, 1, 0, 1 << 20);
        assert!(g.seeked);
        assert_eq!(d.seeks(), 1);
        // 1 MiB at 110 MB/s ~ 9.53 ms plus ~12.76 ms positioning/overhead.
        let secs = g.end.as_secs_f64();
        assert!(secs > 0.020 && secs < 0.025, "took {secs}");
    }

    #[test]
    fn contiguous_read_skips_positioning() {
        let mut d = disk();
        let a = d.read(SimTime::ZERO, 1, 0, 1 << 20);
        let b = d.read(a.end, 1, 1 << 20, 1 << 20);
        assert!(!b.seeked);
        assert_eq!(d.sequential_requests(), 1);
        let dur = (b.end - b.start).as_secs_f64();
        // Just overhead + transfer: ~9.6 ms.
        assert!(dur < 0.011, "contiguous read took {dur}");
    }

    #[test]
    fn switching_files_seeks() {
        let mut d = disk();
        let a = d.read(SimTime::ZERO, 1, 0, 4096);
        let b = d.read(a.end, 2, 0, 4096);
        assert!(b.seeked);
        let c = d.read(b.end, 1, 4096, 4096);
        assert!(c.seeked, "head moved to file 2, returning must seek");
    }

    #[test]
    fn arm_is_fifo() {
        let mut d = disk();
        let a = d.read(SimTime::ZERO, 1, 0, 100 << 20);
        let b = d.read(SimTime::from_millis(1), 2, 0, 4096);
        assert_eq!(b.start, a.end);
    }

    #[test]
    fn interleaving_destroys_sequentiality() {
        // Two files read alternately: every request seeks. Same pattern
        // read one-file-at-a-time: only two seeks. This asymmetry is the
        // mechanism behind MOFSupplier's request grouping.
        let mut inter = disk();
        let mut t = SimTime::ZERO;
        for i in 0..16u64 {
            let file = 1 + (i % 2);
            let off = (i / 2) * 4096;
            t = inter.read(t, file, off, 4096).end;
        }
        let mut grouped = disk();
        let mut t2 = SimTime::ZERO;
        for file in 1..=2u64 {
            for j in 0..8u64 {
                t2 = grouped.read(t2, file, j * 4096, 4096).end;
            }
        }
        assert_eq!(inter.seeks(), 16);
        assert_eq!(grouped.seeks(), 2);
        assert!(t2 < t, "grouped {t2} should beat interleaved {t}");
    }

    #[test]
    fn write_accounting() {
        let mut d = disk();
        d.write(SimTime::ZERO, 9, 0, 1 << 20);
        assert_eq!(d.bytes_written(), 1 << 20);
        assert_eq!(d.bytes_read(), 0);
        assert!(d.busy_time() > SimTime::ZERO);
    }

    #[test]
    fn write_then_contiguous_read_is_sequential() {
        let mut d = disk();
        let w = d.write(SimTime::ZERO, 9, 0, 4096);
        let r = d.read(w.end, 9, 4096, 4096);
        assert!(!r.seeked);
    }
}
