//! Job descriptions: input size, shuffle volume, and per-byte compute
//! costs.
//!
//! A job is characterized by the quantities that shape the paper's
//! figures: how many bytes the map phase reads, how many it emits into the
//! shuffle (`shuffle_ratio` — 1.0 for Terasort, ≥1 for the shuffle-heavy
//! Tarazu benchmarks, ≪1 for WordCount/Grep), and how much CPU the
//! user-defined map/reduce functions burn per byte. `jbs-workloads` builds
//! these specs for each benchmark in Sec. V-F.

use jbs_des::SimTime;

/// Workload description consumed by the job simulator.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Benchmark name ("Terasort", "SelfJoin", ...).
    pub name: String,
    /// Total job input in bytes.
    pub input_bytes: u64,
    /// Intermediate (shuffled) bytes per input byte.
    pub shuffle_ratio: f64,
    /// Final output bytes per intermediate byte.
    pub output_ratio: f64,
    /// CPU seconds per input byte in the map function + map-side sort.
    pub map_cpu_per_byte: f64,
    /// CPU seconds per intermediate byte in the reduce function.
    pub reduce_cpu_per_byte: f64,
    /// Average key+value record size in bytes (drives per-record merge
    /// costs).
    pub avg_record_bytes: u64,
    /// Fixed task initialization cost (JVM launch, split localization).
    pub task_init: SimTime,
    /// Fixed task cleanup/commit cost.
    pub task_cleanup: SimTime,
}

impl JobSpec {
    /// Terasort on `input_bytes`: 100-byte records, intermediate data equal
    /// to input ("whose size of intermediate data is equal to its input
    /// size", Sec. V), output equal to intermediate.
    pub fn terasort(input_bytes: u64) -> Self {
        JobSpec {
            name: "Terasort".into(),
            input_bytes,
            shuffle_ratio: 1.0,
            output_ratio: 1.0,
            map_cpu_per_byte: 10.0e-9,
            reduce_cpu_per_byte: 3.0e-9,
            avg_record_bytes: 100,
            task_init: SimTime::from_millis(3000),
            task_cleanup: SimTime::from_millis(500),
        }
    }

    /// Number of MapTasks (one per HDFS block).
    pub fn num_maps(&self, block_bytes: u64) -> usize {
        (self.input_bytes.div_ceil(block_bytes)).max(1) as usize
    }

    /// Total intermediate bytes the shuffle must move.
    pub fn shuffle_bytes(&self) -> u64 {
        (self.input_bytes as f64 * self.shuffle_ratio) as u64
    }

    /// Total final output bytes.
    pub fn output_bytes(&self) -> u64 {
        (self.shuffle_bytes() as f64 * self.output_ratio) as u64
    }

    /// Sanity checks; called by the simulator before running.
    pub fn validate(&self) -> Result<(), String> {
        if self.input_bytes == 0 {
            return Err("job needs input".into());
        }
        if self.shuffle_ratio < 0.0 || self.output_ratio < 0.0 {
            return Err("ratios must be non-negative".into());
        }
        if self.avg_record_bytes == 0 {
            return Err("record size must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terasort_shuffles_its_input() {
        let j = JobSpec::terasort(32 << 30);
        assert_eq!(j.shuffle_bytes(), 32 << 30);
        assert_eq!(j.output_bytes(), 32 << 30);
        assert_eq!(j.avg_record_bytes, 100);
        assert!(j.validate().is_ok());
    }

    #[test]
    fn map_count_rounds_up() {
        let j = JobSpec::terasort(300 << 20);
        assert_eq!(j.num_maps(256 << 20), 2);
        let j2 = JobSpec::terasort(256 << 20);
        assert_eq!(j2.num_maps(256 << 20), 1);
        let j3 = JobSpec::terasort(1);
        assert_eq!(j3.num_maps(256 << 20), 1);
    }

    #[test]
    fn validation() {
        let mut j = JobSpec::terasort(1 << 30);
        j.input_bytes = 0;
        assert!(j.validate().is_err());
        let mut j = JobSpec::terasort(1 << 30);
        j.shuffle_ratio = -1.0;
        assert!(j.validate().is_err());
        let mut j = JobSpec::terasort(1 << 30);
        j.avg_record_bytes = 0;
        assert!(j.validate().is_err());
    }
}
