//! Sorting and k-way streaming merge of key/value runs.
//!
//! This is the algorithmic substrate shared by the MapTask's sort/spill,
//! the ReduceTask's sort/merge, and JBS's network-levitated merge: the
//! NetMerger merges *remote* segments by streaming their headers through
//! transport buffers and never materializing whole segments on disk
//! (Sec. III-C, and \[29\]). The merge here is a real algorithm operating on
//! real records — the simulator charges time for it, and the loopback
//! dataplane in `jbs-transport` runs it on genuine bytes.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One key/value record.
pub type Record = (Vec<u8>, Vec<u8>);

/// Sort records by key (ties keep value order unspecified but
/// deterministic: value is the secondary key).
pub fn sort_run(records: &mut [Record]) {
    records.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
}

/// Check that a slice of records is non-decreasing by key.
pub fn is_sorted(records: &[Record]) -> bool {
    records.windows(2).all(|w| w[0].0 <= w[1].0)
}

struct HeapItem {
    key: Vec<u8>,
    value: Vec<u8>,
    run: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.run == other.run
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; break key ties by run index so the merge
        // is stable with respect to run order.
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.run.cmp(&self.run))
    }
}

/// A k-way merge over sorted record iterators.
///
/// Yields records in non-decreasing key order; among equal keys, records
/// from lower-indexed runs come first (stability across runs).
pub struct KWayMerge<I: Iterator<Item = Record>> {
    runs: Vec<I>,
    heap: BinaryHeap<HeapItem>,
    comparisons: u64,
}

impl<I: Iterator<Item = Record>> KWayMerge<I> {
    /// Build a merge over `runs`; each run must already be key-sorted.
    pub fn new(runs: Vec<I>) -> Self {
        let mut merge = KWayMerge {
            heap: BinaryHeap::with_capacity(runs.len()),
            runs,
            comparisons: 0,
        };
        for i in 0..merge.runs.len() {
            merge.refill(i);
        }
        merge
    }

    fn refill(&mut self, run: usize) {
        if let Some((key, value)) = self.runs[run].next() {
            self.heap.push(HeapItem { key, value, run });
        }
    }

    /// Number of heap operations performed (a proxy for merge CPU work,
    /// used to calibrate simulated merge cost).
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }
}

impl<I: Iterator<Item = Record>> Iterator for KWayMerge<I> {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        let item = self.heap.pop()?;
        self.comparisons += (self.heap.len().max(1) as f64).log2().ceil() as u64 + 1;
        self.refill(item.run);
        Some((item.key, item.value))
    }
}

/// Merge fully-materialized sorted runs into one sorted vector.
pub fn merge_sorted_runs(runs: Vec<Vec<Record>>) -> Vec<Record> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let merge = KWayMerge::new(runs.into_iter().map(|r| r.into_iter()).collect());
    let mut out = Vec::with_capacity(total);
    out.extend(merge);
    out
}

/// Hierarchical merge (the paper's follow-up work \[22\], "Hierarchical
/// Merge for Efficient MapReduce"): when the number of runs exceeds the
/// fan-in, merge groups of `fanin` runs into intermediate runs and recurse,
/// bounding the merge heap to `fanin` entries at every level.
///
/// Produces exactly the same record sequence as a flat
/// [`merge_sorted_runs`]; the difference is the working-set bound, which
/// is what lets a NetMerger with thousands of segments keep per-segment
/// buffers small.
pub fn hierarchical_merge(mut runs: Vec<Vec<Record>>, fanin: usize) -> Vec<Record> {
    assert!(fanin >= 2, "fan-in must be at least 2");
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(fanin));
        let mut batch = Vec::with_capacity(fanin);
        for run in runs {
            batch.push(run);
            if batch.len() == fanin {
                next.push(merge_sorted_runs(std::mem::take(&mut batch)));
            }
        }
        if !batch.is_empty() {
            next.push(merge_sorted_runs(batch));
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

/// The number of merge passes a multi-pass (hierarchical) merge needs to
/// reduce `runs` runs with a fan-in of `fanin` (Hadoop's `io.sort.factor`).
pub fn merge_passes(runs: usize, fanin: usize) -> u32 {
    assert!(fanin >= 2, "fan-in must be at least 2");
    if runs <= 1 {
        return 0;
    }
    let mut passes = 0;
    let mut r = runs;
    while r > 1 {
        r = r.div_ceil(fanin);
        passes += 1;
    }
    passes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: &str, v: &str) -> Record {
        (k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn sort_run_orders_by_key() {
        let mut r = vec![rec("b", "2"), rec("a", "1"), rec("c", "3"), rec("a", "0")];
        sort_run(&mut r);
        assert!(is_sorted(&r));
        assert_eq!(r[0], rec("a", "0"));
        assert_eq!(r[1], rec("a", "1"));
    }

    #[test]
    fn merge_two_runs() {
        let a = vec![rec("a", "1"), rec("c", "3"), rec("e", "5")];
        let b = vec![rec("b", "2"), rec("d", "4"), rec("f", "6")];
        let merged = merge_sorted_runs(vec![a, b]);
        let keys: Vec<_> = merged.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(
            keys,
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec(), b"e".to_vec(), b"f".to_vec()]
        );
    }

    #[test]
    fn merge_is_stable_across_runs() {
        let a = vec![rec("k", "from-run-0")];
        let b = vec![rec("k", "from-run-1")];
        let merged = merge_sorted_runs(vec![a, b]);
        assert_eq!(merged[0].1, b"from-run-0");
        assert_eq!(merged[1].1, b"from-run-1");
    }

    #[test]
    fn merge_handles_empty_and_uneven_runs() {
        let merged = merge_sorted_runs(vec![
            vec![],
            vec![rec("a", "1")],
            vec![],
            vec![rec("a", "2"), rec("b", "3"), rec("z", "9")],
        ]);
        assert_eq!(merged.len(), 4);
        assert!(is_sorted(&merged));
        assert!(merge_sorted_runs(vec![]).is_empty());
    }

    #[test]
    fn merge_of_many_runs_matches_global_sort() {
        use jbs_des::DetRng;
        let mut rng = DetRng::new(33);
        let mut all = Vec::new();
        let mut runs = Vec::new();
        for _ in 0..8 {
            let mut run: Vec<Record> = (0..100)
                .map(|_| {
                    let k = rng.uniform_u64(0, 1000);
                    (format!("{k:05}").into_bytes(), vec![0u8; 8])
                })
                .collect();
            sort_run(&mut run);
            all.extend(run.clone());
            runs.push(run);
        }
        let merged = merge_sorted_runs(runs);
        sort_run(&mut all);
        let merged_keys: Vec<_> = merged.iter().map(|(k, _)| k).collect();
        let all_keys: Vec<_> = all.iter().map(|(k, _)| k).collect();
        assert_eq!(merged_keys, all_keys);
    }

    #[test]
    fn comparisons_counted() {
        let runs: Vec<Vec<Record>> = (0..4)
            .map(|i| vec![rec(&format!("{i}"), "v")])
            .collect();
        let mut m = KWayMerge::new(runs.into_iter().map(|r| r.into_iter()).collect());
        assert_eq!(m.comparisons(), 0);
        while m.next().is_some() {}
        assert!(m.comparisons() > 0);
    }

    #[test]
    fn hierarchical_merge_equals_flat_merge() {
        use jbs_des::DetRng;
        let mut rng = DetRng::new(55);
        let runs: Vec<Vec<Record>> = (0..23)
            .map(|_| {
                let mut run: Vec<Record> = (0..rng.uniform_u64(0, 40))
                    .map(|_| (format!("{:04}", rng.uniform_u64(0, 500)).into_bytes(), vec![1]))
                    .collect();
                sort_run(&mut run);
                run
            })
            .collect();
        let flat = merge_sorted_runs(runs.clone());
        for fanin in [2usize, 3, 10, 64] {
            let hier = hierarchical_merge(runs.clone(), fanin);
            let hier_keys: Vec<&Vec<u8>> = hier.iter().map(|(k, _)| k).collect();
            let flat_keys: Vec<&Vec<u8>> = flat.iter().map(|(k, _)| k).collect();
            assert_eq!(hier_keys, flat_keys, "fan-in {fanin}");
            assert!(is_sorted(&hier));
        }
    }

    #[test]
    fn hierarchical_merge_edge_cases() {
        assert!(hierarchical_merge(vec![], 2).is_empty());
        let one = vec![vec![rec("a", "1")]];
        assert_eq!(hierarchical_merge(one, 2).len(), 1);
    }

    #[test]
    #[should_panic]
    fn hierarchical_merge_rejects_tiny_fanin() {
        hierarchical_merge(vec![vec![]], 1);
    }

    #[test]
    fn merge_passes_math() {
        assert_eq!(merge_passes(0, 10), 0);
        assert_eq!(merge_passes(1, 10), 0);
        assert_eq!(merge_passes(10, 10), 1);
        assert_eq!(merge_passes(11, 10), 2);
        assert_eq!(merge_passes(100, 10), 2);
        assert_eq!(merge_passes(101, 10), 3);
    }

    #[test]
    #[should_panic]
    fn merge_passes_rejects_tiny_fanin() {
        merge_passes(4, 1);
    }
}
