//! The job driver: map phase → shuffle engine → reduce phase → result.

use crate::cluster::ClusterConfig;
use crate::job::JobSpec;
use crate::sim::engine::ShuffleEngine;
use crate::sim::mapphase::run_map_phase;
use crate::sim::plan::{ReducerInfo, ShufflePlan};
use crate::sim::state::SimCluster;
use jbs_des::cpu::average_utilization;
use jbs_des::{CpuMeter, SimTime};
use jbs_disk::CachePolicy;

/// Output write granularity in the reduce phase.
const OUTPUT_WRITE_UNIT: u64 = 4 << 20;

/// CPU per output byte (serialization + HDFS write path).
const OUTPUT_WRITE_CPU_PER_BYTE: f64 = 1.0e-9;

/// Everything measured about one simulated job run.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Engine display name.
    pub engine: String,
    /// Job execution time (what the paper's figures plot).
    pub job_time: SimTime,
    /// When the last MapTask committed.
    pub map_phase_end: SimTime,
    /// When the last reducer's input was fetched and merged.
    pub shuffle_all_ready: SimTime,
    /// Bytes moved by the shuffle.
    pub bytes_shuffled: u64,
    /// Reduce-side bytes spilled to disk during shuffle/merge.
    pub spilled_bytes: u64,
    /// Connections the engine established.
    pub connections_established: u64,
    /// Connections torn down by the LRU cap.
    pub connections_evicted: u64,
    /// Per-node CPU meters for utilization analysis (Fig. 10).
    pub cpu: Vec<CpuMeter>,
    /// Per-reducer completion times.
    pub reducer_done: Vec<SimTime>,
    /// Aggregate disk-arm busy time across all nodes.
    pub disk_busy: SimTime,
    /// Aggregate positioning (seek) count across all nodes.
    pub disk_seeks: u64,
    /// Aggregate platter bytes read.
    pub disk_bytes_read: u64,
    /// Aggregate platter bytes written.
    pub disk_bytes_written: u64,
}

impl JobResult {
    /// Mean CPU utilization (%) across slaves over the job's lifetime —
    /// the quantity behind the paper's "lower\[s\] the CPU utilization by
    /// 48.1 %" claim.
    pub fn mean_cpu_utilization(&self) -> f64 {
        if self.cpu.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .cpu
            .iter()
            .map(|m| m.mean_utilization(Some(self.job_time)))
            .sum();
        sum / self.cpu.len() as f64
    }

    /// Mean CPU utilization (%) across slaves over an explicit window —
    /// the paper compares engines "in the same execution period"
    /// (Sec. V-D), i.e. over a common horizon.
    pub fn mean_cpu_utilization_over(&self, horizon: SimTime) -> f64 {
        if self.cpu.is_empty() || horizon == SimTime::ZERO {
            return 0.0;
        }
        let sum: f64 = self
            .cpu
            .iter()
            .map(|m| m.mean_utilization(Some(horizon)))
            .sum();
        sum / self.cpu.len() as f64
    }

    /// The `sar`-style average utilization timeline across slaves
    /// (Fig. 10's curves).
    pub fn cpu_timeline(&self) -> Vec<(SimTime, f64)> {
        average_utilization(&self.cpu)
    }
}

/// Runs one job on one cluster configuration with one shuffle engine.
pub struct JobSimulator {
    cfg: ClusterConfig,
    spec: JobSpec,
    seed: u64,
}

impl JobSimulator {
    /// A simulator with the default seed.
    pub fn new(cfg: ClusterConfig, spec: JobSpec) -> Self {
        Self::with_seed(cfg, spec, 42)
    }

    /// A simulator with an explicit seed (all runs are deterministic in
    /// `(cfg, spec, seed, engine)`).
    pub fn with_seed(cfg: ClusterConfig, spec: JobSpec, seed: u64) -> Self {
        cfg.validate().expect("invalid cluster config");
        spec.validate().expect("invalid job spec");
        JobSimulator { cfg, spec, seed }
    }

    /// The configured cluster.
    pub fn cluster_config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The configured job.
    pub fn job_spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Execute the job with `engine` and measure it.
    pub fn run(&self, engine: &mut dyn ShuffleEngine) -> JobResult {
        let mut cluster = SimCluster::new(self.cfg.clone(), self.seed);

        // --- Map phase ---------------------------------------------------
        let map = run_map_phase(&mut cluster, &self.spec);

        // --- Shuffle (pluggable) ------------------------------------------
        let reducers: Vec<ReducerInfo> = (0..self.cfg.num_reducers())
            .map(|id| ReducerInfo {
                id,
                node: id % self.cfg.slaves,
            })
            .collect();
        let plan = ShufflePlan {
            mofs: map.mofs,
            reducers,
            avg_record_bytes: self.spec.avg_record_bytes,
        };
        debug_assert!(plan.validate().is_ok());
        let outcome = engine.run(&mut cluster, &plan);
        assert_eq!(
            outcome.ready.len(),
            plan.reducers.len(),
            "engine must report every reducer"
        );

        // --- Reduce phase -------------------------------------------------
        let mut reducer_done = Vec::with_capacity(plan.reducers.len());
        let mut job_time = map.end;
        for r in &plan.reducers {
            let ready = outcome.ready[r.id];
            let input = plan.reducer_input_bytes(r.id);
            let reduce_cpu =
                SimTime::from_secs_f64(input as f64 * self.spec.reduce_cpu_per_byte);
            cluster.charge_cpu(r.node, ready, reduce_cpu);
            let mut t = ready + reduce_cpu;

            let out_bytes = (input as f64 * self.spec.output_ratio) as u64;
            if out_bytes > 0 {
                let out_file = cluster.alloc_file();
                let wcpu =
                    SimTime::from_secs_f64(out_bytes as f64 * OUTPUT_WRITE_CPU_PER_BYTE);
                cluster.charge_cpu(r.node, t, wcpu);
                t += wcpu;
                let mut off = 0u64;
                while off + OUTPUT_WRITE_UNIT < out_bytes {
                    // Final output is a use-once stream: written back and
                    // reclaimed, never read again by this job.
                    cluster.storage[r.node].write_with(
                        t,
                        out_file,
                        off,
                        OUTPUT_WRITE_UNIT,
                        CachePolicy::Bypass,
                    );
                    off += OUTPUT_WRITE_UNIT;
                }
                // The final chunk is synchronous: the task commits only when
                // its output is durable, which drains the write queue.
                t = cluster.storage[r.node].write_sync_with(
                    t,
                    out_file,
                    off,
                    out_bytes - off,
                    CachePolicy::Bypass,
                );
            }
            t += self.spec.task_cleanup;
            reducer_done.push(t);
            job_time = job_time.max(t);
        }

        JobResult {
            engine: engine.name().to_string(),
            job_time,
            map_phase_end: map.end,
            shuffle_all_ready: outcome.all_ready(),
            bytes_shuffled: outcome.bytes_fetched,
            spilled_bytes: outcome.spilled_bytes,
            connections_established: outcome.connections_established,
            connections_evicted: outcome.connections_evicted,
            disk_busy: cluster.storage.iter().map(|s| s.total_disk_busy()).sum(),
            disk_seeks: cluster.storage.iter().map(|s| s.total_seeks()).sum(),
            disk_bytes_read: cluster.storage.iter().map(|s| s.total_bytes_read()).sum(),
            disk_bytes_written: cluster.storage.iter().map(|s| s.total_bytes_written()).sum(),
            cpu: cluster.cpu,
            reducer_done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::engine::InstantShuffle;
    use jbs_net::Protocol;

    fn sim(gb: u64) -> JobSimulator {
        JobSimulator::new(
            ClusterConfig::tiny(Protocol::Rdma),
            JobSpec::terasort(gb << 30),
        )
    }

    #[test]
    fn job_phases_are_ordered() {
        let r = sim(1).run(&mut InstantShuffle);
        assert!(r.map_phase_end > SimTime::ZERO);
        assert!(r.shuffle_all_ready >= SimTime::ZERO);
        assert!(r.job_time >= r.map_phase_end);
        assert!(r.job_time >= r.shuffle_all_ready);
        assert_eq!(r.reducer_done.len(), 8);
        assert_eq!(r.engine, "Instant");
    }

    #[test]
    fn bigger_jobs_take_longer() {
        let a = sim(1).run(&mut InstantShuffle);
        let b = sim(2).run(&mut InstantShuffle);
        assert!(b.job_time > a.job_time);
        assert!(b.bytes_shuffled > a.bytes_shuffled);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = sim(1).run(&mut InstantShuffle);
        let b = sim(1).run(&mut InstantShuffle);
        assert_eq!(a.job_time, b.job_time);
        assert_eq!(a.reducer_done, b.reducer_done);
    }

    #[test]
    fn seed_changes_result_slightly() {
        let base = sim(1).run(&mut InstantShuffle);
        let other = JobSimulator::with_seed(
            ClusterConfig::tiny(Protocol::Rdma),
            JobSpec::terasort(1 << 30),
            7,
        )
        .run(&mut InstantShuffle);
        assert_ne!(base.job_time, other.job_time);
        // But not wildly: within 20%.
        let ratio = base.job_time.as_secs_f64() / other.job_time.as_secs_f64();
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn cpu_utilization_is_sane() {
        let r = sim(1).run(&mut InstantShuffle);
        let u = r.mean_cpu_utilization();
        assert!(u > 0.0 && u <= 100.0, "utilization {u}");
        let timeline = r.cpu_timeline();
        assert!(!timeline.is_empty());
        assert!(timeline.iter().all(|&(_, v)| (0.0..=100.0).contains(&v)));
    }

    #[test]
    fn accessors() {
        let s = sim(1);
        assert_eq!(s.cluster_config().slaves, 4);
        assert_eq!(s.job_spec().name, "Terasort");
    }
}
