//! The discrete-event job simulator.
//!
//! A job run has three parts:
//!
//! 1. [`mapphase`] simulates every MapTask — input reads, map+sort CPU, MOF
//!    writes — against the node's disks, page cache and CPU meters, and
//!    produces the *shuffle plan*: which MOFs exist, where, with what
//!    per-reducer segment sizes, and when each became available.
//! 2. A pluggable [`ShuffleEngine`] (stock Hadoop or JBS, from `jbs-core`)
//!    consumes the plan, drives the fabric/disks/CPUs, and reports when
//!    each ReduceTask's input was fetched and merged.
//! 3. [`driver`] runs the reduce phase (user reduce function + output
//!    write) and assembles the [`JobResult`].
//!
//! ### A note on resource ordering
//!
//! Disk and NIC resources are FIFO accounting servers: requests submitted
//! later queue behind requests submitted earlier even if their simulated
//! arrival time is earlier. The phases above submit in (map, shuffle,
//! reduce) order, so a shuffle read arriving while the same node still has
//! map I/O outstanding is served after that map I/O. This biases the model
//! toward "map I/O wins disk contention", which matches Hadoop's behaviour
//! under heavy load and keeps the plugin boundary between the runtime and
//! the shuffle engines clean.

pub mod driver;
pub mod engine;
pub mod mapphase;
pub mod plan;
pub mod state;

pub use driver::{JobResult, JobSimulator};
pub use engine::{InstantShuffle, ShuffleEngine, ShuffleOutcome};
pub use plan::{MofInfo, ReducerInfo, ShufflePlan};
pub use state::SimCluster;
