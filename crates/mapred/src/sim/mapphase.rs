//! Map-phase simulation.
//!
//! Each node runs up to `map_slots` MapTasks concurrently; a task reads its
//! (node-local — delay scheduling gives ~98 % locality \[31\]) HDFS block in
//! read units, burns map+sort CPU per unit, then writes its MOF and index
//! and commits. Concurrent tasks interleave at read-unit granularity, so
//! they contend for the node's two disk arms exactly as real streams do —
//! including the seek storms that concurrent streams induce.

use crate::job::JobSpec;
use crate::sim::plan::{split_segments, MofInfo};
use crate::sim::state::SimCluster;
use jbs_des::{DetRng, SimTime};
use jbs_disk::{CachePolicy, FileId};

/// Read unit for HDFS input streams (Hadoop reads big buffered chunks).
const INPUT_READ_UNIT: u64 = 4 << 20;

/// CPU cost per input byte of the HDFS read path (DataNode, checksums,
/// buffered stream copy) — shared by both engines since MapTasks always run
/// in the JVM.
const MAP_INPUT_CPU_PER_BYTE: f64 = 3.3e-9;

/// CPU cost per MOF byte for the map-side spill/merge writes.
const MOF_WRITE_CPU_PER_BYTE: f64 = 1.5e-9;

/// Write granularity for MOF commits: large buffered writes are issued in
/// these units so that concurrent readers can interleave on the disk arm.
const MOF_WRITE_UNIT: u64 = 4 << 20;

/// Result of the map phase.
pub struct MapPhaseResult {
    /// One entry per MapTask, ordered by MOF id.
    pub mofs: Vec<MofInfo>,
    /// When the last MapTask committed.
    pub end: SimTime,
}

struct RunningTask {
    mof_id: usize,
    input_file: FileId,
    offset: u64,
    remaining: u64,
    input_bytes: u64,
    cursor: SimTime,
}

/// Simulate every MapTask and return the shuffle plan inputs.
pub fn run_map_phase(cluster: &mut SimCluster, spec: &JobSpec) -> MapPhaseResult {
    let cfg = cluster.cfg.clone();
    let num_maps = spec.num_maps(cfg.block_bytes);
    let reducers = cfg.num_reducers();
    let mut seg_rng = cluster.rng.fork(0x5e95);

    // Pre-allocate ids and files so MOF ids are dense and deterministic.
    let mut task_input_bytes = vec![cfg.block_bytes; num_maps];
    let tail = spec.input_bytes - cfg.block_bytes * (num_maps as u64 - 1);
    task_input_bytes[num_maps - 1] = tail.max(1);

    let mut mofs: Vec<Option<MofInfo>> = (0..num_maps).map(|_| None).collect();
    let mut end = SimTime::ZERO;

    // Round-robin block placement across nodes.
    let mut node_tasks: Vec<Vec<usize>> = vec![Vec::new(); cfg.slaves];
    for m in 0..num_maps {
        node_tasks[m % cfg.slaves].push(m);
    }

    for (node, tasks) in node_tasks.iter().enumerate() {
        let mut jitter_rng = cluster.rng.fork(0xA11 + node as u64);
        let mut pending = tasks.clone();
        pending.reverse(); // pop() from the back yields original order
        let slots = cfg.map_slots as usize;
        let mut running: Vec<Option<RunningTask>> = Vec::with_capacity(slots);
        for _ in 0..slots {
            running.push(None);
        }

        // Seed each slot.
        for slot in running.iter_mut() {
            if let Some(m) = pending.pop() {
                *slot = Some(start_task(
                    cluster,
                    m,
                    task_input_bytes[m],
                    SimTime::ZERO,
                    spec,
                    &mut jitter_rng,
                ));
            }
        }

        // Advance the earliest-cursor task one read unit at a time.
        while let Some(slot_idx) = running
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (i, t.cursor)))
            .min_by_key(|&(_, c)| c)
            .map(|(i, _)| i)
        {
            let task = running[slot_idx].as_mut().expect("selected running slot");
            let unit = task.remaining.min(INPUT_READ_UNIT);
            let io = cluster.storage[node].read_with(
                task.cursor,
                task.input_file,
                task.offset,
                unit,
                CachePolicy::Bypass, // HDFS input is a use-once stream
            );
            let cpu = SimTime::from_secs_f64(
                unit as f64 * (MAP_INPUT_CPU_PER_BYTE + spec.map_cpu_per_byte),
            );
            cluster.charge_cpu(node, io.completed, cpu);
            task.offset += unit;
            task.remaining -= unit;
            task.cursor = io.completed + cpu;

            if task.remaining == 0 {
                let task = running[slot_idx].take().expect("slot had a task");
                let commit = finish_task(
                    cluster,
                    node,
                    &task,
                    spec,
                    reducers,
                    &mut seg_rng,
                    &mut mofs,
                );
                end = end.max(commit);
                if let Some(m) = pending.pop() {
                    running[slot_idx] = Some(start_task(
                        cluster,
                        m,
                        task_input_bytes[m],
                        commit,
                        spec,
                        &mut jitter_rng,
                    ));
                }
            }
        }
    }

    MapPhaseResult {
        mofs: mofs.into_iter().map(|m| m.expect("all MOFs produced")).collect(),
        end,
    }
}

fn start_task(
    cluster: &mut SimCluster,
    mof_id: usize,
    input_bytes: u64,
    slot_free: SimTime,
    spec: &JobSpec,
    jitter_rng: &mut DetRng,
) -> RunningTask {
    let init = jitter_rng.jitter(spec.task_init, 0.2);
    RunningTask {
        mof_id,
        input_file: cluster.alloc_file(),
        offset: 0,
        remaining: input_bytes,
        input_bytes,
        cursor: slot_free + init,
    }
}

fn finish_task(
    cluster: &mut SimCluster,
    node: usize,
    task: &RunningTask,
    spec: &JobSpec,
    reducers: usize,
    seg_rng: &mut DetRng,
    mofs: &mut [Option<MofInfo>],
) -> SimTime {
    let mof_bytes = (task.input_bytes as f64 * spec.shuffle_ratio) as u64;
    let data_file = cluster.alloc_file();
    let index_file = cluster.alloc_file();
    let mut t = task.cursor;
    if mof_bytes > 0 {
        // Buffered MOF write (returns immediately; arm charged async) plus
        // the CPU of formatting/spilling it. Issued in units so other
        // streams can interleave on the arm.
        let mut off = 0u64;
        while off < mof_bytes {
            let unit = MOF_WRITE_UNIT.min(mof_bytes - off);
            cluster.storage[node].write(t, data_file, off, unit);
            off += unit;
        }
        let wcpu = SimTime::from_secs_f64(mof_bytes as f64 * MOF_WRITE_CPU_PER_BYTE);
        cluster.charge_cpu(node, t, wcpu);
        t += wcpu;
    }
    // The index commit is synchronous (24 bytes per reducer).
    t = cluster.storage[node].write_sync(t, index_file, 0, 24 * reducers as u64 + 16);
    t += spec.task_cleanup;
    let seg_bytes = split_segments(mof_bytes, reducers, seg_rng);
    mofs[task.mof_id] = Some(MofInfo {
        mof_id: task.mof_id,
        node,
        file: data_file,
        index_file,
        ready: t,
        seg_bytes,
    });
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use jbs_net::Protocol;

    fn run(input_gb: u64) -> (SimCluster, MapPhaseResult, JobSpec) {
        let cfg = ClusterConfig::tiny(Protocol::Rdma);
        let mut cluster = SimCluster::new(cfg, 42);
        let spec = JobSpec::terasort(input_gb << 30);
        let result = run_map_phase(&mut cluster, &spec);
        (cluster, result, spec)
    }

    #[test]
    fn produces_one_mof_per_block() {
        let (_, r, spec) = run(1);
        assert_eq!(r.mofs.len(), spec.num_maps(64 << 20));
        for (i, m) in r.mofs.iter().enumerate() {
            assert_eq!(m.mof_id, i);
            assert!(m.ready > SimTime::ZERO);
            assert!(m.ready <= r.end);
        }
    }

    #[test]
    fn shuffle_bytes_conserved() {
        let (_, r, spec) = run(1);
        let total: u64 = r
            .mofs
            .iter()
            .map(|m| m.seg_bytes.iter().sum::<u64>())
            .sum();
        // Within rounding of the float shuffle_ratio application per task.
        let expect = spec.shuffle_bytes();
        assert!(
            (total as i64 - expect as i64).unsigned_abs() < r.mofs.len() as u64 * 2,
            "total {total} vs expected {expect}"
        );
    }

    #[test]
    fn tasks_are_spread_across_nodes() {
        let (_, r, _) = run(1);
        let mut nodes: Vec<usize> = r.mofs.iter().map(|m| m.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 4, "all 4 tiny-cluster nodes used");
    }

    #[test]
    fn map_phase_charges_cpu_and_disk() {
        let (cluster, _, _) = run(1);
        for node in 0..4 {
            assert!(cluster.cpu[node].busy_core_secs() > 0.0);
            assert!(cluster.storage[node].total_bytes_read() > 0);
            assert!(cluster.storage[node].total_bytes_written() > 0);
        }
    }

    #[test]
    fn more_input_takes_longer() {
        let (_, small, _) = run(1);
        let (_, large, _) = run(4);
        assert!(large.end > small.end);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ClusterConfig::tiny(Protocol::Rdma);
        let spec = JobSpec::terasort(1 << 30);
        let mut c1 = SimCluster::new(cfg.clone(), 7);
        let mut c2 = SimCluster::new(cfg, 7);
        let r1 = run_map_phase(&mut c1, &spec);
        let r2 = run_map_phase(&mut c2, &spec);
        assert_eq!(r1.end, r2.end);
        for (a, b) in r1.mofs.iter().zip(r2.mofs.iter()) {
            assert_eq!(a.ready, b.ready);
            assert_eq!(a.seg_bytes, b.seg_bytes);
        }
    }

    #[test]
    fn waves_serialize_on_slots() {
        // 1 GB on the tiny cluster = 16 blocks over 8 slots = 2 waves; the
        // last commit should be noticeably after the 8th.
        let (_, r, _) = run(1);
        let mut readies: Vec<SimTime> = r.mofs.iter().map(|m| m.ready).collect();
        readies.sort_unstable();
        assert!(readies[15] > readies[7]);
    }
}
