//! Shared simulated cluster state handed to shuffle engines.

use crate::cluster::ClusterConfig;
use jbs_des::{CpuMeter, DetRng, SimTime};
use jbs_disk::{FileId, NodeStorage};
use jbs_net::Fabric;

/// The live state of a simulated cluster during one job.
///
/// Engines receive `&mut SimCluster` and are expected to:
/// * read MOF bytes through [`SimCluster::storage`] (paying disk time),
/// * move bytes through [`SimCluster::fabric`] (paying wire time),
/// * charge every CPU cost to [`SimCluster::cpu`].
pub struct SimCluster {
    /// The static configuration.
    pub cfg: ClusterConfig,
    /// Per-slave storage (disks + page cache).
    pub storage: Vec<NodeStorage>,
    /// The network fabric for the configured protocol.
    pub fabric: Fabric,
    /// Per-slave CPU meters (`sar`-style bins).
    pub cpu: Vec<CpuMeter>,
    /// Deterministic randomness for the whole run.
    pub rng: DetRng,
    next_file: u64,
}

impl SimCluster {
    /// Build a cluster from its configuration, seeding all randomness.
    pub fn new(cfg: ClusterConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid cluster config");
        let storage = (0..cfg.slaves)
            .map(|_| NodeStorage::new(cfg.disks_per_node, cfg.disk.clone(), cfg.page_cache_bytes))
            .collect();
        let fabric = Fabric::with_oversubscription(cfg.slaves, cfg.protocol, cfg.oversubscription);
        let cpu = (0..cfg.slaves)
            .map(|_| CpuMeter::new(cfg.cores_per_node, cfg.cpu_sample_bin))
            .collect();
        SimCluster {
            storage,
            fabric,
            cpu,
            rng: DetRng::new(seed),
            next_file: 0,
            cfg,
        }
    }

    /// Allocate a fresh simulated file id.
    pub fn alloc_file(&mut self) -> FileId {
        let id = self.next_file;
        self.next_file += 1;
        FileId(id)
    }

    /// Charge one sequential thread's CPU on `node`.
    pub fn charge_cpu(&mut self, node: usize, start: SimTime, dur: SimTime) {
        self.cpu[node].charge_thread(start, dur);
    }

    /// Charge background thread overhead (fractional cores over a span).
    pub fn charge_background(&mut self, node: usize, start: SimTime, dur: SimTime, cores: f64) {
        self.cpu[node].charge(start, dur, cores);
    }

    /// Populate the page cache with every MOF (data + index) of `plan`, as
    /// if the map phase had just written them. Synthetic shuffle-only
    /// experiments use this to reproduce the paper's common case where
    /// fresh MOFs are still in "disk cache or system buffers" (Sec. V-A);
    /// MOFs larger than the cache naturally fall out.
    pub fn warm_mofs(&mut self, plan: &crate::sim::plan::ShufflePlan) {
        for mof in &plan.mofs {
            let bytes: u64 = mof.seg_bytes.iter().sum();
            let storage = &mut self.storage[mof.node];
            if bytes > 0 {
                storage.write(SimTime::ZERO, mof.file, 0, bytes);
            }
            storage.write(SimTime::ZERO, mof.index_file, 0, 24 * mof.seg_bytes.len() as u64 + 16);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jbs_net::Protocol;

    #[test]
    fn construction_matches_config() {
        let cfg = ClusterConfig::tiny(Protocol::Rdma);
        let c = SimCluster::new(cfg.clone(), 1);
        assert_eq!(c.storage.len(), cfg.slaves);
        assert_eq!(c.cpu.len(), cfg.slaves);
        assert_eq!(c.fabric.nodes(), cfg.slaves);
    }

    #[test]
    fn file_ids_are_unique() {
        let mut c = SimCluster::new(ClusterConfig::tiny(Protocol::Rdma), 1);
        let a = c.alloc_file();
        let b = c.alloc_file();
        assert_ne!(a, b);
    }

    #[test]
    fn cpu_charges_land_on_the_right_node() {
        let mut c = SimCluster::new(ClusterConfig::tiny(Protocol::Rdma), 1);
        c.charge_cpu(2, SimTime::ZERO, SimTime::from_secs(1));
        assert!(c.cpu[2].busy_core_secs() > 0.0);
        assert_eq!(c.cpu[0].busy_core_secs(), 0.0);
        c.charge_background(0, SimTime::ZERO, SimTime::from_secs(2), 0.5);
        assert!((c.cpu[0].busy_core_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        let mut cfg = ClusterConfig::tiny(Protocol::Rdma);
        cfg.slaves = 0;
        let _ = SimCluster::new(cfg, 1);
    }
}
