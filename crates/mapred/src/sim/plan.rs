//! The shuffle plan: what the map phase produced, for the engines to move.

use jbs_des::{DetRng, SimTime};
use jbs_disk::FileId;

/// One Map Output File, as the shuffle engines see it.
#[derive(Debug, Clone)]
pub struct MofInfo {
    /// Dense MOF id (== MapTask id).
    pub mof_id: usize,
    /// Slave node holding the MOF.
    pub node: usize,
    /// Simulated data file.
    pub file: FileId,
    /// Simulated index file.
    pub index_file: FileId,
    /// When the MapTask committed the MOF (segments fetchable after this).
    pub ready: SimTime,
    /// Segment size per reducer, in bytes.
    pub seg_bytes: Vec<u64>,
}

/// One ReduceTask, as the shuffle engines see it.
#[derive(Debug, Clone, Copy)]
pub struct ReducerInfo {
    /// Dense reducer id (== partition number).
    pub id: usize,
    /// Slave node running this ReduceTask.
    pub node: usize,
}

/// Everything a shuffle engine needs to run.
#[derive(Debug, Clone)]
pub struct ShufflePlan {
    /// All MOFs, ordered by `mof_id`.
    pub mofs: Vec<MofInfo>,
    /// All reducers, ordered by `id`.
    pub reducers: Vec<ReducerInfo>,
    /// Average record size (for merge CPU costing).
    pub avg_record_bytes: u64,
}

impl ShufflePlan {
    /// Total bytes the shuffle must move.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.mofs.iter().map(|m| m.seg_bytes.iter().sum::<u64>()).sum()
    }

    /// Bytes destined for reducer `r`.
    pub fn reducer_input_bytes(&self, r: usize) -> u64 {
        self.mofs.iter().map(|m| m.seg_bytes[r]).sum()
    }

    /// Time the last MOF became available.
    pub fn last_mof_ready(&self) -> SimTime {
        self.mofs
            .iter()
            .map(|m| m.ready)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Consistency checks used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let nr = self.reducers.len();
        for (i, m) in self.mofs.iter().enumerate() {
            if m.mof_id != i {
                return Err(format!("mof {i} has id {}", m.mof_id));
            }
            if m.seg_bytes.len() != nr {
                return Err(format!(
                    "mof {i} has {} segments for {nr} reducers",
                    m.seg_bytes.len()
                ));
            }
        }
        for (i, r) in self.reducers.iter().enumerate() {
            if r.id != i {
                return Err(format!("reducer {i} has id {}", r.id));
            }
        }
        Ok(())
    }
}

impl ShufflePlan {
    /// A synthetic all-ready plan for shuffle-only experiments: `mofs_per_node`
    /// MOFs on each of `nodes` nodes, every MOF committed at time zero with a
    /// `seg_bytes` segment for each of the `nodes * reducers_per_node`
    /// reducers. Useful for isolating shuffle behaviour from the map phase
    /// (micro-benchmarks, ablations, Fig. 2c).
    pub fn synthetic(
        nodes: usize,
        mofs_per_node: usize,
        reducers_per_node: usize,
        seg_bytes: u64,
        avg_record_bytes: u64,
    ) -> ShufflePlan {
        let num_reducers = nodes * reducers_per_node;
        let mofs = (0..nodes * mofs_per_node)
            .map(|i| MofInfo {
                mof_id: i,
                node: i % nodes,
                file: FileId(2 * i as u64),
                index_file: FileId(2 * i as u64 + 1),
                ready: SimTime::ZERO,
                seg_bytes: vec![seg_bytes; num_reducers],
            })
            .collect();
        let reducers = (0..num_reducers)
            .map(|id| ReducerInfo {
                id,
                node: id % nodes,
            })
            .collect();
        ShufflePlan {
            mofs,
            reducers,
            avg_record_bytes,
        }
    }
}

/// Split `total` intermediate bytes of one MOF across `reducers` partitions
/// with mild deterministic imbalance (±10 %), normalized to sum exactly to
/// `total`. Real partitioners (Terasort's sampled ranges, hash partitioners)
/// produce exactly this kind of near-uniform split.
pub fn split_segments(total: u64, reducers: usize, rng: &mut DetRng) -> Vec<u64> {
    assert!(reducers > 0);
    if total == 0 {
        return vec![0; reducers];
    }
    let weights: Vec<f64> = (0..reducers).map(|_| rng.uniform_f64(0.9, 1.1)).collect();
    let wsum: f64 = weights.iter().sum();
    let mut out: Vec<u64> = weights
        .iter()
        .map(|w| (total as f64 * w / wsum) as u64)
        .collect();
    // Push rounding residue onto the first partitions, one byte each.
    let assigned: u64 = out.iter().sum();
    let mut residue = total - assigned;
    let mut i = 0;
    while residue > 0 {
        out[i % reducers] += 1;
        residue -= 1;
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ShufflePlan {
        let mut rng = DetRng::new(7);
        let mofs = (0..4)
            .map(|i| MofInfo {
                mof_id: i,
                node: i % 2,
                file: FileId(i as u64),
                index_file: FileId(100 + i as u64),
                ready: SimTime::from_secs(i as u64),
                seg_bytes: split_segments(1000, 3, &mut rng),
            })
            .collect();
        let reducers = (0..3)
            .map(|id| ReducerInfo { id, node: id % 2 })
            .collect();
        ShufflePlan {
            mofs,
            reducers,
            avg_record_bytes: 100,
        }
    }

    #[test]
    fn totals_are_conserved() {
        let p = plan();
        assert_eq!(p.total_shuffle_bytes(), 4000);
        let per_reducer: u64 = (0..3).map(|r| p.reducer_input_bytes(r)).sum();
        assert_eq!(per_reducer, 4000);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn last_ready_is_max() {
        assert_eq!(plan().last_mof_ready(), SimTime::from_secs(3));
    }

    #[test]
    fn split_sums_exactly_and_is_balanced() {
        let mut rng = DetRng::new(42);
        for total in [1u64, 999, 1 << 20, (1 << 30) + 7] {
            let parts = split_segments(total, 44, &mut rng);
            assert_eq!(parts.iter().sum::<u64>(), total);
            if total > 1000 {
                let base = total / 44;
                for &p in &parts {
                    assert!(p > base / 2 && p < base * 2, "part {p} vs base {base}");
                }
            }
        }
    }

    #[test]
    fn split_zero_total() {
        let mut rng = DetRng::new(1);
        assert_eq!(split_segments(0, 5, &mut rng), vec![0; 5]);
    }

    #[test]
    fn split_is_deterministic() {
        let a = split_segments(12345, 7, &mut DetRng::new(5));
        let b = split_segments(12345, 7, &mut DetRng::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn synthetic_plan_is_valid_and_all_ready() {
        let p = ShufflePlan::synthetic(4, 2, 2, 1 << 20, 100);
        assert!(p.validate().is_ok());
        assert_eq!(p.mofs.len(), 8);
        assert_eq!(p.reducers.len(), 8);
        assert_eq!(p.last_mof_ready(), SimTime::ZERO);
        assert_eq!(p.total_shuffle_bytes(), (8 * 8) << 20);
        // Distinct file ids for data and index.
        let mut ids: Vec<u64> = p
            .mofs
            .iter()
            .flat_map(|m| [m.file.0, m.index_file.0])
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 16);
    }

    #[test]
    fn validate_catches_shape_errors() {
        let mut p = plan();
        p.mofs[1].seg_bytes.pop();
        assert!(p.validate().is_err());
        let mut p2 = plan();
        p2.reducers[0].id = 9;
        assert!(p2.validate().is_err());
        let mut p3 = plan();
        p3.mofs[0].mof_id = 3;
        assert!(p3.validate().is_err());
    }
}
