//! The shuffle-engine plugin boundary.
//!
//! This is the reproduction's version of Hadoop's pluggable shuffle
//! (MAPREDUCE-4049), which the paper cites as the mechanism that lets JBS
//! load "based on a runtime user parameter" without changing Hadoop
//! (Sec. III-A). `jbs-core` provides the two real engines:
//! `HadoopShuffle` (HttpServlet/MOFCopier inside the JVM) and
//! `JbsShuffle` (MOFSupplier/NetMerger, JVM-bypassed).

use crate::sim::plan::ShufflePlan;
use crate::sim::state::SimCluster;
use jbs_des::SimTime;

/// What a shuffle engine reports back to the job driver.
#[derive(Debug, Clone)]
pub struct ShuffleOutcome {
    /// Per reducer: when its full input had been fetched *and* merged into
    /// a reduce-ready stream.
    pub ready: Vec<SimTime>,
    /// Total payload bytes fetched across the fabric.
    pub bytes_fetched: u64,
    /// Reduce-side bytes spilled to disk while shuffling/merging
    /// (0 for JBS's network-levitated merge).
    pub spilled_bytes: u64,
    /// Network connections established.
    pub connections_established: u64,
    /// Network connections torn down by the LRU policy.
    pub connections_evicted: u64,
    /// Engine display name.
    pub engine: String,
}

impl ShuffleOutcome {
    /// Latest reducer-ready time.
    pub fn all_ready(&self) -> SimTime {
        self.ready.iter().copied().fold(SimTime::ZERO, SimTime::max)
    }
}

/// A pluggable shuffle implementation.
pub trait ShuffleEngine {
    /// Display name ("Hadoop", "JBS").
    fn name(&self) -> &str;

    /// Move every segment of `plan` to its reducer, charging all disk,
    /// network and CPU costs to `cluster`, and report readiness times.
    fn run(&mut self, cluster: &mut SimCluster, plan: &ShufflePlan) -> ShuffleOutcome;
}

/// A zero-cost engine for driver tests: every reducer's input is ready the
/// moment the last MOF it needs commits. No resources are touched.
#[derive(Debug, Default, Clone)]
pub struct InstantShuffle;

impl ShuffleEngine for InstantShuffle {
    fn name(&self) -> &str {
        "Instant"
    }

    fn run(&mut self, _cluster: &mut SimCluster, plan: &ShufflePlan) -> ShuffleOutcome {
        let last = plan.last_mof_ready();
        ShuffleOutcome {
            ready: vec![last; plan.reducers.len()],
            bytes_fetched: plan.total_shuffle_bytes(),
            spilled_bytes: 0,
            connections_established: 0,
            connections_evicted: 0,
            engine: "Instant".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::sim::plan::{MofInfo, ReducerInfo};
    use jbs_disk::FileId;
    use jbs_net::Protocol;

    #[test]
    fn instant_engine_is_ready_at_last_mof() {
        let mut cluster = SimCluster::new(ClusterConfig::tiny(Protocol::Rdma), 1);
        let plan = ShufflePlan {
            mofs: vec![MofInfo {
                mof_id: 0,
                node: 0,
                file: FileId(0),
                index_file: FileId(1),
                ready: SimTime::from_secs(9),
                seg_bytes: vec![10, 20],
            }],
            reducers: vec![
                ReducerInfo { id: 0, node: 0 },
                ReducerInfo { id: 1, node: 1 },
            ],
            avg_record_bytes: 10,
        };
        let mut e = InstantShuffle;
        let out = e.run(&mut cluster, &plan);
        assert_eq!(out.ready, vec![SimTime::from_secs(9); 2]);
        assert_eq!(out.bytes_fetched, 30);
        assert_eq!(out.all_ready(), SimTime::from_secs(9));
        assert_eq!(e.name(), "Instant");
    }
}
