//! The network-levitated merge, as a streaming algorithm.
//!
//! The SC'11 algorithm JBS's NetMerger uses (Sec. III-C) merges a
//! reducer's segments *without materializing them*: each remote segment
//! contributes a small in-memory window (one transport buffer's worth of
//! records), the merge consumes from the windows through a priority queue,
//! and a window is refilled from the network only when it runs dry — the
//! segment bodies stay "levitated" on the remote disks.
//!
//! This module provides the algorithm over an abstract [`RecordStream`]:
//!
//! * [`RecordParser`] — an incremental parser for the MOF segment record
//!   format that accepts bytes in arbitrary-sized chunks (records may
//!   straddle chunk boundaries, as they do across transport buffers);
//! * [`StreamingMerge`] — the k-way merge over fallible, lazily-refilled
//!   streams, with stability across streams and one-record lookahead per
//!   stream (the minimal levitation window).
//!
//! `jbs-transport` drives it with streams that fetch transport-buffer
//! chunks over real sockets on demand; tests drive it with in-memory
//! slices split at adversarial boundaries.

use crate::merge::Record;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::io;

/// Marker terminating a segment's record stream (same as `mof.rs`).
const END_MARKER: u32 = 0xFFFF_FFFF;

/// A pull-based source of key-sorted records.
pub trait RecordStream {
    /// The next record, `Ok(None)` at end of stream.
    fn next_record(&mut self) -> io::Result<Option<Record>>;
}

/// Incremental parser for the MOF segment wire format
/// (`klen u32 | vlen u32 | key | value`, terminated by `0xFFFF_FFFF`).
///
/// Push bytes in any chunking; pop complete records as they become
/// available. Unconsumed partial records are buffered internally.
#[derive(Debug, Default)]
pub struct RecordParser {
    buf: Vec<u8>,
    /// Read position within `buf` (compacted lazily).
    pos: usize,
    finished: bool,
}

impl RecordParser {
    /// An empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed the next chunk of segment bytes.
    pub fn push(&mut self, chunk: &[u8]) {
        // Compact consumed prefix before growing.
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > (64 << 10) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// True once the end marker has been consumed.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Bytes currently buffered but not yet parsed into records.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn peek_u32(&self, at: usize) -> Option<u32> {
        let lo = self.pos + at;
        self.buf
            .get(lo..lo + 4)
            .map(|b| u32::from_be_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Try to pop one complete record. `Ok(None)` means "need more bytes"
    /// (or the stream finished — check [`RecordParser::finished`]).
    pub fn pop(&mut self) -> io::Result<Option<Record>> {
        if self.finished {
            return Ok(None);
        }
        let Some(klen) = self.peek_u32(0) else {
            return Ok(None);
        };
        if klen == END_MARKER {
            self.pos += 4;
            self.finished = true;
            return Ok(None);
        }
        let Some(vlen) = self.peek_u32(4) else {
            return Ok(None);
        };
        let (klen, vlen) = (klen as usize, vlen as usize);
        if klen > (64 << 20) || vlen > (64 << 20) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "implausible record length (corrupt stream?)",
            ));
        }
        let total = 8 + klen + vlen;
        if self.pending_bytes() < total {
            return Ok(None);
        }
        let start = self.pos + 8;
        let key = self.buf[start..start + klen].to_vec();
        let value = self.buf[start + klen..start + klen + vlen].to_vec();
        self.pos += total;
        Ok(Some((key, value)))
    }
}

/// A [`RecordStream`] over an in-memory segment, optionally delivered to
/// the parser in fixed-size chunks (mimicking transport buffers).
pub struct SliceStream<'a> {
    segment: &'a [u8],
    offset: usize,
    chunk: usize,
    parser: RecordParser,
}

impl<'a> SliceStream<'a> {
    /// Stream `segment`, feeding the parser `chunk` bytes at a time.
    pub fn chunked(segment: &'a [u8], chunk: usize) -> Self {
        SliceStream {
            segment,
            offset: 0,
            chunk: chunk.max(1),
            parser: RecordParser::new(),
        }
    }
}

impl RecordStream for SliceStream<'_> {
    fn next_record(&mut self) -> io::Result<Option<Record>> {
        loop {
            if let Some(rec) = self.parser.pop()? {
                return Ok(Some(rec));
            }
            if self.parser.finished() {
                return Ok(None);
            }
            if self.offset >= self.segment.len() {
                // Ran out of bytes without an end marker: tolerate segments
                // without a trailing marker by ending cleanly when nothing
                // is pending, erroring otherwise.
                if self.parser.pending_bytes() == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "segment truncated mid-record",
                ));
            }
            let end = (self.offset + self.chunk).min(self.segment.len());
            self.parser.push(&self.segment[self.offset..end]);
            self.offset = end;
        }
    }
}

struct HeapEntry {
    key: Vec<u8>,
    value: Vec<u8>,
    stream: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.stream == other.stream
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.stream.cmp(&self.stream))
    }
}

/// The streaming k-way merge: one record of lookahead per stream; a
/// stream is consulted again only when its record is consumed.
pub struct StreamingMerge<S: RecordStream> {
    streams: Vec<S>,
    heap: BinaryHeap<HeapEntry>,
    records_out: u64,
    primed: bool,
    failed: bool,
    trace: jbs_obs::Trace,
}

impl<S: RecordStream> StreamingMerge<S> {
    /// A merge over `streams`; each must yield key-sorted records.
    pub fn new(streams: Vec<S>) -> Self {
        StreamingMerge {
            heap: BinaryHeap::with_capacity(streams.len()),
            streams,
            records_out: 0,
            primed: false,
            failed: false,
            trace: jbs_obs::Trace::disabled(),
        }
    }

    /// Record a `merge.pull` instant per heap pull (entity = the stream
    /// the pulled record came from) to `trace`.
    pub fn with_trace(mut self, trace: jbs_obs::Trace) -> Self {
        self.trace = trace;
        self
    }

    fn prime(&mut self) -> io::Result<()> {
        for i in 0..self.streams.len() {
            if let Some((key, value)) = self.streams[i].next_record()? {
                self.heap.push(HeapEntry {
                    key,
                    value,
                    stream: i,
                });
            }
        }
        self.primed = true;
        Ok(())
    }

    /// Pull the next merged record.
    pub fn next_merged(&mut self) -> io::Result<Option<Record>> {
        if self.failed {
            return Err(io::Error::other("merge already failed"));
        }
        if !self.primed {
            if let Err(e) = self.prime() {
                self.failed = true;
                return Err(e);
            }
        }
        let Some(entry) = self.heap.pop() else {
            return Ok(None);
        };
        match self.streams[entry.stream].next_record() {
            Ok(Some((key, value))) => self.heap.push(HeapEntry {
                key,
                value,
                stream: entry.stream,
            }),
            Ok(None) => {}
            Err(e) => {
                self.failed = true;
                return Err(e);
            }
        }
        self.records_out += 1;
        self.trace.instant(
            "merge.pull",
            jbs_obs::Entity::stream(entry.stream as u64),
            self.records_out,
            entry.key.len() as u64 + entry.value.len() as u64,
        );
        Ok(Some((entry.key, entry.value)))
    }

    /// Records merged so far.
    pub fn records_out(&self) -> u64 {
        self.records_out
    }

    /// Drain the merge into a vector.
    pub fn collect_all(mut self) -> io::Result<Vec<Record>> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_merged()? {
            out.push(rec);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{is_sorted, merge_sorted_runs, sort_run};
    use crate::mof::MofWriter;

    fn segment_bytes(records: &[Record]) -> Vec<u8> {
        let mut w = MofWriter::new();
        w.begin_segment();
        for (k, v) in records {
            w.append(k, v);
        }
        w.end_segment();
        let (data, index) = w.finish();
        let e = index.entry(0).unwrap();
        data[e.offset as usize..(e.offset + e.part_len) as usize].to_vec()
    }

    fn rec(k: &str, v: &str) -> Record {
        (k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn parser_handles_arbitrary_chunk_boundaries() {
        let records = vec![rec("alpha", "1"), rec("beta", "22"), rec("gamma", "333")];
        let bytes = segment_bytes(&records);
        // Try every single split point.
        for split in 0..=bytes.len() {
            let mut p = RecordParser::new();
            p.push(&bytes[..split]);
            let mut got = Vec::new();
            while let Some(r) = p.pop().unwrap() {
                got.push(r);
            }
            p.push(&bytes[split..]);
            while let Some(r) = p.pop().unwrap() {
                got.push(r);
            }
            assert_eq!(got, records, "split at {split}");
            assert!(p.finished());
        }
    }

    #[test]
    fn parser_byte_at_a_time() {
        let records = vec![rec("k1", "v1"), rec("k2", "v2")];
        let bytes = segment_bytes(&records);
        let mut p = RecordParser::new();
        let mut got = Vec::new();
        for &b in &bytes {
            p.push(&[b]);
            while let Some(r) = p.pop().unwrap() {
                got.push(r);
            }
        }
        assert_eq!(got, records);
        assert!(p.finished());
        assert_eq!(p.pending_bytes(), 0);
    }

    #[test]
    fn parser_rejects_implausible_lengths() {
        let mut p = RecordParser::new();
        p.push(&u32::MAX.to_be_bytes()[..3]); // not enough for a length yet
        assert!(p.pop().unwrap().is_none());
        let mut p = RecordParser::new();
        p.push(&(200u32 << 20).to_be_bytes());
        p.push(&8u32.to_be_bytes());
        assert!(p.pop().is_err());
    }

    #[test]
    fn streaming_merge_equals_materialized_merge() {
        use jbs_des::DetRng;
        let mut rng = DetRng::new(71);
        let mut runs: Vec<Vec<Record>> = Vec::new();
        for _ in 0..7 {
            let mut run: Vec<Record> = (0..rng.uniform_u64(0, 60))
                .map(|_| {
                    (
                        format!("{:05}", rng.uniform_u64(0, 300)).into_bytes(),
                        vec![7u8; rng.uniform_u64(0, 30) as usize],
                    )
                })
                .collect();
            sort_run(&mut run);
            runs.push(run);
        }
        let segments: Vec<Vec<u8>> = runs.iter().map(|r| segment_bytes(r)).collect();
        // Tiny 13-byte "transport buffers" split records adversarially.
        let streams: Vec<SliceStream> = segments
            .iter()
            .map(|s| SliceStream::chunked(s, 13))
            .collect();
        let merged = StreamingMerge::new(streams).collect_all().unwrap();
        let expect = merge_sorted_runs(runs);
        assert_eq!(merged, expect);
        assert!(is_sorted(&merged));
    }

    #[test]
    fn streaming_merge_is_stable_across_streams() {
        let a = segment_bytes(&[rec("k", "first")]);
        let b = segment_bytes(&[rec("k", "second")]);
        let merged = StreamingMerge::new(vec![
            SliceStream::chunked(&a, 5),
            SliceStream::chunked(&b, 5),
        ])
        .collect_all()
        .unwrap();
        assert_eq!(merged[0].1, b"first");
        assert_eq!(merged[1].1, b"second");
    }

    #[test]
    fn truncated_stream_is_an_error_not_a_hang() {
        let full = segment_bytes(&[rec("key", "a-long-value")]);
        let cut = &full[..full.len() - 6];
        let mut m = StreamingMerge::new(vec![SliceStream::chunked(cut, 4)]);
        let err = loop {
            match m.next_merged() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("should have errored"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Subsequent pulls keep failing rather than yielding garbage.
        assert!(m.next_merged().is_err());
    }

    #[test]
    fn empty_and_markerless_streams() {
        let empty = segment_bytes(&[]);
        let merged = StreamingMerge::new(vec![SliceStream::chunked(&empty, 3)])
            .collect_all()
            .unwrap();
        assert!(merged.is_empty());
        // A zero-byte stream (no marker at all) also ends cleanly.
        let nothing: &[u8] = &[];
        let merged = StreamingMerge::new(vec![SliceStream::chunked(nothing, 3)])
            .collect_all()
            .unwrap();
        assert!(merged.is_empty());
    }

    #[test]
    fn merge_pull_trace_attributes_records_to_streams() {
        let a = segment_bytes(&[rec("a", "1"), rec("c", "3")]);
        let b = segment_bytes(&[rec("b", "2")]);
        let trace = jbs_obs::Trace::recording(64);
        let merged = StreamingMerge::new(vec![
            SliceStream::chunked(&a, 7),
            SliceStream::chunked(&b, 7),
        ])
        .with_trace(trace.clone())
        .collect_all()
        .unwrap();
        assert_eq!(merged.len(), 3);
        let q = trace.query();
        assert_eq!(q.count("merge.pull"), 3);
        assert_eq!(
            q.entity(jbs_obs::Entity::stream(0)).count("merge.pull"),
            2,
            "stream 0 contributed a and c"
        );
        assert_eq!(q.entity(jbs_obs::Entity::stream(1)).count("merge.pull"), 1);
    }

    #[test]
    fn records_out_counts() {
        let seg = segment_bytes(&[rec("a", "1"), rec("b", "2")]);
        let mut m = StreamingMerge::new(vec![SliceStream::chunked(&seg, 64)]);
        assert_eq!(m.records_out(), 0);
        m.next_merged().unwrap();
        assert_eq!(m.records_out(), 1);
        m.next_merged().unwrap();
        m.next_merged().unwrap();
        assert_eq!(m.records_out(), 2);
    }
}
