//! The Map Output File (MOF) and Index file formats.
//!
//! Every MapTask writes one MOF holding one *segment* per ReduceTask, plus
//! an index file giving each segment's location (Sec. II-A). The formats
//! here are byte-real — `jbs-transport` serves them over real sockets and
//! the integration tests round-trip them — and deliberately close to
//! Hadoop's IFile/`file.out.index` pair:
//!
//! ```text
//! MOF  := segment*                      INDEX := MAGIC u32
//! segment := record* END_MARKER                  count  u32
//! record  := klen u32 | vlen u32                 entry{count}
//!            key[klen] | value[vlen]             crc    u64
//! END_MARKER := 0xFFFF_FFFF                entry := offset u64 | raw_len u64
//!                                                   | part_len u64
//! ```
//!
//! `raw_len` is the uncompressed segment length and `part_len` the on-disk
//! length; this reproduction does not compress, so they are equal, but both
//! are kept so the format matches Hadoop's three-u64 index entries.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic number at the head of an index file.
pub const INDEX_MAGIC: u32 = 0x4D4F_4649; // "MOFI"

/// Marker terminating a segment's record stream.
const END_MARKER: u32 = 0xFFFF_FFFF;

/// Errors from parsing MOF/index bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MofError {
    /// Index file did not start with [`INDEX_MAGIC`].
    BadMagic,
    /// Byte stream ended mid-structure.
    Truncated,
    /// Index checksum mismatch.
    BadChecksum,
    /// A record declared a length that exceeds the remaining bytes.
    CorruptRecord,
}

impl std::fmt::Display for MofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MofError::BadMagic => write!(f, "index file has wrong magic"),
            MofError::Truncated => write!(f, "byte stream truncated"),
            MofError::BadChecksum => write!(f, "index checksum mismatch"),
            MofError::CorruptRecord => write!(f, "record length exceeds segment"),
        }
    }
}

impl std::error::Error for MofError {}

/// Location of one reducer's segment inside a MOF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Byte offset of the segment in the MOF.
    pub offset: u64,
    /// Uncompressed segment length.
    pub raw_len: u64,
    /// On-disk segment length (== `raw_len` here; no compression).
    pub part_len: u64,
}

/// The index file: one entry per ReduceTask.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MofIndex {
    entries: Vec<IndexEntry>,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl MofIndex {
    /// An index over the given entries.
    pub fn new(entries: Vec<IndexEntry>) -> Self {
        MofIndex { entries }
    }

    /// Entry for reducer `r`, if present.
    pub fn entry(&self, r: usize) -> Option<IndexEntry> {
        self.entries.get(r).copied()
    }

    /// Number of segments (== number of reducers).
    pub fn num_segments(&self) -> usize {
        self.entries.len()
    }

    /// All entries.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Serialize to the on-disk index format.
    pub fn to_bytes(&self) -> Bytes {
        let mut body = BytesMut::with_capacity(8 + self.entries.len() * 24);
        body.put_u32(INDEX_MAGIC);
        body.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            body.put_u64(e.offset);
            body.put_u64(e.raw_len);
            body.put_u64(e.part_len);
        }
        let crc = fnv1a(&body);
        body.put_u64(crc);
        body.freeze()
    }

    /// Parse the on-disk index format.
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self, MofError> {
        if buf.len() < 16 {
            return Err(MofError::Truncated);
        }
        let body_len = buf.len() - 8;
        let crc_stored = u64::from_be_bytes(buf[body_len..].try_into().unwrap());
        if fnv1a(&buf[..body_len]) != crc_stored {
            return Err(MofError::BadChecksum);
        }
        let magic = buf.get_u32();
        if magic != INDEX_MAGIC {
            return Err(MofError::BadMagic);
        }
        let count = buf.get_u32() as usize;
        if buf.remaining() < count * 24 + 8 {
            return Err(MofError::Truncated);
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(IndexEntry {
                offset: buf.get_u64(),
                raw_len: buf.get_u64(),
                part_len: buf.get_u64(),
            });
        }
        Ok(MofIndex { entries })
    }

    /// Total payload bytes across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.part_len).sum()
    }
}

/// Builds a MOF and its index, one segment per reducer, in reducer order.
pub struct MofWriter {
    data: BytesMut,
    entries: Vec<IndexEntry>,
    seg_start: Option<u64>,
}

impl Default for MofWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl MofWriter {
    /// An empty writer.
    pub fn new() -> Self {
        MofWriter {
            data: BytesMut::new(),
            entries: Vec::new(),
            seg_start: None,
        }
    }

    /// Begin the next reducer's segment.
    pub fn begin_segment(&mut self) {
        assert!(self.seg_start.is_none(), "previous segment still open");
        self.seg_start = Some(self.data.len() as u64);
    }

    /// Append one key/value record to the open segment.
    pub fn append(&mut self, key: &[u8], value: &[u8]) {
        assert!(self.seg_start.is_some(), "no open segment");
        self.data.put_u32(key.len() as u32);
        self.data.put_u32(value.len() as u32);
        self.data.put_slice(key);
        self.data.put_slice(value);
    }

    /// Close the open segment.
    pub fn end_segment(&mut self) {
        let start = self.seg_start.take().expect("no open segment");
        self.data.put_u32(END_MARKER);
        let len = self.data.len() as u64 - start;
        self.entries.push(IndexEntry {
            offset: start,
            raw_len: len,
            part_len: len,
        });
    }

    /// Finish the MOF, yielding the data bytes and the index.
    pub fn finish(self) -> (Bytes, MofIndex) {
        assert!(self.seg_start.is_none(), "segment left open");
        (self.data.freeze(), MofIndex::new(self.entries))
    }
}

/// Iterates the records of one segment's bytes.
pub struct SegmentReader<'a> {
    buf: &'a [u8],
    done: bool,
}

impl<'a> SegmentReader<'a> {
    /// A reader over `segment` (the `part_len` bytes at the index entry's
    /// offset).
    pub fn new(segment: &'a [u8]) -> Self {
        SegmentReader {
            buf: segment,
            done: false,
        }
    }
}

impl<'a> Iterator for SegmentReader<'a> {
    type Item = Result<(&'a [u8], &'a [u8]), MofError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.buf.len() < 4 {
            self.done = true;
            return Some(Err(MofError::Truncated));
        }
        let klen = u32::from_be_bytes(self.buf[..4].try_into().unwrap());
        if klen == END_MARKER {
            self.done = true;
            return None;
        }
        if self.buf.len() < 8 {
            self.done = true;
            return Some(Err(MofError::Truncated));
        }
        let vlen = u32::from_be_bytes(self.buf[4..8].try_into().unwrap());
        let (klen, vlen) = (klen as usize, vlen as usize);
        if self.buf.len() < 8 + klen + vlen {
            self.done = true;
            return Some(Err(MofError::CorruptRecord));
        }
        let key = &self.buf[8..8 + klen];
        let value = &self.buf[8 + klen..8 + klen + vlen];
        self.buf = &self.buf[8 + klen + vlen..];
        Some(Ok((key, value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_mof(segments: &[Vec<(&str, &str)>]) -> (Bytes, MofIndex) {
        let mut w = MofWriter::new();
        for seg in segments {
            w.begin_segment();
            for (k, v) in seg {
                w.append(k.as_bytes(), v.as_bytes());
            }
            w.end_segment();
        }
        w.finish()
    }

    #[test]
    fn roundtrip_two_segments() {
        let (data, index) = build_mof(&[
            vec![("apple", "1"), ("banana", "2")],
            vec![("cherry", "3")],
        ]);
        assert_eq!(index.num_segments(), 2);
        let e0 = index.entry(0).unwrap();
        let seg0 = &data[e0.offset as usize..(e0.offset + e0.part_len) as usize];
        let recs: Vec<_> = SegmentReader::new(seg0).map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], (&b"apple"[..], &b"1"[..]));
        assert_eq!(recs[1], (&b"banana"[..], &b"2"[..]));
        let e1 = index.entry(1).unwrap();
        let seg1 = &data[e1.offset as usize..(e1.offset + e1.part_len) as usize];
        let recs1: Vec<_> = SegmentReader::new(seg1).map(|r| r.unwrap()).collect();
        assert_eq!(recs1, vec![(&b"cherry"[..], &b"3"[..])]);
    }

    #[test]
    fn empty_segment_is_valid() {
        let (data, index) = build_mof(&[vec![]]);
        let e = index.entry(0).unwrap();
        assert_eq!(e.part_len, 4); // just the end marker
        let seg = &data[e.offset as usize..(e.offset + e.part_len) as usize];
        assert_eq!(SegmentReader::new(seg).count(), 0);
    }

    #[test]
    fn index_serialization_roundtrip() {
        let (_, index) = build_mof(&[vec![("k", "v")], vec![], vec![("a", "b")]]);
        let bytes = index.to_bytes();
        let back = MofIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back, index);
        assert_eq!(back.total_bytes(), index.total_bytes());
    }

    #[test]
    fn index_detects_corruption() {
        let (_, index) = build_mof(&[vec![("k", "v")]]);
        let mut bytes = index.to_bytes().to_vec();
        bytes[9] ^= 0xFF;
        assert_eq!(MofIndex::from_bytes(&bytes), Err(MofError::BadChecksum));
        assert_eq!(MofIndex::from_bytes(&bytes[..3]), Err(MofError::Truncated));
    }

    #[test]
    fn index_detects_bad_magic() {
        let (_, index) = build_mof(&[vec![]]);
        let mut bytes = index.to_bytes().to_vec();
        // Flip the magic and recompute the checksum so only magic is wrong.
        bytes[0] ^= 0xFF;
        let body_len = bytes.len() - 8;
        let crc = super::fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(MofIndex::from_bytes(&bytes), Err(MofError::BadMagic));
    }

    #[test]
    fn reader_detects_truncated_segment() {
        let (data, index) = build_mof(&[vec![("longkey", "longvalue")]]);
        let e = index.entry(0).unwrap();
        let seg = &data[e.offset as usize..(e.offset + e.part_len) as usize - 6];
        let last = SegmentReader::new(seg).last().unwrap();
        assert!(last.is_err());
    }

    #[test]
    fn offsets_are_contiguous() {
        let (data, index) = build_mof(&[vec![("a", "1")], vec![("b", "2")], vec![("c", "3")]]);
        let mut expect = 0;
        for e in index.entries() {
            assert_eq!(e.offset, expect);
            assert_eq!(e.raw_len, e.part_len);
            expect += e.part_len;
        }
        assert_eq!(expect, data.len() as u64);
        assert_eq!(index.total_bytes(), data.len() as u64);
    }

    #[test]
    fn binary_keys_and_values_roundtrip() {
        let mut w = MofWriter::new();
        w.begin_segment();
        let key = [0u8, 255, 127, 4];
        let val = [9u8; 1000];
        w.append(&key, &val);
        w.end_segment();
        let (data, index) = w.finish();
        let e = index.entry(0).unwrap();
        let seg = &data[e.offset as usize..(e.offset + e.part_len) as usize];
        let (k, v) = SegmentReader::new(seg).next().unwrap().unwrap();
        assert_eq!(k, key);
        assert_eq!(v, val);
    }

    #[test]
    #[should_panic]
    fn append_without_segment_panics() {
        let mut w = MofWriter::new();
        w.append(b"k", b"v");
    }
}
