//! External sorting: the MapTask's sort/spill/merge pipeline, for real.
//!
//! A MapTask buffers map output in memory (`io.sort.mb`), sorts and spills
//! sorted runs to disk when the buffer fills, and finally merges the runs
//! into the MOF's per-reducer segments. The simulator charges time for
//! this; here is the actual algorithm, used by examples and tests that
//! build genuine MOFs larger than memory. Spill files use the MOF segment
//! record format, and the final merge streams them back through
//! [`crate::levitate`] with bounded memory.

use crate::levitate::{RecordParser, RecordStream, StreamingMerge};
use crate::merge::{sort_run, Record};
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Marker terminating a spill file's record stream (MOF format).
const END_MARKER: u32 = 0xFFFF_FFFF;

/// Statistics from one external sort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SortStats {
    /// Records sorted.
    pub records: u64,
    /// Sorted runs spilled to disk.
    pub spills: u64,
    /// Bytes written to spill files.
    pub spilled_bytes: u64,
}

/// An external sorter with a fixed in-memory budget.
pub struct ExternalSorter {
    dir: PathBuf,
    budget_bytes: usize,
    current: Vec<Record>,
    current_bytes: usize,
    spill_files: Vec<PathBuf>,
    stats: SortStats,
}

impl ExternalSorter {
    /// A sorter spilling into `dir` when buffered records exceed
    /// `budget_bytes`.
    pub fn new(dir: &Path, budget_bytes: usize) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(ExternalSorter {
            dir: dir.to_path_buf(),
            budget_bytes: budget_bytes.max(1),
            current: Vec::new(),
            current_bytes: 0,
            spill_files: Vec::new(),
            stats: SortStats::default(),
        })
    }

    /// Add one record, spilling if the buffer is full.
    pub fn add(&mut self, key: Vec<u8>, value: Vec<u8>) -> io::Result<()> {
        self.current_bytes += 8 + key.len() + value.len();
        self.current.push((key, value));
        self.stats.records += 1;
        if self.current_bytes >= self.budget_bytes {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> io::Result<()> {
        if self.current.is_empty() {
            return Ok(());
        }
        sort_run(&mut self.current);
        let path = self.dir.join(format!("spill-{}.run", self.spill_files.len()));
        let mut w = BufWriter::new(File::create(&path)?);
        for (k, v) in self.current.drain(..) {
            w.write_all(&(k.len() as u32).to_be_bytes())?;
            w.write_all(&(v.len() as u32).to_be_bytes())?;
            w.write_all(&k)?;
            w.write_all(&v)?;
            self.stats.spilled_bytes += 8 + k.len() as u64 + v.len() as u64;
        }
        w.write_all(&END_MARKER.to_be_bytes())?;
        w.flush()?;
        self.spill_files.push(path);
        self.stats.spills += 1;
        self.current_bytes = 0;
        Ok(())
    }

    /// Number of runs spilled so far.
    pub fn spills(&self) -> u64 {
        self.stats.spills
    }

    /// Finish: merge the in-memory run and every spill into one sorted
    /// vector (the final merge streams spills with bounded memory).
    /// Spill files are removed afterwards.
    pub fn finish(mut self) -> io::Result<(Vec<Record>, SortStats)> {
        sort_run(&mut self.current);
        if self.spill_files.is_empty() {
            let stats = self.stats;
            return Ok((std::mem::take(&mut self.current), stats));
        }
        let mut streams: Vec<RunStream> = Vec::with_capacity(self.spill_files.len() + 1);
        for path in &self.spill_files {
            streams.push(RunStream::file(path)?);
        }
        streams.push(RunStream::memory(std::mem::take(&mut self.current)));
        let merged = StreamingMerge::new(streams).collect_all()?;
        for path in &self.spill_files {
            let _ = fs::remove_file(path);
        }
        let stats = self.stats;
        Ok((merged, stats))
    }
}

/// A sorted run: either a spill file streamed through the incremental
/// parser, or the final in-memory run.
enum RunStream {
    File {
        reader: BufReader<File>,
        parser: RecordParser,
        eof: bool,
    },
    Memory(std::vec::IntoIter<Record>),
}

impl RunStream {
    fn file(path: &Path) -> io::Result<Self> {
        Ok(RunStream::File {
            reader: BufReader::new(File::open(path)?),
            parser: RecordParser::new(),
            eof: false,
        })
    }

    fn memory(run: Vec<Record>) -> Self {
        RunStream::Memory(run.into_iter())
    }
}

impl RecordStream for RunStream {
    fn next_record(&mut self) -> io::Result<Option<Record>> {
        match self {
            RunStream::Memory(it) => Ok(it.next()),
            RunStream::File {
                reader,
                parser,
                eof,
            } => loop {
                if let Some(rec) = parser.pop()? {
                    return Ok(Some(rec));
                }
                if parser.finished() {
                    return Ok(None);
                }
                if *eof {
                    if parser.pending_bytes() == 0 {
                        return Ok(None);
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "spill file truncated",
                    ));
                }
                let mut buf = [0u8; 64 << 10];
                let n = reader.read(&mut buf)?;
                if n == 0 {
                    *eof = true;
                } else {
                    parser.push(&buf[..n]);
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::is_sorted;
    use jbs_des::DetRng;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_dir() -> PathBuf {
        std::env::temp_dir().join(format!(
            "jbs-extsort-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn random_records(n: usize, seed: u64) -> Vec<Record> {
        let mut rng = DetRng::new(seed);
        (0..n)
            .map(|_| {
                let mut k = vec![0u8; rng.uniform_u64(1, 20) as usize];
                rng.fill_bytes(&mut k);
                let v = vec![0xEE; rng.uniform_u64(0, 50) as usize];
                (k, v)
            })
            .collect()
    }

    #[test]
    fn in_memory_sort_when_under_budget() {
        let dir = temp_dir();
        let mut s = ExternalSorter::new(&dir, 1 << 20).unwrap();
        let recs = random_records(100, 1);
        for (k, v) in recs.clone() {
            s.add(k, v).unwrap();
        }
        assert_eq!(s.spills(), 0);
        let (sorted, stats) = s.finish().unwrap();
        assert_eq!(stats.spills, 0);
        assert_eq!(stats.records, 100);
        assert_eq!(sorted.len(), 100);
        assert!(is_sorted(&sorted));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spills_and_merges_correctly() {
        let dir = temp_dir();
        // ~2 KB budget forces many spills for 2000 records.
        let mut s = ExternalSorter::new(&dir, 2 << 10).unwrap();
        let recs = random_records(2000, 2);
        for (k, v) in recs.clone() {
            s.add(k, v).unwrap();
        }
        assert!(s.spills() > 5, "expected many spills, got {}", s.spills());
        let (sorted, stats) = s.finish().unwrap();
        assert_eq!(sorted.len(), 2000);
        assert!(is_sorted(&sorted));
        assert!(stats.spilled_bytes > 0);

        // Same key order as a plain sort, and the same record multiset
        // (value order among equal keys is unspecified, as in MapReduce).
        let mut expect = recs;
        sort_run(&mut expect);
        let sorted_keys: Vec<&Vec<u8>> = sorted.iter().map(|(k, _)| k).collect();
        let expect_keys: Vec<&Vec<u8>> = expect.iter().map(|(k, _)| k).collect();
        assert_eq!(sorted_keys, expect_keys);
        let mut sorted_multiset = sorted.clone();
        sort_run(&mut sorted_multiset);
        assert_eq!(sorted_multiset, expect);

        // Spill files are cleaned up.
        let leftovers = fs::read_dir(&dir).unwrap().count();
        assert_eq!(leftovers, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_sorter_finishes_empty() {
        let dir = temp_dir();
        let s = ExternalSorter::new(&dir, 1024).unwrap();
        let (sorted, stats) = s.finish().unwrap();
        assert!(sorted.is_empty());
        assert_eq!(stats, SortStats::default());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_keys_survive() {
        let dir = temp_dir();
        let mut s = ExternalSorter::new(&dir, 64).unwrap(); // spill constantly
        for i in 0..50u8 {
            s.add(b"same-key".to_vec(), vec![i]).unwrap();
        }
        let (sorted, _) = s.finish().unwrap();
        assert_eq!(sorted.len(), 50);
        assert!(sorted.iter().all(|(k, _)| k == b"same-key"));
        // All 50 distinct values present.
        let mut values: Vec<u8> = sorted.iter().map(|(_, v)| v[0]).collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), 50);
        fs::remove_dir_all(&dir).ok();
    }
}
