//! Cluster configuration: the paper's testbed, parameterized.
//!
//! Section V: two 23-node clusters (1 master + 22 slaves), each node with
//! four hex-core 2.67 GHz Xeon X5650s (24 cores), 24 GB of memory and two
//! 500 GB SATA drives; 4 MapTask slots and 2 ReduceTask slots per slave;
//! HDFS block size 256 MB.

use jbs_des::SimTime;
use jbs_disk::DiskParams;
use jbs_net::Protocol;

/// Static description of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of slave (worker) nodes. The master runs the JobTracker and
    /// NameNode and does no data work, so it is not simulated.
    pub slaves: usize,
    /// CPU cores per node.
    pub cores_per_node: u32,
    /// Physical memory per node in bytes.
    pub mem_bytes: u64,
    /// Memory available to the OS page cache (what's left after Hadoop
    /// daemons and task JVMs take their share).
    pub page_cache_bytes: u64,
    /// Data disks per node.
    pub disks_per_node: usize,
    /// Mechanical parameters of each disk.
    pub disk: DiskParams,
    /// Concurrent MapTask slots per node.
    pub map_slots: u32,
    /// Concurrent ReduceTask slots per node.
    pub reduce_slots: u32,
    /// HDFS block size in bytes (one MapTask per block).
    pub block_bytes: u64,
    /// Transport protocol in force for the shuffle.
    pub protocol: Protocol,
    /// Switch-core oversubscription factor (1.0 = non-blocking, the
    /// paper's testbed; production fabrics of the era ran 4:1+, see
    /// Sec. II's motivation).
    pub oversubscription: f64,
    /// CPU utilization sampling bin (the paper traces `sar` every 5 s).
    pub cpu_sample_bin: SimTime,
}

impl ClusterConfig {
    /// The paper's testbed with 22 slaves on the given protocol.
    pub fn paper_testbed(protocol: Protocol) -> Self {
        ClusterConfig {
            slaves: 22,
            cores_per_node: 24,
            mem_bytes: 24 << 30,
            // Of 24 GB, the TaskTracker, DataNode and up to six 1 GB task
            // JVMs (plus their sort buffers and the OS) leave roughly 6 GB
            // of reusable page cache — which is what makes the paper's
            // <=64 GB jobs cache-friendly and its >=128 GB jobs disk-bound
            // (Sec. V-A: 64 GB of MOFs across 22 nodes ~ 2.9 GB/node).
            page_cache_bytes: 6 << 30,
            disks_per_node: 2,
            disk: DiskParams::sata_500gb(),
            map_slots: 4,
            reduce_slots: 2,
            block_bytes: 256 << 20,
            protocol,
            oversubscription: 1.0,
            cpu_sample_bin: SimTime::from_secs(5),
        }
    }

    /// Same testbed scaled to `slaves` nodes (the Fig. 9 scaling sweeps).
    pub fn paper_testbed_scaled(protocol: Protocol, slaves: usize) -> Self {
        ClusterConfig {
            slaves,
            ..Self::paper_testbed(protocol)
        }
    }

    /// A small configuration for unit/integration tests: 4 slaves, small
    /// blocks, small cache, so jobs finish in milliseconds of wall time.
    pub fn tiny(protocol: Protocol) -> Self {
        ClusterConfig {
            slaves: 4,
            cores_per_node: 8,
            mem_bytes: 4 << 30,
            page_cache_bytes: 1 << 30,
            disks_per_node: 2,
            disk: DiskParams::sata_500gb(),
            map_slots: 2,
            reduce_slots: 2,
            block_bytes: 64 << 20,
            protocol,
            oversubscription: 1.0,
            cpu_sample_bin: SimTime::from_secs(5),
        }
    }

    /// Total ReduceTasks a job gets (Hadoop convention: fill every reduce
    /// slot once).
    pub fn num_reducers(&self) -> usize {
        self.slaves * self.reduce_slots as usize
    }

    /// Total map slots across the cluster.
    pub fn total_map_slots(&self) -> usize {
        self.slaves * self.map_slots as usize
    }

    /// Sanity checks; called by the simulator before running.
    pub fn validate(&self) -> Result<(), String> {
        if self.slaves == 0 {
            return Err("cluster needs at least one slave".into());
        }
        if self.map_slots == 0 || self.reduce_slots == 0 {
            return Err("each node needs map and reduce slots".into());
        }
        if self.block_bytes == 0 {
            return Err("block size must be positive".into());
        }
        if self.page_cache_bytes > self.mem_bytes {
            return Err("page cache larger than memory".into());
        }
        if !self.oversubscription.is_finite() || self.oversubscription < 1.0 {
            return Err("oversubscription factor must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_section_v() {
        let c = ClusterConfig::paper_testbed(Protocol::IpoIb);
        assert_eq!(c.slaves, 22);
        assert_eq!(c.cores_per_node, 24);
        assert_eq!(c.map_slots, 4);
        assert_eq!(c.reduce_slots, 2);
        assert_eq!(c.block_bytes, 256 << 20);
        assert_eq!(c.num_reducers(), 44);
        assert_eq!(c.total_map_slots(), 88);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scaled_testbed_changes_only_node_count() {
        let c = ClusterConfig::paper_testbed_scaled(Protocol::Rdma, 12);
        assert_eq!(c.slaves, 12);
        assert_eq!(c.num_reducers(), 24);
        assert_eq!(c.block_bytes, 256 << 20);
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut c = ClusterConfig::tiny(Protocol::Tcp1GigE);
        c.slaves = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::tiny(Protocol::Tcp1GigE);
        c.map_slots = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::tiny(Protocol::Tcp1GigE);
        c.page_cache_bytes = c.mem_bytes + 1;
        assert!(c.validate().is_err());
    }
}
