//! # jbs-mapred — a miniature Hadoop MapReduce runtime model
//!
//! Everything JBS plugs into, built from scratch:
//!
//! * [`mof`] — the Map Output File and Index file **binary formats**
//!   (Hadoop's IFile/index pair, simplified but real: the loopback
//!   dataplane in `jbs-transport` serves genuine MOF bytes with them);
//! * [`merge`] — sorting and k-way merge of key/value runs, the substrate
//!   under both Hadoop's sort/merge and JBS's merging;
//! * [`extsort`] — the MapTask's external sort/spill/merge pipeline as a
//!   real algorithm (bounded memory, spill files in the MOF record
//!   format);
//! * [`levitate`] — the network-levitated merge as a streaming algorithm:
//!   an incremental record parser plus a bounded-lookahead merge over
//!   lazily refilled record streams (used on real sockets by
//!   `jbs-transport`);
//! * [`cluster`] / [`job`] — the testbed and workload descriptions
//!   (23 nodes, 4 MapTask + 2 ReduceTask slots per slave, 256 MB HDFS
//!   blocks — Sec. V);
//! * [`sim`] — the discrete-event job simulator: map phase, a pluggable
//!   [`sim::ShuffleEngine`] (the paper's "plugin module" boundary,
//!   MAPREDUCE-4049), and the reduce phase, producing job execution times
//!   and per-node CPU timelines.
//!
//! The shuffle engines themselves — stock Hadoop's HttpServlet/MOFCopier
//! path and the JBS MOFSupplier/NetMerger path — live in `jbs-core` and
//! implement [`sim::ShuffleEngine`].

pub mod cluster;
pub mod extsort;
pub mod job;
pub mod levitate;
pub mod merge;
pub mod mof;
pub mod sim;

pub use cluster::ClusterConfig;
pub use job::JobSpec;
pub use mof::{IndexEntry, MofIndex, MofWriter, SegmentReader};
pub use sim::{JobResult, JobSimulator, ShuffleEngine, ShuffleOutcome, ShufflePlan};
