//! Criterion benchmarks of the *real* TCP dataplane (wall-clock, real
//! bytes over loopback): fetch throughput vs transport buffer size, and
//! levitated vs materializing merge.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jbs_des::DetRng;
use jbs_transport::client::SegmentRef;
use jbs_transport::{MofStore, MofSupplierServer, NetMergerClient};

/// Build one supplier holding a single-segment MOF of `n` 100-byte
/// records.
fn supplier(n: usize, seed: u64) -> MofSupplierServer {
    let mut rng = DetRng::new(seed);
    let records: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
        .map(|_| {
            let mut k = vec![0u8; 10];
            rng.fill_bytes(&mut k);
            (k, vec![0xAB; 90])
        })
        .collect();
    let mut store = MofStore::temp().expect("store");
    store.write_mof(0, records, 1, |_| 0).expect("mof");
    MofSupplierServer::start(store).expect("server")
}

fn bench_fetch_buffer_sizes(c: &mut Criterion) {
    let server = supplier(20_000, 1);
    let seg = SegmentRef {
        addr: server.addr(),
        mof: 0,
        reducer: 0,
    };
    let mut g = c.benchmark_group("realplane_fetch");
    g.throughput(Throughput::Bytes(20_000 * 100));
    for kb in [8u64, 128] {
        g.bench_function(format!("segment_fetch_{kb}KB_buffers"), |b| {
            let client = NetMergerClient::with_config(kb << 10, 512);
            b.iter(|| client.fetch_segment(seg).expect("fetch").len())
        });
    }
    g.finish();
    server.shutdown();
}

fn bench_merge_strategies(c: &mut Criterion) {
    let servers: Vec<MofSupplierServer> = (0..4).map(|i| supplier(5_000, 10 + i)).collect();
    let segs: Vec<SegmentRef> = servers
        .iter()
        .map(|s| SegmentRef {
            addr: s.addr(),
            mof: 0,
            reducer: 0,
        })
        .collect();
    let mut g = c.benchmark_group("realplane_merge");
    g.throughput(Throughput::Elements(4 * 5_000));
    let client = NetMergerClient::new();
    g.bench_function("materializing_merge", |b| {
        b.iter(|| client.shuffle_and_merge(&segs).expect("merge").len())
    });
    g.bench_function("levitated_merge", |b| {
        b.iter(|| client.levitated_merge(&segs).expect("merge").len())
    });
    g.finish();
    for s in servers {
        s.shutdown();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fetch_buffer_sizes, bench_merge_strategies
}
criterion_main!(benches);
