//! Criterion benchmarks of the experiment pipeline itself: one reduced-
//! scale benchmark per paper exhibit, so `cargo bench` exercises the same
//! code paths the `fig*` binaries run at full scale and regressions in
//! simulator performance are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use jbs_core::{EngineKind, JbsConfig};
use jbs_mapred::sim::SimCluster;
use jbs_mapred::{ClusterConfig, JobSimulator, JobSpec, ShufflePlan};
use jbs_workloads::Benchmark;

const SLAVES: usize = 4;
const INPUT: u64 = 4 << 30;

fn run(kind: EngineKind, spec: JobSpec) -> f64 {
    let cfg = ClusterConfig::paper_testbed_scaled(kind.protocol(), SLAVES);
    let sim = JobSimulator::new(cfg, spec);
    let mut engine = kind.build();
    sim.run(engine.as_mut()).job_time.as_secs_f64()
}

fn bench_fig7_terasort(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_terasort");
    for kind in [EngineKind::HadoopOnIpoIb, EngineKind::JbsOnIpoIb] {
        g.bench_function(kind.label(), |b| {
            b.iter(|| run(kind, JobSpec::terasort(INPUT)))
        });
    }
    g.finish();
}

fn bench_fig8_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_protocols");
    for kind in [EngineKind::JbsOnIpoIb, EngineKind::JbsOnRdma] {
        g.bench_function(kind.label(), |b| {
            b.iter(|| run(kind, JobSpec::terasort(INPUT)))
        });
    }
    g.finish();
}

fn bench_fig11_buffers(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_buffer_sweep");
    for kb in [8u64, 128] {
        g.bench_function(format!("{kb}KB"), |b| {
            b.iter(|| {
                let cfg =
                    ClusterConfig::paper_testbed_scaled(EngineKind::JbsOnRdma.protocol(), SLAVES);
                let sim = JobSimulator::new(cfg, JobSpec::terasort(INPUT));
                let mut engine =
                    EngineKind::JbsOnRdma.build_with(JbsConfig::with_buffer(kb << 10));
                sim.run(engine.as_mut()).job_time.as_secs_f64()
            })
        });
    }
    g.finish();
}

fn bench_fig12_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_workloads");
    for bench in [Benchmark::AdjacencyList, Benchmark::WordCount] {
        g.bench_function(bench.label(), |b| {
            b.iter(|| run(EngineKind::JbsOnRdma, bench.spec(INPUT)))
        });
    }
    g.finish();
}

fn bench_shuffle_only_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("shuffle_engine_simulation");
    g.bench_function("jbs_synthetic_plan", |b| {
        b.iter(|| {
            let mut cluster =
                SimCluster::new(ClusterConfig::tiny(EngineKind::JbsOnRdma.protocol()), 1);
            let plan = ShufflePlan::synthetic(4, 4, 2, 4 << 20, 100);
            cluster.warm_mofs(&plan);
            let mut engine = EngineKind::JbsOnRdma.build();
            engine.run(&mut cluster, &plan).all_ready()
        })
    });
    g.bench_function("hadoop_synthetic_plan", |b| {
        b.iter(|| {
            let mut cluster =
                SimCluster::new(ClusterConfig::tiny(EngineKind::HadoopOnIpoIb.protocol()), 1);
            let plan = ShufflePlan::synthetic(4, 4, 2, 4 << 20, 100);
            cluster.warm_mofs(&plan);
            let mut engine = EngineKind::HadoopOnIpoIb.build();
            engine.run(&mut cluster, &plan).all_ready()
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig7_terasort, bench_fig8_protocols, bench_fig11_buffers,
              bench_fig12_workloads, bench_shuffle_only_engines
}
criterion_main!(benches);
