//! Criterion micro-benchmarks for the core data structures: the pieces on
//! the simulator's hot path (event queue, LRU, queueing resources) and the
//! real dataplane's hot path (MOF encode/decode, k-way merge).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use jbs_des::{DetRng, EventQueue, LruCache, SimTime};
use jbs_des::server::FifoServer;
use jbs_disk::PageCache;
use jbs_jvm::{GcModel, GcParams};
use jbs_mapred::merge::{merge_sorted_runs, sort_run, Record};
use jbs_mapred::mof::{MofWriter, SegmentReader};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_pop_10k", |b| {
        let mut rng = DetRng::new(1);
        let times: Vec<u64> = (0..10_000).map(|_| rng.uniform_u64(0, 1 << 30)).collect();
        b.iter(|| {
            let mut q = EventQueue::new();
            for &t in &times {
                q.push(SimTime::from_nanos(t), t);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        })
    });
    g.finish();
}

fn bench_lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_cache");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("mixed_ops_10k", |b| {
        let mut rng = DetRng::new(2);
        let keys: Vec<u64> = (0..10_000).map(|_| rng.uniform_u64(0, 2048)).collect();
        b.iter(|| {
            let mut lru = LruCache::new(512);
            let mut hits = 0u64;
            for &k in &keys {
                if lru.touch(&k) {
                    hits += 1;
                } else {
                    lru.insert(k, k);
                }
            }
            hits
        })
    });
    g.finish();
}

fn bench_fifo_server(c: &mut Criterion) {
    let mut g = c.benchmark_group("fifo_server");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("serve_100k", |b| {
        b.iter(|| {
            let mut srv = FifoServer::new();
            let mut t = SimTime::ZERO;
            for i in 0..100_000u64 {
                t = srv.serve(t, SimTime::from_nanos(i % 777)).end;
            }
            t
        })
    });
    g.finish();
}

fn bench_page_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_cache");
    g.throughput(Throughput::Bytes(10_000 * (128 << 10)));
    g.bench_function("stream_reads", |b| {
        b.iter(|| {
            let mut cache = PageCache::new(64 << 20);
            let mut miss = 0u64;
            for i in 0..10_000u64 {
                let file = i % 8;
                let off = (i / 8) * (128 << 10);
                let out = cache.read(file, off, 128 << 10);
                miss += out.miss_bytes();
                cache.fill(file, off, 128 << 10);
            }
            miss
        })
    });
    g.finish();
}

fn bench_gc_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("gc_model");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("allocate_100k", |b| {
        b.iter(|| {
            let mut gc = GcModel::new(GcParams::task_jvm_1g());
            let mut pause = SimTime::ZERO;
            for _ in 0..100_000 {
                pause += gc.allocate(64 << 10);
            }
            pause
        })
    });
    g.finish();
}

fn records(n: usize, seed: u64) -> Vec<Record> {
    let mut rng = DetRng::new(seed);
    (0..n)
        .map(|_| {
            let mut k = vec![0u8; 10];
            rng.fill_bytes(&mut k);
            (k, vec![0u8; 90])
        })
        .collect()
}

fn bench_mof_format(c: &mut Criterion) {
    let recs = records(10_000, 3);
    let mut g = c.benchmark_group("mof_format");
    g.throughput(Throughput::Bytes(10_000 * 100));
    g.bench_function("write_10k_records", |b| {
        b.iter_batched(
            || recs.clone(),
            |recs| {
                let mut w = MofWriter::new();
                w.begin_segment();
                for (k, v) in &recs {
                    w.append(k, v);
                }
                w.end_segment();
                w.finish()
            },
            BatchSize::SmallInput,
        )
    });
    let (data, index) = {
        let mut w = MofWriter::new();
        w.begin_segment();
        for (k, v) in &recs {
            w.append(k, v);
        }
        w.end_segment();
        w.finish()
    };
    let e = index.entry(0).unwrap();
    g.bench_function("read_10k_records", |b| {
        b.iter(|| {
            let seg = &data[e.offset as usize..(e.offset + e.part_len) as usize];
            SegmentReader::new(seg).count()
        })
    });
    g.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("kway_merge");
    let runs: Vec<Vec<Record>> = (0..16)
        .map(|i| {
            let mut r = records(2_000, 100 + i);
            sort_run(&mut r);
            r
        })
        .collect();
    g.throughput(Throughput::Elements(16 * 2_000));
    g.bench_function("merge_16x2k", |b| {
        b.iter_batched(
            || runs.clone(),
            merge_sorted_runs,
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1200))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_event_queue, bench_lru, bench_fifo_server, bench_page_cache,
              bench_gc_model, bench_mof_format, bench_merge
}
criterion_main!(benches);
