//! Parameterized single-experiment runner: pick the engine/protocol, the
//! workload, the size and the cluster, get one measured job.
//!
//! ```sh
//! run_sim [--case <case>] [--bench <name>] [--gb <n>] [--slaves <n>]
//!         [--buffer-kb <n>] [--seed <n>] [--timeline]
//!
//! cases:  hadoop-1g hadoop-10g hadoop-ipoib hadoop-sdp
//!         jbs-1g jbs-10g jbs-ipoib jbs-roce jbs-rdma
//! benches: terasort selfjoin invertedindex sequencecount adjacencylist
//!          wordcount grep
//! ```

use jbs_core::{EngineKind, JbsConfig};
use jbs_mapred::{ClusterConfig, JobSimulator};
use jbs_workloads::Benchmark;

fn parse_case(s: &str) -> Option<EngineKind> {
    Some(match s {
        "hadoop-1g" => EngineKind::HadoopOn1GigE,
        "hadoop-10g" => EngineKind::HadoopOn10GigE,
        "hadoop-ipoib" => EngineKind::HadoopOnIpoIb,
        "hadoop-sdp" => EngineKind::HadoopOnSdp,
        "jbs-1g" => EngineKind::JbsOn1GigE,
        "jbs-10g" => EngineKind::JbsOn10GigE,
        "jbs-ipoib" => EngineKind::JbsOnIpoIb,
        "jbs-roce" => EngineKind::JbsOnRoce,
        "jbs-rdma" => EngineKind::JbsOnRdma,
        _ => return None,
    })
}

fn parse_bench(s: &str) -> Option<Benchmark> {
    Some(match s {
        "terasort" => Benchmark::Terasort,
        "selfjoin" => Benchmark::SelfJoin,
        "invertedindex" => Benchmark::InvertedIndex,
        "sequencecount" => Benchmark::SequenceCount,
        "adjacencylist" => Benchmark::AdjacencyList,
        "wordcount" => Benchmark::WordCount,
        "grep" => Benchmark::Grep,
        _ => return None,
    })
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: {value:?} is not a valid number");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut case = EngineKind::JbsOnRdma;
    let mut bench = Benchmark::Terasort;
    let mut gb = 64u64;
    let mut slaves = 22usize;
    let mut buffer_kb = 128u64;
    let mut seed = 42u64;
    let mut timeline = false;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take = |what: &str| -> String {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a {what}");
                    std::process::exit(2);
                })
                .clone()
        };
        match flag {
            "--case" => {
                let v = take("case name");
                case = parse_case(&v).unwrap_or_else(|| {
                    eprintln!("unknown case {v:?}");
                    std::process::exit(2);
                });
            }
            "--bench" => {
                let v = take("benchmark name");
                bench = parse_bench(&v).unwrap_or_else(|| {
                    eprintln!("unknown benchmark {v:?}");
                    std::process::exit(2);
                });
            }
            "--gb" => gb = parse_num(flag, &take("number")),
            "--slaves" => slaves = parse_num(flag, &take("number")),
            "--buffer-kb" => buffer_kb = parse_num(flag, &take("number")),
            "--seed" => seed = parse_num(flag, &take("number")),
            "--timeline" => timeline = true,
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let cfg = ClusterConfig::paper_testbed_scaled(case.protocol(), slaves);
    let sim = JobSimulator::with_seed(cfg, bench.spec(gb << 30), seed);
    let mut engine = case.build_with(JbsConfig::with_buffer(buffer_kb << 10));
    let r = sim.run(engine.as_mut());

    println!("{} / {} {gb} GB / {slaves} slaves / seed {seed}", case.label(), bench.label());
    println!("  job execution time : {:>9.1} s", r.job_time.as_secs_f64());
    println!("  map phase end      : {:>9.1} s", r.map_phase_end.as_secs_f64());
    println!("  shuffle all ready  : {:>9.1} s", r.shuffle_all_ready.as_secs_f64());
    println!("  mean CPU util      : {:>9.1} %", r.mean_cpu_utilization());
    println!(
        "  bytes shuffled     : {:>9.2} GB",
        r.bytes_shuffled as f64 / (1u64 << 30) as f64
    );
    println!(
        "  reduce-side spills : {:>9.2} GB",
        r.spilled_bytes as f64 / (1u64 << 30) as f64
    );
    println!("  connections        : {:>9}", r.connections_established);
    println!(
        "  disk: busy {:.0}s, {} seeks, {:.1} GB read, {:.1} GB written",
        r.disk_busy.as_secs_f64(),
        r.disk_seeks,
        r.disk_bytes_read as f64 / (1u64 << 30) as f64,
        r.disk_bytes_written as f64 / (1u64 << 30) as f64,
    );
    if timeline {
        println!("\n  CPU utilization timeline (5 s sar bins, cluster average):");
        for (t, u) in r.cpu_timeline() {
            let bar = "#".repeat((u / 2.0) as usize);
            println!("  {:>6.0}s {:>5.1}% {}", t.as_secs_f64(), u, bar);
        }
    }
}
