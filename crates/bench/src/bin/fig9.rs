//! Fig. 9: scalability — strong scaling (fixed 256 GB input) and weak
//! scaling (6 GB per ReduceTask) over 12–22 slave nodes, on both fabrics.

use jbs_bench::runner::{improvement_pct, print_table, run_case, Row};
use jbs_core::EngineKind;
use jbs_mapred::JobSpec;

/// Strong scaling: fixed total input.
const STRONG_INPUT: u64 = 256 << 30;
/// Weak scaling: fixed input per ReduceTask (2 reducers per node).
const WEAK_PER_REDUCER: u64 = 6 << 30;

fn sweep(title: &str, kinds: &[EngineKind], weak: bool) -> Vec<Row> {
    let series: Vec<String> = kinds.iter().map(|k| k.label()).collect();
    let mut rows = Vec::new();
    for slaves in (12..=22).step_by(2) {
        let input = if weak {
            WEAK_PER_REDUCER * 2 * slaves as u64
        } else {
            STRONG_INPUT
        };
        let cells: Vec<f64> = kinds
            .iter()
            .map(|&k| {
                run_case(k, JobSpec::terasort(input), slaves, 42)
                    .job_time
                    .as_secs_f64()
            })
            .collect();
        rows.push(Row {
            key: slaves.to_string(),
            cells,
        });
    }
    print_table(title, "slave nodes", &series, &rows);
    rows
}

fn mean_improvement(rows: &[Row], base: usize, new: usize) -> f64 {
    rows.iter()
        .map(|r| improvement_pct(r.cells[base], r.cells[new]))
        .sum::<f64>()
        / rows.len() as f64
}

fn main() {
    let ib = [
        EngineKind::HadoopOnIpoIb,
        EngineKind::JbsOnIpoIb,
        EngineKind::JbsOnRdma,
    ];
    let eth = [
        EngineKind::HadoopOn10GigE,
        EngineKind::JbsOn10GigE,
        EngineKind::JbsOnRoce,
    ];

    let a = sweep(
        "Fig. 9(a): Strong Scaling (256 GB Terasort) — InfiniBand",
        &ib,
        false,
    );
    let b = sweep(
        "Fig. 9(b): Weak Scaling (6 GB/ReduceTask Terasort) — InfiniBand",
        &ib,
        true,
    );
    let c = sweep(
        "Fig. 9(c): Strong Scaling (256 GB Terasort) — Ethernet",
        &eth,
        false,
    );
    let d = sweep(
        "Fig. 9(d): Weak Scaling (6 GB/ReduceTask Terasort) — Ethernet",
        &eth,
        true,
    );

    println!("\nHeadline comparisons (paper values in parentheses):");
    println!(
        "  strong IB:  JBS-RDMA vs Hadoop-IPoIB {:.1}% (49.5%), JBS-IPoIB vs Hadoop-IPoIB {:.1}% (20.9%)",
        mean_improvement(&a, 0, 2),
        mean_improvement(&a, 0, 1)
    );
    println!(
        "  weak IB:    JBS-RDMA vs Hadoop-IPoIB {:.1}% (43.6%), JBS-IPoIB vs Hadoop-IPoIB {:.1}% (21.1%)",
        mean_improvement(&b, 0, 2),
        mean_improvement(&b, 0, 1)
    );
    println!(
        "  strong Eth: JBS-RoCE vs Hadoop-10GigE {:.1}% (up to 41.9%), JBS-10GigE vs Hadoop-10GigE {:.1}% (17.6%)",
        mean_improvement(&c, 0, 2),
        mean_improvement(&c, 0, 1)
    );
    println!(
        "  weak Eth:   JBS-RoCE vs Hadoop-10GigE {:.1}% (up to 40.4%), JBS-10GigE vs Hadoop-10GigE {:.1}% (23.8%)",
        mean_improvement(&d, 0, 2),
        mean_improvement(&d, 0, 1)
    );
    // Strong scaling should reduce execution time with more nodes.
    let first = a[0].cells[2];
    let last = a[a.len() - 1].cells[2];
    println!(
        "  strong-scaling speedup 12->22 nodes (JBS-RDMA): {:.2}x (paper: near-linear reduction)",
        first / last
    );
}
