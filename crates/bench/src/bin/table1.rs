//! Table I: test-case description — transport protocol and network for
//! every configuration evaluated in the paper.

use jbs_core::EngineKind;

fn main() {
    println!("TABLE I: Test Case Description");
    println!("{:<20}  {:<18}  {:<12}", "Test Cases", "Transport Protocol", "Network");
    println!("{}", "-".repeat(54));
    for kind in EngineKind::table1() {
        let proto = kind.protocol();
        // The paper lists the *transport* name, which for the plain-TCP
        // cases is "TCP/IP" rather than the network name.
        let transport = match proto {
            jbs_net::Protocol::Tcp1GigE | jbs_net::Protocol::Tcp10GigE => "TCP/IP",
            p => p.label(),
        };
        println!(
            "{:<20}  {:<18}  {:<12}",
            kind.label(),
            transport,
            proto.network().label()
        );
    }
    println!(
        "\n(Engine kinds also include \"JBS on 1GigE\", used in Fig. 7b: {})",
        EngineKind::JbsOn1GigE.label()
    );
}
