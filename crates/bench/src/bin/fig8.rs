//! Fig. 8: benefits of RDMA — Terasort with JBS on 10GigE, IPoIB, RoCE and
//! RDMA vs input size.

use jbs_bench::runner::{improvement_pct, print_table, run_case, Row};
use jbs_core::EngineKind;
use jbs_mapred::JobSpec;

fn main() {
    let kinds = [
        EngineKind::JbsOn10GigE,
        EngineKind::JbsOnIpoIb,
        EngineKind::JbsOnRoce,
        EngineKind::JbsOnRdma,
    ];
    let series: Vec<String> = kinds.iter().map(|k| k.label()).collect();
    let mut rows = Vec::new();
    for gb in [16u64, 32, 64, 128, 256] {
        let cells: Vec<f64> = kinds
            .iter()
            .map(|&k| {
                run_case(k, JobSpec::terasort(gb << 30), 22, 42)
                    .job_time
                    .as_secs_f64()
            })
            .collect();
        rows.push(Row {
            key: format!("{gb} GB"),
            cells,
        });
    }
    print_table(
        "Fig. 8: Terasort Job Execution Time (sec) — JBS across protocols",
        "input size",
        &series,
        &rows,
    );

    let rdma_vs_ipoib = rows
        .iter()
        .map(|r| improvement_pct(r.cells[1], r.cells[3]))
        .sum::<f64>()
        / rows.len() as f64;
    let roce_vs_10g = rows
        .iter()
        .map(|r| improvement_pct(r.cells[0], r.cells[2]))
        .sum::<f64>()
        / rows.len() as f64;
    println!("\nHeadline comparisons (paper values in parentheses):");
    println!("  JBS-RDMA vs JBS-IPoIB, mean improvement: {rdma_vs_ipoib:.1}% (25.8%)");
    println!("  JBS-RoCE vs JBS-10GigE, mean improvement: {roce_vs_10g:.1}% (15.3%)");
    let all_better = rows.iter().all(|r| {
        r.cells[3] <= r.cells[1] + 0.5 && r.cells[2] <= r.cells[0] + 0.5
    });
    println!(
        "  RDMA/RoCE at least as fast at every size: {}",
        if all_better { "yes (paper: yes)" } else { "NO" }
    );
}
