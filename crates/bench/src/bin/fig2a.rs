//! Fig. 2(a): average MOF read time vs. number of concurrent HttpServlets,
//! for Java stream reads, native `read(2)` and native `mmap(2)`.
//!
//! Reproduces the paper's microbenchmark: N concurrent servlets each read
//! one cold 1 GB MOF from a node with two SATA disks. The Java stream path
//! serializes small reads with heavy per-byte CPU, so it is ~3× slower than
//! native C; concurrency adds seek storms for everyone.

use jbs_bench::runner::{print_table, Row};
use jbs_des::SimTime;
use jbs_disk::{DiskParams, FileId, NodeStorage};
use jbs_jvm::ReadMode;

const MOF_BYTES: u64 = 1 << 30;

/// Simulate `n` concurrent servlets reading one MOF each in `mode`,
/// returning the mean per-MOF read time in milliseconds.
fn mof_read_time_ms(n: usize, mode: ReadMode) -> f64 {
    let mut storage = NodeStorage::new(2, DiskParams::sata_500gb(), 6 << 30);
    // Per-servlet stream state: (file, offset, cursor).
    let mut streams: Vec<(FileId, u64, SimTime)> = (0..n)
        .map(|i| (FileId(i as u64), 0, SimTime::ZERO))
        .collect();
    let unit = mode.io_unit();
    let cpu_per_byte = mode.cpu_per_byte();
    let mut total = SimTime::ZERO;
    let mut remaining = n;
    // Advance the earliest-cursor stream one unit at a time, exactly like
    // concurrent servlet threads interleaving on the shared disks.
    while remaining > 0 {
        let (idx, _) = streams
            .iter()
            .enumerate()
            .filter(|(_, (_, off, _))| *off < MOF_BYTES)
            .min_by_key(|(_, (_, _, cur))| *cur)
            .expect("a stream remains");
        let (file, off, cur) = streams[idx];
        let len = unit.min(MOF_BYTES - off);
        let io = storage.read(cur, file, off, len);
        // Serialized read -> stream CPU (Fig. 4: no prefetch, no overlap).
        let cpu = mode.call_overhead() + SimTime::from_secs_f64(len as f64 * cpu_per_byte);
        let done = io.completed + cpu;
        streams[idx] = (file, off + len, done);
        if off + len >= MOF_BYTES {
            total += done;
            remaining -= 1;
        }
    }
    total.as_millis_f64() / n as f64
}

fn main() {
    let modes = [ReadMode::JavaStream, ReadMode::NativeRead, ReadMode::NativeMmap];
    let series: Vec<String> = modes.iter().map(|m| m.label().to_string()).collect();
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8, 16] {
        let cells: Vec<f64> = modes.iter().map(|&m| mof_read_time_ms(n, m)).collect();
        rows.push(Row {
            key: n.to_string(),
            cells,
        });
    }
    print_table(
        "Fig. 2(a): Average MOF Read Time (ms) vs concurrent HttpServlets (1 GB MOF each)",
        "servlets",
        &series,
        &rows,
    );
    // Headline check: the paper reports Java ~3.1x native on average.
    let avg_ratio: f64 = rows
        .iter()
        .map(|r| r.cells[0] / r.cells[1])
        .sum::<f64>()
        / rows.len() as f64;
    println!("\nJava/native-read mean ratio: {avg_ratio:.2}x (paper: 3.1x)");
}
