//! Fig. 12: effectiveness on different benchmarks — the Tarazu suite plus
//! WordCount and Grep at 30 GB input, on InfiniBand (a) and Ethernet (b).

use jbs_bench::runner::{improvement_pct, print_table, run_case, Row};
use jbs_core::EngineKind;
use jbs_workloads::Benchmark;

fn sweep(title: &str, kinds: &[EngineKind]) -> Vec<Row> {
    let series: Vec<String> = kinds.iter().map(|k| k.label()).collect();
    let mut rows = Vec::new();
    for bench in Benchmark::figure12() {
        let cells: Vec<f64> = kinds
            .iter()
            .map(|&k| {
                run_case(k, bench.paper_spec(), 22, 42)
                    .job_time
                    .as_secs_f64()
            })
            .collect();
        rows.push(Row {
            key: bench.label().to_string(),
            cells,
        });
    }
    print_table(title, "benchmark", &series, &rows);
    rows
}

fn main() {
    let ib = sweep(
        "Fig. 12(a): Job Execution Time (sec), 30 GB input — InfiniBand Environment",
        &[
            EngineKind::HadoopOnIpoIb,
            EngineKind::JbsOnIpoIb,
            EngineKind::JbsOnRdma,
        ],
    );
    let eth = sweep(
        "Fig. 12(b): Job Execution Time (sec), 30 GB input — Ethernet Environment",
        &[
            EngineKind::HadoopOn10GigE,
            EngineKind::JbsOn10GigE,
            EngineKind::JbsOnRoce,
        ],
    );

    let shuffle_heavy = ["SelfJoin", "InvertedIndex", "SequenceCount", "AdjacencyList"];
    let mean = |rows: &[Row], new: usize| {
        rows.iter()
            .filter(|r| shuffle_heavy.contains(&r.key.as_str()))
            .map(|r| improvement_pct(r.cells[0], r.cells[new]))
            .sum::<f64>()
            / shuffle_heavy.len() as f64
    };
    println!("\nHeadline comparisons over the four shuffle-heavy benchmarks");
    println!("(paper values in parentheses):");
    println!("  JBS-RDMA vs Hadoop-IPoIB mean: {:.1}% (41%)", mean(&ib, 2));
    println!("  JBS-IPoIB vs Hadoop-IPoIB mean: {:.1}% (26.9%)", mean(&ib, 1));
    println!("  JBS-RoCE vs Hadoop-10GigE mean: {:.1}% (36.1%)", mean(&eth, 2));
    println!("  JBS-10GigE vs Hadoop-10GigE mean: {:.1}% (29.8%)", mean(&eth, 1));
    let adj = ib.iter().find(|r| r.key == "AdjacencyList").expect("row");
    println!(
        "  Best case, AdjacencyList on RDMA: {:.1}% (66.3%)",
        improvement_pct(adj.cells[0], adj.cells[2])
    );
    for light in ["WordCount", "Grep"] {
        let r = ib.iter().find(|r| r.key == light).expect("row");
        println!(
            "  {light}: JBS-RDMA changes job time by {:+.1}% (paper: no gain expected)",
            improvement_pct(r.cells[0], r.cells[2])
        );
    }
}
