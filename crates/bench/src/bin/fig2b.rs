//! Fig. 2(b): time to shuffle one segment between one HttpServlet and one
//! MOFCopier, for Java vs native C on 1GigE vs InfiniBand (IPoIB).
//!
//! The segment is warm in the server's page cache (it was just written by
//! a MapTask). The Java path serializes stream-read CPU with the wire per
//! chunk; the native path keeps a pipeline of chunks in flight. On 1GigE
//! the slow wire hides the JVM; on InfiniBand it does not (Sec. II-B).

use jbs_bench::runner::{print_table, Row};
use jbs_des::SimTime;
use jbs_disk::{DiskParams, FileId, NodeStorage};
use jbs_jvm::PathCosts;
use jbs_net::{Fabric, Protocol};

/// One-servlet-to-one-copier transfer of `bytes`, returning milliseconds.
///
/// Java (Fig. 4): the servlet reads the whole segment through the stream,
/// *then* transmits it; the copier drains arrivals at the JVM receive rate.
/// Native C: read, transmit and receive are pipelined chunk by chunk.
fn shuffle_ms(bytes: u64, protocol: Protocol, costs: &PathCosts) -> f64 {
    let mut storage = NodeStorage::new(2, DiskParams::sata_500gb(), 6 << 30);
    let file = FileId(1);
    storage.write(SimTime::ZERO, file, 0, bytes); // warm MOF
    let mut fabric = Fabric::new(2, protocol);
    let mode = costs.read_mode;
    let unit = mode.io_unit();
    let serialized = costs.is_managed();

    // Read phase (chunked disk + stream CPU, serial within the stream).
    let mut read_done = SimTime::ZERO;
    let mut off = 0u64;
    while off < bytes {
        let len = unit.min(bytes - off);
        let io = storage.read(read_done, file, off, len);
        let read_cpu =
            mode.call_overhead() + SimTime::from_secs_f64(len as f64 * mode.cpu_per_byte());
        read_done = io.completed + read_cpu;
        off += len;
    }

    // Transmit phase: sends paced by the socket drain; receiver processes
    // arrivals serially at its stream rate.
    let mut tx_free = if serialized { read_done } else { SimTime::ZERO };
    let mut recv_cursor = SimTime::ZERO;
    off = 0;
    while off < bytes {
        let len = unit.min(bytes - off);
        let send_at = tx_free + costs.send_cpu(len);
        let timing = fabric.transfer(send_at, 0, 1, len);
        tx_free = timing.tx_done;
        recv_cursor = timing.arrived.max(recv_cursor) + costs.recv_cpu(len);
        off += len;
    }
    // The pipelined native path overlaps read and xmit; end-to-end time is
    // whichever frontier finishes last.
    recv_cursor.max(read_done).as_millis_f64()
}

fn main() {
    let cases: [(&str, Protocol, PathCosts); 4] = [
        ("Java (1GigE)", Protocol::Tcp1GigE, PathCosts::java()),
        ("Native C (1GigE)", Protocol::Tcp1GigE, PathCosts::native_c()),
        ("Java (InfiniBand)", Protocol::IpoIb, PathCosts::java()),
        ("Native C (InfiniBand)", Protocol::IpoIb, PathCosts::native_c()),
    ];
    let series: Vec<String> = cases.iter().map(|(n, _, _)| n.to_string()).collect();
    let mut rows = Vec::new();
    let mut mb = 1u64;
    while mb <= 256 {
        let cells: Vec<f64> = cases
            .iter()
            .map(|(_, p, c)| shuffle_ms(mb << 20, *p, c))
            .collect();
        rows.push(Row {
            key: format!("{mb} MB"),
            cells,
        });
        mb *= 2;
    }
    print_table(
        "Fig. 2(b): Segment Shuffle Time (ms), one HttpServlet to one MOFCopier",
        "segment size",
        &series,
        &rows,
    );
    let last = rows.last().expect("rows");
    println!(
        "\nAt 256 MB: Java/native on InfiniBand = {:.2}x (paper: up to 3.4x); on 1GigE = {:.2}x (hidden)",
        last.cells[2] / last.cells[3],
        last.cells[0] / last.cells[1],
    );
}
