//! Quick calibration probe: Terasort at several sizes on the paper testbed,
//! all engines of Fig. 7/8, printing job time and phase breakdown.

use jbs_bench::runner::run_case;
use jbs_core::EngineKind;
use jbs_mapred::JobSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let gbs: Vec<u64> = if args.len() > 1 {
        args[1..].iter().map(|a| a.parse().unwrap()).collect()
    } else {
        vec![16, 32]
    };
    let kinds = [
        EngineKind::HadoopOn1GigE,
        EngineKind::HadoopOn10GigE,
        EngineKind::HadoopOnIpoIb,
        EngineKind::HadoopOnSdp,
        EngineKind::JbsOn1GigE,
        EngineKind::JbsOn10GigE,
        EngineKind::JbsOnIpoIb,
        EngineKind::JbsOnRoce,
        EngineKind::JbsOnRdma,
    ];
    for gb in gbs {
        println!("--- Terasort {gb} GB, 22 slaves ---");
        for k in kinds {
            let t0 = std::time::Instant::now();
            let r = run_case(k, JobSpec::terasort(gb << 30), 22, 42);
            println!(
                "{:<18} job {:>8.1}s  map_end {:>7.1}s  shuf {:>8.1}s  cpu {:>4.1}%  spill {:>5.1}GB  dbusy {:>7.0}s  seeks {:>8}  dR {:>5.0}GB dW {:>5.0}GB  [wall {:?}]",
                k.label(),
                r.job_time.as_secs_f64(),
                r.map_phase_end.as_secs_f64(),
                r.shuffle_all_ready.as_secs_f64(),
                r.mean_cpu_utilization(),
                r.spilled_bytes as f64 / (1u64 << 30) as f64,
                r.disk_busy.as_secs_f64(),
                r.disk_seeks,
                r.disk_bytes_read as f64 / (1u64 << 30) as f64,
                r.disk_bytes_written as f64 / (1u64 << 30) as f64,
                t0.elapsed(),
            );
        }
    }
}
