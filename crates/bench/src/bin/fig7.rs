//! Fig. 7: benefits of JVM-bypass — Terasort job execution time vs input
//! size, in the InfiniBand environment (a) and the Ethernet environment (b).

use jbs_bench::runner::{improvement_pct, print_table, run_case, Row};
use jbs_core::EngineKind;
use jbs_mapred::JobSpec;

const SLAVES: usize = 22;

fn sweep(title: &str, kinds: &[EngineKind]) -> Vec<Row> {
    let series: Vec<String> = kinds.iter().map(|k| k.label()).collect();
    let mut rows = Vec::new();
    for gb in [16u64, 32, 64, 128, 256] {
        let cells: Vec<f64> = kinds
            .iter()
            .map(|&k| {
                run_case(k, JobSpec::terasort(gb << 30), SLAVES, 42)
                    .job_time
                    .as_secs_f64()
            })
            .collect();
        rows.push(Row {
            key: format!("{gb} GB"),
            cells,
        });
    }
    print_table(title, "input size", &series, &rows);
    rows
}

fn mean_improvement(rows: &[Row], base: usize, new: usize) -> f64 {
    rows.iter()
        .map(|r| improvement_pct(r.cells[base], r.cells[new]))
        .sum::<f64>()
        / rows.len() as f64
}

fn main() {
    let ib = sweep(
        "Fig. 7(a): Terasort Job Execution Time (sec) — InfiniBand Environment",
        &[
            EngineKind::HadoopOnIpoIb,
            EngineKind::HadoopOnSdp,
            EngineKind::JbsOnIpoIb,
        ],
    );
    let eth = sweep(
        "Fig. 7(b): Terasort Job Execution Time (sec) — Ethernet Environment",
        &[
            EngineKind::HadoopOn1GigE,
            EngineKind::HadoopOn10GigE,
            EngineKind::JbsOn1GigE,
            EngineKind::JbsOn10GigE,
        ],
    );

    println!("\nHeadline comparisons (paper values in parentheses):");
    println!(
        "  JBS-IPoIB vs Hadoop-IPoIB, mean improvement: {:.1}% (14.1%)",
        mean_improvement(&ib, 0, 2)
    );
    println!(
        "  JBS-IPoIB vs Hadoop-SDP,  mean improvement: {:.1}% (14.8%)",
        mean_improvement(&ib, 1, 2)
    );
    println!(
        "  JBS-1GigE  vs Hadoop-1GigE,  mean improvement: {:.1}% (20.9%)",
        mean_improvement(&eth, 0, 2)
    );
    println!(
        "  JBS-10GigE vs Hadoop-10GigE, mean improvement: {:.1}% (19.3%)",
        mean_improvement(&eth, 1, 3)
    );
    let at32 = &eth[1];
    println!(
        "  Hadoop-10GigE vs Hadoop-1GigE at 32 GB: {:.1}% (51.5%)",
        improvement_pct(at32.cells[0], at32.cells[1])
    );
    let at256 = &eth[4];
    println!(
        "  JBS vs Hadoop on 10GigE at 256 GB: {:.1}% (26.5%)",
        improvement_pct(at256.cells[1], at256.cells[3])
    );
    println!(
        "  JBS on 1GigE vs 10GigE converge at 256 GB: {:.2}x apart (paper: 'performs similarly')",
        at256.cells[2] / at256.cells[3]
    );
}
