//! Fig. 2(c): time for one ReduceTask to fetch segments simultaneously from
//! N remote nodes, Java vs native C on 1GigE vs InfiniBand.
//!
//! One reducer on node 0; each of the other N nodes holds one MOF with a
//! 256 MB segment for it (warm in the page cache). The Java case runs the
//! stock MOFCopier engine, the native case the JBS NetMerger — both fetch
//! directly (no heartbeat delay, MOFs ready at time zero).

use jbs_bench::runner::{print_table, Row};
use jbs_core::baseline::{HadoopConfig, HadoopShuffle};
use jbs_core::{JbsConfig, JbsShuffle};
use jbs_des::SimTime;
use jbs_disk::FileId;
use jbs_mapred::sim::plan::{MofInfo, ReducerInfo};
use jbs_mapred::sim::{ShuffleEngine, SimCluster};
use jbs_mapred::{ClusterConfig, ShufflePlan};
use jbs_net::Protocol;

const SEG_BYTES: u64 = 256 << 20;

fn plan_n_to_one(n: usize) -> ShufflePlan {
    let mofs = (0..n)
        .map(|i| MofInfo {
            mof_id: i,
            node: i + 1,
            file: FileId(2 * i as u64),
            index_file: FileId(2 * i as u64 + 1),
            ready: SimTime::ZERO,
            seg_bytes: vec![SEG_BYTES],
        })
        .collect();
    ShufflePlan {
        mofs,
        reducers: vec![ReducerInfo { id: 0, node: 0 }],
        avg_record_bytes: 100,
    }
}

fn fetch_ms(n: usize, protocol: Protocol, java: bool) -> f64 {
    let cfg = ClusterConfig::paper_testbed_scaled(protocol, n + 1);
    let mut cluster = SimCluster::new(cfg, 42);
    let plan = plan_n_to_one(n);
    cluster.warm_mofs(&plan);
    let ready = if java {
        // Microbenchmark isolation: no notification delay, and a heap
        // large enough that the copiers never spill (the paper measures
        // pure data movement here, not the merge).
        let mut engine = HadoopShuffle::with_config(HadoopConfig {
            heartbeat: SimTime::ZERO,
            reduce_heap_bytes: 64 << 30,
            ..HadoopConfig::default()
        });
        engine.run(&mut cluster, &plan).all_ready()
    } else {
        let mut engine = JbsShuffle::with_config(JbsConfig {
            notification_latency: SimTime::ZERO,
            ..JbsConfig::default()
        });
        engine.run(&mut cluster, &plan).all_ready()
    };
    ready.as_millis_f64()
}

fn main() {
    let cases: [(&str, Protocol, bool); 4] = [
        ("Java (1GigE)", Protocol::Tcp1GigE, true),
        ("Native C (1GigE)", Protocol::Tcp1GigE, false),
        ("Java (InfiniBand)", Protocol::IpoIb, true),
        ("Native C (InfiniBand)", Protocol::IpoIb, false),
    ];
    let series: Vec<String> = cases.iter().map(|(n, _, _)| n.to_string()).collect();
    let mut rows = Vec::new();
    for n in (2..=20).step_by(2) {
        let cells: Vec<f64> = cases
            .iter()
            .map(|(_, p, java)| fetch_ms(n, *p, *java))
            .collect();
        rows.push(Row {
            key: n.to_string(),
            cells,
        });
    }
    print_table(
        "Fig. 2(c): Segments Shuffle Time (ms), N nodes to one ReduceTask (256 MB each)",
        "nodes",
        &series,
        &rows,
    );
    let mid = &rows[rows.len() / 2];
    println!(
        "\nAt {} nodes: Java/native on InfiniBand = {:.2}x (paper: >2.5x); on 1GigE = {:.2}x (hidden)",
        mid.key,
        mid.cells[2] / mid.cells[3],
        mid.cells[0] / mid.cells[1],
    );
}
