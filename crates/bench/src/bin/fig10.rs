//! Fig. 10: CPU utilization over time (sar, 5-second bins, averaged across
//! all 22 slaves) for Terasort with 128 GB input.
//!
//! (a) InfiniBand, TCP path: Hadoop on IPoIB vs JBS on IPoIB
//! (b) InfiniBand, RDMA path: Hadoop on SDP vs JBS on RDMA
//! (c) Ethernet: Hadoop on 10GigE vs JBS on 10GigE vs JBS on RoCE

use jbs_bench::runner::run_case;
use jbs_core::EngineKind;
use jbs_mapred::{JobResult, JobSpec};

const INPUT: u64 = 128 << 30;

fn run(kind: EngineKind) -> JobResult {
    run_case(kind, JobSpec::terasort(INPUT), 22, 42)
}

fn print_panel(title: &str, cases: &[(&str, &JobResult)]) {
    println!("\n=== {title} ===");
    print!("{:>10}", "time (s)");
    for (name, _) in cases {
        print!("  {name:>20}");
    }
    println!();
    let horizon = cases
        .iter()
        .map(|(_, r)| r.cpu_timeline().len())
        .max()
        .unwrap_or(0);
    let timelines: Vec<Vec<(jbs_des::SimTime, f64)>> =
        cases.iter().map(|(_, r)| r.cpu_timeline()).collect();
    // Print every other bin (10 s granularity) to keep the table readable.
    for i in (0..horizon).step_by(2) {
        print!("{:>10}", i * 5);
        for tl in &timelines {
            match tl.get(i) {
                Some(&(_, u)) => print!("  {u:>20.1}"),
                None => print!("  {:>20}", "-"),
            }
        }
        println!();
    }
    for (name, r) in cases {
        println!(
            "mean CPU utilization, {name}: {:.1}% over {:.0}s job",
            r.mean_cpu_utilization(),
            r.job_time.as_secs_f64()
        );
    }
}

fn main() {
    let hadoop_ipoib = run(EngineKind::HadoopOnIpoIb);
    let jbs_ipoib = run(EngineKind::JbsOnIpoIb);
    let hadoop_sdp = run(EngineKind::HadoopOnSdp);
    let jbs_rdma = run(EngineKind::JbsOnRdma);
    let hadoop_10g = run(EngineKind::HadoopOn10GigE);
    let jbs_10g = run(EngineKind::JbsOn10GigE);
    let jbs_roce = run(EngineKind::JbsOnRoce);

    print_panel(
        "Fig. 10(a): CPU Utilization (%) — InfiniBand, TCP path (Terasort 128 GB)",
        &[
            ("Hadoop on IPoIB", &hadoop_ipoib),
            ("JBS on IPoIB", &jbs_ipoib),
        ],
    );
    print_panel(
        "Fig. 10(b): CPU Utilization (%) — InfiniBand, RDMA path",
        &[("Hadoop on SDP", &hadoop_sdp), ("JBS on RDMA", &jbs_rdma)],
    );
    print_panel(
        "Fig. 10(c): CPU Utilization (%) — Ethernet",
        &[
            ("Hadoop on 10GigE", &hadoop_10g),
            ("JBS on 10GigE", &jbs_10g),
            ("JBS on RoCE", &jbs_roce),
        ],
    );

    // "For fair comparison, we only consider CPU utilization in the same
    // execution period" (Sec. V-D): compare over the shorter job's window.
    let red = |h: &JobResult, j: &JobResult| {
        let window = h.job_time.min(j.job_time);
        let hu = h.mean_cpu_utilization_over(window);
        let ju = j.mean_cpu_utilization_over(window);
        (hu - ju) / hu * 100.0
    };
    println!("\nHeadline comparisons (paper values in parentheses):");
    println!(
        "  JBS-IPoIB lowers CPU utilization vs Hadoop-IPoIB by {:.1}% (48.1%)",
        red(&hadoop_ipoib, &jbs_ipoib)
    );
    println!(
        "  Hadoop-SDP vs Hadoop-IPoIB reduction: {:.1}% (15.8%)",
        red(&hadoop_ipoib, &hadoop_sdp)
    );
    println!(
        "  JBS-RDMA vs Hadoop-SDP reduction: {:.1}% (44.8%)",
        red(&hadoop_sdp, &jbs_rdma)
    );
    println!(
        "  JBS-RoCE vs Hadoop-10GigE reduction: {:.1}% (46.4%)",
        red(&hadoop_10g, &jbs_roce)
    );
    println!(
        "  JBS-10GigE vs Hadoop-10GigE reduction: {:.1}% (33.9%)",
        red(&hadoop_10g, &jbs_10g)
    );
}
