//! Ablations of JBS's design choices (DESIGN.md §6).
//!
//! Each ablation disables one mechanism and measures the shuffle-only
//! completion time on the paper testbed with warm MOFs (A1–A3, A5) or the
//! full job (A1 also end-to-end), plus a connection-cache capacity sweep
//! (A4). These are not paper figures; they quantify how much each design
//! decision of Sec. III/IV contributes.

use jbs_core::{JbsConfig, JbsShuffle};
use jbs_des::SimTime;
use jbs_mapred::sim::{ShuffleEngine, SimCluster};
use jbs_mapred::{ClusterConfig, ShufflePlan};
use jbs_net::{ConnectionManager, Protocol};

/// Shuffle-only completion time for a JBS config on a synthetic all-ready
/// plan (22 nodes, 4 MOFs/node, 2 reducers/node, 4 MB segments, warm).
fn shuffle_secs(mut cfg: JbsConfig, protocol: Protocol) -> f64 {
    cfg.notification_latency = SimTime::ZERO; // direct fetch, no polling
    let cluster_cfg = ClusterConfig::paper_testbed(protocol);
    let mut cluster = SimCluster::new(cluster_cfg, 42);
    let plan = ShufflePlan::synthetic(22, 4, 2, 4 << 20, 100);
    cluster.warm_mofs(&plan);
    let mut engine = JbsShuffle::with_config(cfg);
    engine.run(&mut cluster, &plan).all_ready().as_secs_f64()
}

/// Same plan but cold MOFs (disk-bound): this is where grouping and
/// prefetching earn their keep.
fn shuffle_secs_cold(mut cfg: JbsConfig, protocol: Protocol) -> f64 {
    cfg.notification_latency = SimTime::ZERO; // direct fetch, no polling
    let cluster_cfg = ClusterConfig::paper_testbed(protocol);
    let mut cluster = SimCluster::new(cluster_cfg, 42);
    let plan = ShufflePlan::synthetic(22, 4, 2, 4 << 20, 100);
    let mut engine = JbsShuffle::with_config(cfg);
    engine.run(&mut cluster, &plan).all_ready().as_secs_f64()
}

fn pct(base: f64, ablated: f64) -> f64 {
    (ablated - base) / base * 100.0
}

fn main() {
    let proto = Protocol::Rdma;
    let base_warm = shuffle_secs(JbsConfig::default(), proto);
    let base_cold = shuffle_secs_cold(JbsConfig::default(), proto);
    println!("JBS design ablations (22 slaves, shuffle-only, RDMA)");
    println!("baseline: warm {base_warm:.2}s, cold {base_cold:.2}s\n");

    // A1: pipelined prefetching off (Fig. 4-style serialized servlet).
    let a1 = JbsConfig {
        pipelined_prefetch: false,
        ..JbsConfig::default()
    };
    let a1_cold = shuffle_secs_cold(a1.clone(), proto);
    let a1_warm = shuffle_secs(a1, proto);
    println!(
        "A1 pipelined prefetch OFF: cold {a1_cold:.2}s ({:+.1}%), warm {a1_warm:.2}s ({:+.1}%)",
        pct(base_cold, a1_cold),
        pct(base_warm, a1_warm)
    );

    // A2: request grouping by MOF off (per-chunk disk reads, no batching).
    let a2 = JbsConfig {
        group_by_mof: false,
        ..JbsConfig::default()
    };
    let a2_cold = shuffle_secs_cold(a2, proto);
    println!(
        "A2 MOF grouping/batching OFF: cold {a2_cold:.2}s ({:+.1}%)",
        pct(base_cold, a2_cold)
    );

    // A3: consolidation — emulate per-copier connections by shrinking the
    // connection cache below the node-pair count, forcing constant
    // re-establishment (the resource cost the paper's consolidation saves).
    let a3 = JbsConfig {
        max_connections: 4,
        ..JbsConfig::default()
    };
    let a3_warm = shuffle_secs(a3, proto);
    println!(
        "A3 consolidation OFF (4-connection cache): warm {a3_warm:.2}s ({:+.1}%)",
        pct(base_warm, a3_warm)
    );

    // A4: connection-cache capacity sweep (counts, not time): how many
    // establishments a 22-node all-to-all shuffle needs at each cap.
    println!("\nA4 connection cache capacity sweep (establishments / evictions):");
    for cap in [1usize, 8, 64, 462, 512, 1024] {
        let mut cm = ConnectionManager::with_capacity(proto.params(), cap);
        // One acquire per (client, remote, round) over 3 rounds of
        // round-robin fetching.
        for round in 0..3 {
            for client in 0..22u32 {
                for remote in 0..22u32 {
                    let t = SimTime::from_millis((round * 484 + (client * 22 + remote) as u64) * 10);
                    cm.acquire(t, client, remote);
                }
            }
        }
        let s = cm.stats();
        println!(
            "  cap {cap:>5}: established {:>5}, reused {:>5}, evicted {:>5}",
            s.established, s.reused, s.evicted
        );
    }

    // A5: round-robin injection off (FIFO across groups): measure per-
    // reducer completion-time spread as the fairness metric.
    let spread = |rr: bool| {
        let cfg = JbsConfig {
            round_robin_injection: rr,
            notification_latency: SimTime::ZERO,
            ..JbsConfig::default()
        };
        let cluster_cfg = ClusterConfig::paper_testbed(proto);
        let mut cluster = SimCluster::new(cluster_cfg, 42);
        let plan = ShufflePlan::synthetic(22, 4, 2, 4 << 20, 100);
        cluster.warm_mofs(&plan);
        let out = JbsShuffle::with_config(cfg).run(&mut cluster, &plan);
        let min = out.ready.iter().min().copied().unwrap_or(SimTime::ZERO);
        let max = out.ready.iter().max().copied().unwrap_or(SimTime::ZERO);
        (max.saturating_sub(min)).as_secs_f64()
    };
    let fair = spread(true);
    let unfair = spread(false);
    println!(
        "\nA5 injection fairness: reducer completion spread RR {fair:.3}s vs FIFO {unfair:.3}s ({:+.1}%)",
        pct(fair.max(1e-9), unfair)
    );
}
