//! Beyond the paper: the shuffle under switch-core oversubscription.
//!
//! The paper's motivation (Sec. II) quotes production experience — shuffle
//! traffic "can consume more than 98% network bandwidth" and
//! "oversubscription can quickly saturate the network links" [6] — but its
//! testbed switch was non-blocking. This study sweeps the oversubscription
//! factor on the simulated fabric to ask: does JVM-bypass still matter
//! when the core, not the JVM, is the bottleneck?

use jbs_bench::runner::{improvement_pct, print_table, Row};
use jbs_core::EngineKind;
use jbs_mapred::{ClusterConfig, JobSimulator, JobSpec};

const INPUT: u64 = 64 << 30;

fn run(kind: EngineKind, factor: f64) -> f64 {
    let mut cfg = ClusterConfig::paper_testbed(kind.protocol());
    cfg.oversubscription = factor;
    let sim = JobSimulator::new(cfg, JobSpec::terasort(INPUT));
    let mut engine = kind.build();
    sim.run(engine.as_mut()).job_time.as_secs_f64()
}

fn main() {
    let kinds = [
        EngineKind::HadoopOnIpoIb,
        EngineKind::JbsOnIpoIb,
        EngineKind::JbsOnRdma,
    ];
    let series: Vec<String> = kinds.iter().map(|k| k.label()).collect();
    let mut rows = Vec::new();
    for factor in [1.0f64, 2.0, 4.0, 8.0, 16.0] {
        let cells: Vec<f64> = kinds.iter().map(|&k| run(k, factor)).collect();
        rows.push(Row {
            key: format!("{factor}:1"),
            cells,
        });
    }
    print_table(
        "Oversubscription study: Terasort 64 GB, 22 slaves, job time (sec)",
        "core oversub",
        &series,
        &rows,
    );
    let first = &rows[0];
    let last = rows.last().expect("rows");
    println!(
        "\nJBS-RDMA vs Hadoop-IPoIB gain: {:.1}% non-blocking -> {:.1}% at 16:1",
        improvement_pct(first.cells[0], first.cells[2]),
        improvement_pct(last.cells[0], last.cells[2]),
    );
    println!(
        "Once the core saturates, every engine converges toward core-limited time — \
         the Camdoop observation [6] that motivates in-network aggregation rather \
         than faster endpoints."
    );
}
