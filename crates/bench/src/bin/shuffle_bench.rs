//! Dataplane shuffle benchmark: serial vs pipelined over real loopback
//! TCP, with a synthetic disk delay that makes the disk/network overlap
//! measurable (the Fig. 4 → Fig. 5 transition as a number).
//!
//! * **serial** — servers stage read-aheads inline on the connection
//!   thread (`prefetch: false`) and the client issues one blocking
//!   chunk round-trip at a time, one segment after another: disk and
//!   network time strictly add.
//! * **pipelined** — servers run the dedicated disk prefetch thread and
//!   the client keeps a bounded window of requests in flight per
//!   supplier, injected round-robin across segments (`fetch_all`).
//! * **pipelined+crc** — the pipelined discipline with the v3 wire
//!   dialect: every chunk payload arrives CRC32C-sealed and is
//!   verified before admission, so the delta against plain pipelined
//!   is the end-to-end integrity overhead as a number.
//! * **event-loop** — the pipelined discipline served by the reactor
//!   (`threaded: false`): readiness-polled nonblocking connections,
//!   responses transmitted straight out of refcounted DataCache slabs
//!   with one vectored write per batch. The deltas against pipelined
//!   are the per-connection-thread tax (`syscalls_per_segment`) and
//!   the staging copy tax (`copies_per_byte`) as numbers.
//! * **hybrid-mem / hybrid-spill** — the same segments served from an
//!   attached hybrid store instead of the MOF path. `hybrid-mem` gives
//!   the store enough budget that every byte stays in the MEMORY tier
//!   (zero disk reads); `hybrid-spill` shrinks the budget so the
//!   watermarks push nearly everything to the LOCALFILE tier, with the
//!   same synthetic seek delay charged per spill-file read. The delta
//!   is the memory-tier hit rate as throughput.
//!
//! All modes move byte-identical data through fresh stores and
//! servers, so the only variables are the scheduling discipline, the
//! checksum, and the serving tier. Results go to `BENCH_shuffle.json`
//! (override with `--out`); `--smoke` runs a seconds-scale
//! configuration for CI.

use jbs_des::DetRng;
use jbs_obs::Trace;
use jbs_store_hybrid::{HybridConfig, HybridStore};
use jbs_transport::client::SegmentRef;
use jbs_transport::{ClientConfig, MofStore, MofSupplierServer, NetMergerClient, ServerOptions};
use std::io::Write as _;
use std::time::{Duration, Instant};

/// One benchmark scenario.
struct Scenario {
    /// Supplier ("node") count; one server + one disk thread each.
    nodes: usize,
    /// MOFs per supplier (distinct map outputs on that node).
    mofs_per_node: usize,
    /// Reducers (partitions per MOF).
    reducers: usize,
    /// Records per MOF (split across reducers by hash).
    records_per_mof: usize,
    /// Transport buffer on both ends.
    buffer_bytes: u64,
    /// Server read-ahead batch, in buffers; kept below a segment so the
    /// async run-ahead path participates, not just the first-touch miss.
    prefetch_batch: u64,
    /// Client pipelining window per supplier connection.
    window: usize,
    /// Synthetic latency charged to every read-ahead batch.
    disk_delay: Duration,
    /// Timed repetitions (after one warm-up-free cold run each).
    runs: usize,
}

impl Scenario {
    fn full() -> Self {
        Scenario {
            nodes: 3,
            mofs_per_node: 4,
            reducers: 4,
            records_per_mof: 12_000,
            buffer_bytes: 32 << 10,
            prefetch_batch: 4,
            window: 8,
            disk_delay: Duration::from_millis(2),
            runs: 3,
        }
    }

    fn smoke() -> Self {
        Scenario {
            nodes: 2,
            mofs_per_node: 2,
            reducers: 2,
            records_per_mof: 3_000,
            buffer_bytes: 16 << 10,
            prefetch_batch: 4,
            window: 8,
            disk_delay: Duration::from_millis(2),
            runs: 1,
        }
    }
}

/// Measured result of one mode.
struct Measured {
    /// Payload bytes moved per timed run.
    bytes: u64,
    /// Mean wall-clock seconds per run.
    secs: f64,
    /// Throughput in MiB/s derived from the two above.
    mib_per_sec: f64,
    /// Checksum of all payloads, to pin byte-identity across modes.
    checksum: u64,
    /// Mean seconds per run with at least one `disk.read` span open
    /// (union over all suppliers), from the structured trace.
    disk_read_secs: f64,
    /// Mean seconds per run with at least one `net.xmit` span open.
    net_xmit_secs: f64,
    /// Mean disk/net overlap fraction per run (of the smaller union):
    /// the Fig. 4 → Fig. 5 transition as a number.
    overlap_frac: f64,
    /// Supplier-side socket syscalls (reads + vectored writes) per
    /// served segment, from the server stats counters. The event loop
    /// batches responses into single vectored writes, so this is where
    /// its syscall saving shows up.
    syscalls_per_segment: f64,
    /// Supplier-side staging/reply copy bytes per payload byte served.
    /// The threaded path copies every miss out of the DataCache; the
    /// reactor transmits from refcounted slab leases, so cache-resident
    /// traffic drives this toward zero.
    copies_per_byte: f64,
}

/// How the supplier serves connections in one benchmark mode.
#[derive(Clone, Copy, PartialEq)]
enum ServeMode {
    /// No prefetch thread, blocking chunk round-trips (Fig. 4).
    Serial,
    /// Prefetch thread + one blocking thread per connection (Fig. 5).
    Threaded,
    /// Prefetch thread + the nonblocking reactor (this PR's loop).
    EventLoop,
}

/// Measured result of one hybrid-store mode.
struct HybridMeasured {
    /// Payload bytes moved per timed run.
    bytes: u64,
    /// Mean wall-clock seconds per run.
    secs: f64,
    /// Throughput in MiB/s derived from the two above.
    mib_per_sec: f64,
    /// Checksum of all payloads, to pin byte-identity across modes.
    checksum: u64,
    /// Reads (summed over runs and stores) that served at least one
    /// byte from the MEMORY tier.
    memory_reads: u64,
    /// Reads that had to touch the LOCALFILE spill file — each one
    /// charged the synthetic seek delay.
    local_reads: u64,
    /// Watermark spill trips (0 when the budget holds everything).
    spill_trips: u64,
}

/// Measured result of the crash-recovery mode.
struct RecoveryMeasured {
    /// Payload bytes appended into the abandoned store per run.
    bytes: u64,
    /// Bytes the manifest replay rebuilt into servable extents
    /// (summed over runs).
    recovered_bytes: u64,
    /// Mean wall-clock seconds per `HybridStore::recover` call.
    recovery_time_secs: f64,
    /// Recovered fraction of everything appended: the durable manifest
    /// covers the spilled tiers; whatever died in the MEMORY tier is
    /// the (1 - ratio) a replica must cover.
    recovered_bytes_ratio: f64,
    /// Partitions rebuilt per run (mean).
    recovered_partitions: f64,
    /// Rebuild throughput over the recovered bytes.
    mib_per_sec: f64,
}

fn report_recovery(m: &RecoveryMeasured) {
    println!(
        "  {:<14} {:>8.1} MiB/s  ({:.6} s, {:.0} partitions; ratio {:.4} of {} bytes)",
        "recovery:",
        m.mib_per_sec,
        m.recovery_time_secs,
        m.recovered_partitions,
        m.recovered_bytes_ratio,
        m.bytes
    );
}

fn report_hybrid(label: &str, m: &HybridMeasured) {
    println!(
        "  {label:<14} {:>8.1} MiB/s  ({:.3} s, {} bytes; {} mem reads, {} spill reads, {} trips)",
        m.mib_per_sec, m.secs, m.bytes, m.memory_reads, m.local_reads, m.spill_trips
    );
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_shuffle.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag {other}; usage: shuffle_bench [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let sc = if smoke {
        Scenario::smoke()
    } else {
        Scenario::full()
    };

    println!(
        "shuffle_bench: {} nodes x {} MOFs x {} reducers, {} records/MOF, \
         {} KB buffers, window {}, disk delay {} ms, {} run(s)",
        sc.nodes,
        sc.mofs_per_node,
        sc.reducers,
        sc.records_per_mof,
        sc.buffer_bytes >> 10,
        sc.window,
        sc.disk_delay.as_millis(),
        sc.runs
    );

    let report = |label: &str, m: &Measured| {
        println!(
            "  {label:<14} {:>8.1} MiB/s  ({:.3} s, {} bytes; disk {:.3} s, net {:.3} s, overlap {:.2}, \
             {:.1} syscalls/seg, {:.3} copies/byte)",
            m.mib_per_sec,
            m.secs,
            m.bytes,
            m.disk_read_secs,
            m.net_xmit_secs,
            m.overlap_frac,
            m.syscalls_per_segment,
            m.copies_per_byte
        );
    };
    let serial = run_mode(&sc, ServeMode::Serial, false);
    report("serial:", &serial);
    let pipelined = run_mode(&sc, ServeMode::Threaded, false);
    report("pipelined:", &pipelined);
    let pipelined_crc = run_mode(&sc, ServeMode::Threaded, true);
    report("pipelined+crc:", &pipelined_crc);
    let event_loop = run_mode(&sc, ServeMode::EventLoop, false);
    report("event-loop:", &event_loop);
    let hybrid_mem = run_hybrid_mode(&sc, true);
    report_hybrid("hybrid-mem:", &hybrid_mem);
    let hybrid_spill = run_hybrid_mode(&sc, false);
    report_hybrid("hybrid-spill:", &hybrid_spill);
    let recovery = run_recovery_mode(&sc);
    report_recovery(&recovery);

    assert_eq!(
        serial.checksum, pipelined.checksum,
        "modes must move byte-identical data"
    );
    assert_eq!(
        serial.checksum, pipelined_crc.checksum,
        "the checksummed dialect must move byte-identical data"
    );
    assert_eq!(
        serial.checksum, event_loop.checksum,
        "the event loop must move byte-identical data"
    );
    assert!(
        event_loop.syscalls_per_segment < pipelined.syscalls_per_segment,
        "vectored batched writes must cut supplier syscalls per segment \
         ({:.1} event-loop vs {:.1} threaded)",
        event_loop.syscalls_per_segment,
        pipelined.syscalls_per_segment
    );
    assert!(
        event_loop.copies_per_byte <= 1.0,
        "slab-direct transmit must not copy more than once per byte \
         ({:.3})",
        event_loop.copies_per_byte
    );
    assert_eq!(
        serial.checksum, hybrid_mem.checksum,
        "the memory tier must serve byte-identical data"
    );
    assert_eq!(
        serial.checksum, hybrid_spill.checksum,
        "the spilled tiers must serve byte-identical data"
    );
    assert_eq!(
        hybrid_mem.local_reads, 0,
        "a within-budget memory tier must never touch the spill file"
    );
    assert!(
        hybrid_spill.local_reads > 0,
        "the shrunk budget must push reads to the LOCALFILE tier"
    );
    assert!(
        recovery.recovered_bytes_ratio > 0.0 && recovery.recovered_bytes_ratio <= 1.0,
        "recovery ratio out of range: {}",
        recovery.recovered_bytes_ratio
    );
    let speedup = pipelined.mib_per_sec / serial.mib_per_sec;
    let speedup_crc = pipelined_crc.mib_per_sec / serial.mib_per_sec;
    let speedup_event_loop = event_loop.mib_per_sec / serial.mib_per_sec;
    // Fraction of pipelined throughput spent sealing + verifying.
    let crc_overhead_frac = 1.0 - pipelined_crc.mib_per_sec / pipelined.mib_per_sec;
    // Memory-tier hits as throughput: same bytes, zero disk reads.
    let hybrid_mem_speedup = hybrid_mem.mib_per_sec / hybrid_spill.mib_per_sec;
    println!("  speedup:        {speedup:.2}x");
    println!("  speedup (crc):  {speedup_crc:.2}x  (integrity overhead {crc_overhead_frac:.3})");
    println!(
        "  event loop:     {speedup_event_loop:.2}x over serial \
         ({:.1} vs {:.1} syscalls/seg, {:.3} vs {:.3} copies/byte)",
        event_loop.syscalls_per_segment,
        pipelined.syscalls_per_segment,
        event_loop.copies_per_byte,
        pipelined.copies_per_byte
    );
    println!(
        "  memory tier:    {hybrid_mem_speedup:.2}x over spilled \
         ({} memory reads vs {} spill-file reads)",
        hybrid_mem.memory_reads, hybrid_spill.local_reads
    );

    let json = render_json(
        &sc,
        smoke,
        &serial,
        &pipelined,
        &pipelined_crc,
        &event_loop,
        &hybrid_mem,
        &hybrid_spill,
        &recovery,
        speedup,
        speedup_crc,
        speedup_event_loop,
        crc_overhead_frac,
        hybrid_mem_speedup,
    );
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output file");
    println!("  wrote {out}");
}

/// Shuffle every reducer's segments through fresh suppliers once per
/// timed run (fresh, so every run pays the full cold disk schedule —
/// the thing the two modes order differently), and return the mean
/// throughput over the fetch loops alone.
fn run_mode(sc: &Scenario, mode: ServeMode, checksum_on: bool) -> Measured {
    let pipelined = mode != ServeMode::Serial;
    let mut bytes = 0u64;
    let mut checksum = 0u64;
    let mut total = Duration::ZERO;
    let mut disk_ns = 0u64;
    let mut xmit_ns = 0u64;
    let mut frac_sum = 0f64;
    let mut syscalls = 0u64;
    let mut copied = 0u64;
    for run in 0..sc.runs {
        // A fresh per-run trace shared by every supplier: the per-phase
        // numbers below come from its `disk.read`/`net.xmit` spans. The
        // v3 dialect adds integrity events per chunk, hence the deeper
        // ring.
        let trace = Trace::recording(1 << 20);
        let mut servers = Vec::new();
        for node in 0..sc.nodes {
            let mut store = MofStore::temp().expect("store");
            for m in 0..sc.mofs_per_node {
                let mof = (node * sc.mofs_per_node + m) as u64;
                let records = synth_records(mof, sc.records_per_mof);
                let parts = sc.reducers;
                store
                    .write_mof(mof, records, parts, |k| {
                        k.first().copied().unwrap_or(0) as usize % parts
                    })
                    .expect("write mof");
            }
            let options = ServerOptions {
                buffer_bytes: sc.buffer_bytes,
                prefetch_batch: sc.prefetch_batch,
                prefetch: pipelined,
                threaded: mode != ServeMode::EventLoop,
                synthetic_disk_delay: sc.disk_delay,
                faults: None,
                trace: trace.clone(),
                ..ServerOptions::default()
            };
            servers.push(MofSupplierServer::start_with_options(store, options).expect("server"));
        }

        // One segment list per reducer: that reducer's partition of
        // every MOF on every node — the all-to-all a ReduceTask does.
        let per_reducer: Vec<Vec<SegmentRef>> = (0..sc.reducers as u32)
            .map(|r| {
                servers
                    .iter()
                    .enumerate()
                    .flat_map(|(node, s)| {
                        (0..sc.mofs_per_node).map(move |m| SegmentRef {
                            addr: s.addr(),
                            mof: (node * sc.mofs_per_node + m) as u64,
                            reducer: r,
                        })
                    })
                    .collect()
            })
            .collect();

        let client = NetMergerClient::with_client_config(ClientConfig {
            buffer_bytes: sc.buffer_bytes,
            window: sc.window,
            checksum: checksum_on,
            ..ClientConfig::default()
        });

        let start = Instant::now();
        let mut run_bytes = 0u64;
        let mut run_sum = 0u64;
        for segs in &per_reducer {
            let payloads = if pipelined {
                client.fetch_all(segs).expect("pipelined fetch")
            } else {
                // The Fig. 4 pathology: one blocking chunk round-trip
                // at a time, one segment after another — every disk
                // delay and every network exchange on one timeline.
                segs.iter()
                    .map(|&s| client.fetch_segment(s).expect("serial fetch"))
                    .collect()
            };
            for p in payloads {
                run_bytes += p.len() as u64;
                run_sum = run_sum.wrapping_add(fnv1a(&p));
            }
        }
        total += start.elapsed();
        // Phase accounting happens outside the timed section.
        let q = trace.query();
        assert_eq!(trace.dropped(), 0, "trace ring sized too small for run");
        disk_ns += q.union_nanos("disk.read");
        xmit_ns += q.union_nanos("net.xmit");
        frac_sum += q.overlap_fraction("disk.read", "net.xmit");
        if run == 0 {
            bytes = run_bytes;
            checksum = run_sum;
        } else {
            assert_eq!(bytes, run_bytes, "runs must move identical bytes");
        }
        for s in servers {
            let st = s.stats_snapshot();
            syscalls += st.read_syscalls + st.write_syscalls;
            copied += st.copied_bytes;
            s.shutdown();
        }
    }
    let secs = total.as_secs_f64() / sc.runs as f64;
    let runs = sc.runs as f64;
    let segments = (sc.nodes * sc.mofs_per_node * sc.reducers * sc.runs) as f64;
    Measured {
        bytes,
        secs,
        mib_per_sec: bytes as f64 / (1 << 20) as f64 / secs,
        checksum,
        disk_read_secs: disk_ns as f64 / 1e9 / runs,
        net_xmit_secs: xmit_ns as f64 / 1e9 / runs,
        overlap_frac: frac_sum / runs,
        syscalls_per_segment: syscalls as f64 / segments,
        copies_per_byte: copied as f64 / (bytes as f64 * runs).max(1.0),
    }
}

/// Shuffle the same segments out of supplier-attached hybrid stores
/// instead of the MOF path. `mem_resident` sizes the memory budget to
/// hold everything (pure MEMORY-tier serving); otherwise the budget is
/// two transport buffers, so the 0.5/0.2 watermarks spill nearly every
/// byte to the LOCALFILE tier and each spill-file read is charged the
/// same synthetic seek delay the disk modes pay per read-ahead batch.
fn run_hybrid_mode(sc: &Scenario, mem_resident: bool) -> HybridMeasured {
    let mut bytes = 0u64;
    let mut checksum = 0u64;
    let mut total = Duration::ZERO;
    let mut memory_reads = 0u64;
    let mut local_reads = 0u64;
    let mut spill_trips = 0u64;
    for run in 0..sc.runs {
        let trace = Trace::recording(1 << 20);
        let mut servers = Vec::new();
        let mut hybrids = Vec::new();
        for node in 0..sc.nodes {
            // Stage the segments through a scratch MOF store so the
            // hybrid tiers hold bit-identical bytes to the disk modes.
            let mut scratch = MofStore::temp().expect("scratch store");
            let hybrid = HybridStore::new(HybridConfig {
                memory_budget: if mem_resident {
                    256 << 20
                } else {
                    2 * sc.buffer_bytes as usize
                },
                synthetic_local_read_delay: if mem_resident {
                    Duration::ZERO
                } else {
                    sc.disk_delay
                },
                trace: trace.clone(),
                ..HybridConfig::default()
            })
            .expect("hybrid store");
            for m in 0..sc.mofs_per_node {
                let mof = (node * sc.mofs_per_node + m) as u64;
                let records = synth_records(mof, sc.records_per_mof);
                let parts = sc.reducers;
                scratch
                    .write_mof(mof, records, parts, |k| {
                        k.first().copied().unwrap_or(0) as usize % parts
                    })
                    .expect("write mof");
                for r in 0..sc.reducers as u32 {
                    let seg = scratch
                        .read_segment_range(mof, r, 0, 0)
                        .expect("read segment")
                        .expect("segment exists");
                    for chunk in seg.chunks(sc.buffer_bytes as usize) {
                        hybrid.append(mof, r, chunk).expect("hybrid append");
                    }
                }
            }
            let options = ServerOptions {
                buffer_bytes: sc.buffer_bytes,
                prefetch_batch: sc.prefetch_batch,
                prefetch: true,
                synthetic_disk_delay: sc.disk_delay,
                faults: None,
                trace: trace.clone(),
                hybrid: Some(hybrid.clone()),
                ..ServerOptions::default()
            };
            // The MOF store is empty: every request is answered by the
            // hybrid store's tiers.
            let store = MofStore::temp().expect("empty store");
            servers.push(MofSupplierServer::start_with_options(store, options).expect("server"));
            hybrids.push(hybrid);
        }

        let per_reducer: Vec<Vec<SegmentRef>> = (0..sc.reducers as u32)
            .map(|r| {
                servers
                    .iter()
                    .enumerate()
                    .flat_map(|(node, s)| {
                        (0..sc.mofs_per_node).map(move |m| SegmentRef {
                            addr: s.addr(),
                            mof: (node * sc.mofs_per_node + m) as u64,
                            reducer: r,
                        })
                    })
                    .collect()
            })
            .collect();

        let client = NetMergerClient::with_client_config(ClientConfig {
            buffer_bytes: sc.buffer_bytes,
            window: sc.window,
            checksum: false,
            ..ClientConfig::default()
        });

        let start = Instant::now();
        let mut run_bytes = 0u64;
        let mut run_sum = 0u64;
        for segs in &per_reducer {
            for p in client.fetch_all(segs).expect("hybrid fetch") {
                run_bytes += p.len() as u64;
                run_sum = run_sum.wrapping_add(fnv1a(&p));
            }
        }
        total += start.elapsed();
        for h in &hybrids {
            let stats = h.stats();
            memory_reads += stats.memory_hits;
            local_reads += stats.local_hits;
            spill_trips += stats.spill_trips;
        }
        if run == 0 {
            bytes = run_bytes;
            checksum = run_sum;
        } else {
            assert_eq!(bytes, run_bytes, "runs must move identical bytes");
        }
        for s in servers {
            s.shutdown();
        }
        for h in hybrids {
            h.close();
        }
    }
    let secs = total.as_secs_f64() / sc.runs as f64;
    HybridMeasured {
        bytes,
        secs,
        mib_per_sec: bytes as f64 / (1 << 20) as f64 / secs,
        checksum,
        memory_reads,
        local_reads,
        spill_trips,
    }
}

/// Fill a durable (crash-consistent) hybrid store with the benchmark's
/// segments, abandon it the way a killed supplier would — no close, no
/// final barrier — and time [`HybridStore::recover`] rebuilding it from
/// the surviving directory. `recovered_bytes_ratio` is the durable
/// fraction: the spilled tiers replay from the manifest; whatever was
/// still in the MEMORY tier at the "kill" is gone by definition and
/// must come from a replica.
fn run_recovery_mode(sc: &Scenario) -> RecoveryMeasured {
    let mut bytes = 0u64;
    let mut recovered = 0u64;
    let mut durable_expected = 0u64;
    let mut partitions = 0u64;
    let mut total = Duration::ZERO;
    for run in 0..sc.runs {
        let dir = std::env::temp_dir().join(format!(
            "jbs-bench-recovery-{}-{run}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = HybridConfig {
            // The hybrid-spill shape: the watermarks push nearly every
            // byte down to the (durable) LOCALFILE tier.
            memory_budget: 2 * sc.buffer_bytes as usize,
            durable_spill: true,
            manifest_sync_interval: 1,
            data_dir: Some(dir.join("data")),
            remote_dir: Some(dir.join("remote")),
            ..HybridConfig::default()
        };
        let store = HybridStore::new(cfg.clone()).expect("durable store");
        let mut run_bytes = 0u64;
        let mut scratch = MofStore::temp().expect("scratch store");
        for node in 0..sc.nodes {
            for m in 0..sc.mofs_per_node {
                let mof = (node * sc.mofs_per_node + m) as u64;
                let records = synth_records(mof, sc.records_per_mof);
                let parts = sc.reducers;
                scratch
                    .write_mof(mof, records, parts, |k| {
                        k.first().copied().unwrap_or(0) as usize % parts
                    })
                    .expect("write mof");
                for r in 0..sc.reducers as u32 {
                    let seg = scratch
                        .read_segment_range(mof, r, 0, 0)
                        .expect("read segment")
                        .expect("segment exists");
                    for chunk in seg.chunks(sc.buffer_bytes as usize) {
                        store.append(mof, r, chunk).expect("durable append");
                        run_bytes += chunk.len() as u64;
                    }
                }
            }
        }
        // The kill: walk away. Bytes still buffered in the MEMORY tier
        // die with the process; the manifest holds everything else.
        let pre = store.stats();
        durable_expected += pre.total_written - pre.memory_bytes;
        drop(store);

        let start = Instant::now();
        let (_rebuilt, report) = HybridStore::recover(cfg).expect("recover");
        total += start.elapsed();
        recovered += report.recovered_bytes;
        partitions += report.recovered_partitions;
        assert_eq!(
            report.dropped_extents, 0,
            "no extents may be lost without a mid-write kill: {report:?}"
        );
        if run == 0 {
            bytes = run_bytes;
        } else {
            assert_eq!(bytes, run_bytes, "runs must append identical bytes");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(
        recovered, durable_expected,
        "recovery must rebuild exactly the durable (non-MEMORY) bytes"
    );
    let runs = sc.runs as f64;
    let secs = total.as_secs_f64() / runs;
    let per_run_recovered = recovered as f64 / runs;
    RecoveryMeasured {
        bytes,
        recovered_bytes: recovered,
        recovery_time_secs: secs,
        recovered_bytes_ratio: per_run_recovered / bytes as f64,
        recovered_partitions: partitions as f64 / runs,
        mib_per_sec: per_run_recovered / (1 << 20) as f64 / secs,
    }
}

/// Deterministic per-MOF records: 10-byte random keys, 90-byte values.
fn synth_records(mof: u64, n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut rng = DetRng::new(0x5348_5546 ^ mof);
    (0..n)
        .map(|_| {
            let mut k = vec![0u8; 10];
            rng.fill_bytes(&mut k);
            (k, vec![0xA5; 90])
        })
        .collect()
}

/// FNV-1a over a payload, for the cross-mode byte-identity check.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hand-rolled JSON (the workspace deliberately has no serde).
#[allow(clippy::too_many_arguments)]
fn render_json(
    sc: &Scenario,
    smoke: bool,
    serial: &Measured,
    pipelined: &Measured,
    pipelined_crc: &Measured,
    event_loop: &Measured,
    hybrid_mem: &HybridMeasured,
    hybrid_spill: &HybridMeasured,
    recovery: &RecoveryMeasured,
    speedup: f64,
    speedup_crc: f64,
    speedup_event_loop: f64,
    crc_overhead_frac: f64,
    hybrid_mem_speedup: f64,
) -> String {
    let mode = |m: &Measured| {
        format!(
            "{{ \"bytes\": {}, \"secs\": {:.6}, \"mib_per_sec\": {:.2}, \
             \"disk_read_secs\": {:.6}, \"net_xmit_secs\": {:.6}, \"overlap_frac\": {:.4}, \
             \"syscalls_per_segment\": {:.2}, \"copies_per_byte\": {:.4} }}",
            m.bytes,
            m.secs,
            m.mib_per_sec,
            m.disk_read_secs,
            m.net_xmit_secs,
            m.overlap_frac,
            m.syscalls_per_segment,
            m.copies_per_byte
        )
    };
    let hybrid = |m: &HybridMeasured| {
        format!(
            "{{ \"bytes\": {}, \"secs\": {:.6}, \"mib_per_sec\": {:.2}, \
             \"memory_reads\": {}, \"local_reads\": {}, \"spill_trips\": {} }}",
            m.bytes, m.secs, m.mib_per_sec, m.memory_reads, m.local_reads, m.spill_trips
        )
    };
    let recovery_json = format!(
        "{{ \"bytes\": {}, \"recovered_bytes\": {}, \"recovery_time_secs\": {:.6}, \
         \"recovered_bytes_ratio\": {:.4}, \"recovered_partitions\": {:.0}, \
         \"mib_per_sec\": {:.2} }}",
        recovery.bytes,
        recovery.recovered_bytes,
        recovery.recovery_time_secs,
        recovery.recovered_bytes_ratio,
        recovery.recovered_partitions,
        recovery.mib_per_sec
    );
    format!(
        "{{\n  \"bench\": \"shuffle_dataplane\",\n  \"smoke\": {smoke},\n  \"config\": {{\n    \
         \"nodes\": {},\n    \"mofs_per_node\": {},\n    \"reducers\": {},\n    \
         \"records_per_mof\": {},\n    \"buffer_bytes\": {},\n    \"prefetch_batch\": {},\n    \"window\": {},\n    \
         \"disk_delay_ms\": {},\n    \"runs\": {}\n  }},\n  \"serial\": {},\n  \
         \"pipelined\": {},\n  \"pipelined_crc\": {},\n  \"event_loop\": {},\n  \"hybrid_mem\": {},\n  \
         \"hybrid_spill\": {},\n  \"recovery\": {},\n  \"speedup\": {speedup:.2},\n  \
         \"speedup_crc\": {speedup_crc:.2},\n  \"speedup_event_loop\": {speedup_event_loop:.2},\n  \
         \"crc_overhead_frac\": {crc_overhead_frac:.4},\n  \
         \"hybrid_mem_speedup\": {hybrid_mem_speedup:.2}\n}}\n",
        sc.nodes,
        sc.mofs_per_node,
        sc.reducers,
        sc.records_per_mof,
        sc.buffer_bytes,
        sc.prefetch_batch,
        sc.window,
        sc.disk_delay.as_millis(),
        sc.runs,
        mode(serial),
        mode(pipelined),
        mode(pipelined_crc),
        mode(event_loop),
        hybrid(hybrid_mem),
        hybrid(hybrid_spill),
        recovery_json,
    )
}
