//! Fig. 11: impact of the JBS transport buffer size — Terasort 128 GB with
//! buffers from 8 KB to 512 KB, on IPoIB, RDMA and RoCE.
//!
//! Small buffers pay per-message overhead on every chunk; very large
//! buffers leave too few buffers in the DataCache pool to keep the
//! pipeline full. The paper picks 128 KB as the default.

use jbs_bench::runner::{improvement_pct, print_table, run_case_with, Row};
use jbs_core::{EngineKind, JbsConfig};
use jbs_mapred::JobSpec;

const INPUT: u64 = 128 << 30;

fn main() {
    let kinds = [
        EngineKind::JbsOnIpoIb,
        EngineKind::JbsOnRdma,
        EngineKind::JbsOnRoce,
    ];
    let series: Vec<String> = kinds.iter().map(|k| k.label()).collect();
    let mut rows = Vec::new();
    let mut kb = 8u64;
    while kb <= 512 {
        let cells: Vec<f64> = kinds
            .iter()
            .map(|&k| {
                run_case_with(
                    k,
                    JbsConfig::with_buffer(kb << 10),
                    JobSpec::terasort(INPUT),
                    22,
                    42,
                )
                .job_time
                .as_secs_f64()
            })
            .collect();
        rows.push(Row {
            key: format!("{kb} KB"),
            cells,
        });
        kb *= 2;
    }
    print_table(
        "Fig. 11: Terasort 128 GB Job Execution Time (sec) vs transport buffer size",
        "buffer size",
        &series,
        &rows,
    );

    let col = |kb: &str, k: usize| {
        rows.iter()
            .find(|r| r.key.starts_with(kb))
            .map(|r| r.cells[k])
            .expect("row")
    };
    println!("\nHeadline comparisons (paper values in parentheses):");
    println!(
        "  RDMA: 256 KB vs 8 KB improvement: {:.1}% (53%)",
        improvement_pct(col("8 ", 1), col("256", 1))
    );
    println!(
        "  IPoIB: 128 KB vs 8 KB improvement: {:.1}% (70.3%)",
        improvement_pct(col("8 ", 0), col("128", 0))
    );
    println!(
        "  IPoIB: 512 KB slightly worse than 128 KB: {}",
        if col("512", 0) > col("128", 0) {
            "yes (paper: yes)"
        } else {
            "no"
        }
    );
    println!(
        "  Curves level off from 128 KB: RDMA 128->512 KB change {:.1}%",
        improvement_pct(col("128", 1), col("512", 1))
    );
}
