//! # jbs-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §5 for the
//! index and `EXPERIMENTS.md` for results):
//!
//! | binary   | exhibit | content |
//! |----------|---------|---------|
//! | `table1` | Table I | test case ↔ protocol ↔ network matrix |
//! | `fig2a`  | Fig. 2a | MOF read time: Java stream vs native read vs mmap |
//! | `fig2b`  | Fig. 2b | 1 servlet → 1 copier segment shuffle time |
//! | `fig2c`  | Fig. 2c | N nodes → 1 ReduceTask shuffle time |
//! | `fig7`   | Fig. 7  | Terasort vs input size, InfiniBand + Ethernet |
//! | `fig8`   | Fig. 8  | JBS protocol comparison vs input size |
//! | `fig9`   | Fig. 9  | strong/weak scaling, both fabrics |
//! | `fig10`  | Fig. 10 | CPU utilization timelines (sar, 5 s bins) |
//! | `fig11`  | Fig. 11 | transport buffer size sweep |
//! | `fig12`  | Fig. 12 | Tarazu suite + WordCount/Grep |
//! | `ablations` | §6 of DESIGN.md | prefetch/grouping/consolidation/fairness |
//!
//! Every binary prints a self-describing table to stdout; Criterion micro-
//! benchmarks for the core data structures live under `benches/`.

pub mod runner;

pub use runner::{run_case, run_case_with, Row};
