//! Shared experiment plumbing for the figure binaries.

use jbs_core::{EngineKind, JbsConfig};
use jbs_mapred::{ClusterConfig, JobResult, JobSimulator, JobSpec};

/// Run one test case on the paper testbed scaled to `slaves` nodes.
pub fn run_case(kind: EngineKind, spec: JobSpec, slaves: usize, seed: u64) -> JobResult {
    let cfg = ClusterConfig::paper_testbed_scaled(kind.protocol(), slaves);
    let sim = JobSimulator::with_seed(cfg, spec, seed);
    let mut engine = kind.build();
    sim.run(engine.as_mut())
}

/// Run one test case with an explicit JBS configuration.
pub fn run_case_with(
    kind: EngineKind,
    jbs_cfg: JbsConfig,
    spec: JobSpec,
    slaves: usize,
    seed: u64,
) -> JobResult {
    let cfg = ClusterConfig::paper_testbed_scaled(kind.protocol(), slaves);
    let sim = JobSimulator::with_seed(cfg, spec, seed);
    let mut engine = kind.build_with(jbs_cfg);
    sim.run(engine.as_mut())
}

/// Average job time over `runs` seeds, matching the paper's "3 experiments,
/// report the average".
pub fn mean_job_secs(kind: EngineKind, spec: &JobSpec, slaves: usize, runs: u64) -> f64 {
    (0..runs)
        .map(|s| run_case(kind, spec.clone(), slaves, 42 + s).job_time.as_secs_f64())
        .sum::<f64>()
        / runs as f64
}

/// A printable row of an experiment table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Leftmost cell (x value or case name).
    pub key: String,
    /// One cell per series.
    pub cells: Vec<f64>,
}

/// Print a table with a title, column headers and rows of fixed-point
/// numbers — the same rows/series the paper's figures plot.
pub fn print_table(title: &str, xlabel: &str, series: &[String], rows: &[Row]) {
    println!("\n=== {title} ===");
    print!("{xlabel:>18}");
    for s in series {
        print!("  {s:>20}");
    }
    println!();
    for r in rows {
        print!("{:>18}", r.key);
        for c in &r.cells {
            print!("  {c:>20.1}");
        }
        println!();
    }
}

/// Percentage improvement of `new` over `base` (positive = faster).
pub fn improvement_pct(base: f64, new: f64) -> f64 {
    if base <= 0.0 {
        return 0.0;
    }
    (base - new) / base * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        assert_eq!(improvement_pct(100.0, 50.0), 50.0);
        assert_eq!(improvement_pct(0.0, 10.0), 0.0);
        assert!(improvement_pct(100.0, 120.0) < 0.0);
    }

    #[test]
    fn run_case_produces_consistent_results() {
        // Small smoke test on a scaled-down testbed.
        let spec = JobSpec::terasort(2 << 30);
        let a = run_case(EngineKind::JbsOnRdma, spec.clone(), 4, 1);
        let b = run_case(EngineKind::JbsOnRdma, spec, 4, 1);
        assert_eq!(a.job_time, b.job_time);
        assert_eq!(a.engine, "JBS");
    }
}
