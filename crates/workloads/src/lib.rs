//! # jbs-workloads — benchmark workloads from the paper's evaluation
//!
//! Section V evaluates JBS with Terasort, WordCount and Grep from the
//! standard Hadoop package plus SelfJoin, AdjacencyList, InvertedIndex and
//! SequenceCount from the Tarazu suite \[3\], on 30 GB of wikipedia/database
//! data. This crate provides:
//!
//! * [`suite`] — a [`jbs_mapred::JobSpec`] per benchmark, parameterized by
//!   the property the figures actually depend on: the shuffle-volume ratio
//!   (intermediate:input). Terasort shuffles exactly its input; the four
//!   Tarazu benchmarks are shuffle-heavy ("each MapTask generates a lot of
//!   intermediate data"); WordCount and Grep shuffle almost nothing, which
//!   is why JBS shows no gain on them (Sec. V-F).
//! * [`generator`] — real byte-level data generators (Teragen-style
//!   records, Zipf-distributed synthetic text) used by the loopback
//!   dataplane tests and the examples.
//! * [`partition`] — real partitioners: a hash partitioner and Terasort's
//!   sampled range partitioner.
//! * [`mapfns`] — the benchmarks' actual map and reduce functions (word
//!   counting, inverted indexing, self-joins, adjacency lists, trigram
//!   counting), used by the real dataplane and the examples.

pub mod generator;
pub mod mapfns;
pub mod partition;
pub mod suite;

pub use generator::{gen_terasort_records, gen_text, TERASORT_KEY_LEN, TERASORT_RECORD_LEN};
pub use partition::{HashPartitioner, Partitioner, RangePartitioner, ZipfPartitioner};
pub use suite::{Benchmark, BENCH_INPUT_BYTES};
