//! Real map and reduce functions for the paper's benchmarks.
//!
//! The job simulator only needs each benchmark's cost profile ([`crate::suite`]),
//! but the real dataplane and the examples run genuine MapReduce logic.
//! These are the map/reduce functions of the Hadoop examples and the
//! Tarazu suite, operating on real bytes:
//!
//! | benchmark | map emits | reduce computes |
//! |---|---|---|
//! | WordCount | `(word, 1)` | sum of counts |
//! | Grep | `(line, 1)` for matching lines | sum |
//! | InvertedIndex | `(word, doc-id)` | sorted posting list |
//! | SelfJoin | `(prefix, last-element)` over k-element sets | pairwise joins |
//! | AdjacencyList | `(from, to)` edges | sorted adjacency list |
//! | SequenceCount | `(w1 w2 w3, 1)` trigrams | sum |

use jbs_mapred::merge::Record;

/// WordCount map: one `(word, 1)` per whitespace-separated token.
pub fn wordcount_map(doc: &str) -> Vec<Record> {
    doc.split_whitespace()
        .map(|w| (w.as_bytes().to_vec(), 1u64.to_be_bytes().to_vec()))
        .collect()
}

/// Sum-reduce for count-style benchmarks (WordCount, SequenceCount, Grep):
/// input values are big-endian u64 counts of one key.
pub fn sum_reduce(values: &[Vec<u8>]) -> u64 {
    values
        .iter()
        .map(|v| {
            let mut buf = [0u8; 8];
            let n = v.len().min(8);
            buf[8 - n..].copy_from_slice(&v[v.len() - n..]);
            u64::from_be_bytes(buf)
        })
        .sum()
}

/// Grep map: emit `(line, 1)` for every line containing `pattern`.
pub fn grep_map(doc: &str, pattern: &str) -> Vec<Record> {
    doc.lines()
        .filter(|l| l.contains(pattern))
        .map(|l| (l.as_bytes().to_vec(), 1u64.to_be_bytes().to_vec()))
        .collect()
}

/// InvertedIndex map: `(word, doc_id)` per distinct word of the document.
pub fn inverted_index_map(doc_id: u64, doc: &str) -> Vec<Record> {
    let mut words: Vec<&str> = doc.split_whitespace().collect();
    words.sort_unstable();
    words.dedup();
    words
        .into_iter()
        .map(|w| (w.as_bytes().to_vec(), doc_id.to_be_bytes().to_vec()))
        .collect()
}

/// InvertedIndex reduce: the sorted, deduplicated posting list of a word.
pub fn inverted_index_reduce(values: &[Vec<u8>]) -> Vec<u64> {
    let mut ids: Vec<u64> = values
        .iter()
        .filter(|v| v.len() == 8)
        .map(|v| u64::from_be_bytes(v.as_slice().try_into().expect("8 bytes")))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// SequenceCount map: `(word-trigram, 1)` for every consecutive trigram.
pub fn sequence_count_map(doc: &str) -> Vec<Record> {
    let words: Vec<&str> = doc.split_whitespace().collect();
    words
        .windows(3)
        .map(|w| {
            (
                format!("{} {} {}", w[0], w[1], w[2]).into_bytes(),
                1u64.to_be_bytes().to_vec(),
            )
        })
        .collect()
}

/// AdjacencyList map: parse `from to` edge lines into `(from, to)` records.
pub fn adjacency_map(edges: &str) -> Vec<Record> {
    edges
        .lines()
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            match (it.next(), it.next()) {
                (Some(a), Some(b)) => Some((a.as_bytes().to_vec(), b.as_bytes().to_vec())),
                _ => None,
            }
        })
        .collect()
}

/// AdjacencyList reduce: a node's sorted, deduplicated out-neighbours.
pub fn adjacency_reduce(values: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = values.to_vec();
    out.sort();
    out.dedup();
    out
}

/// SelfJoin map (Tarazu's candidate-generation step): for each sorted
/// k-element set `e1,...,ek`, emit `(e1,...,e{k-1} ; ek)` — key is the
/// (k−1)-prefix, value the last element.
pub fn selfjoin_map(sets: &str) -> Vec<Record> {
    sets.lines()
        .filter_map(|line| {
            let elems: Vec<&str> = line.split(',').map(str::trim).collect();
            if elems.len() < 2 {
                return None;
            }
            let prefix = elems[..elems.len() - 1].join(",");
            Some((
                prefix.into_bytes(),
                elems[elems.len() - 1].as_bytes().to_vec(),
            ))
        })
        .collect()
}

/// SelfJoin reduce: all ordered pairs of the values sharing a prefix —
/// the (k+1)-element candidate sets.
pub fn selfjoin_reduce(values: &[Vec<u8>]) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut sorted: Vec<Vec<u8>> = values.to_vec();
    sorted.sort();
    sorted.dedup();
    let mut pairs = Vec::new();
    for i in 0..sorted.len() {
        for j in i + 1..sorted.len() {
            pairs.push((sorted[i].clone(), sorted[j].clone()));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wordcount_roundtrip() {
        let recs = wordcount_map("a b a c a b");
        assert_eq!(recs.len(), 6);
        let a_counts: Vec<Vec<u8>> = recs
            .iter()
            .filter(|(k, _)| k == b"a")
            .map(|(_, v)| v.clone())
            .collect();
        assert_eq!(sum_reduce(&a_counts), 3);
        assert_eq!(sum_reduce(&[]), 0);
    }

    #[test]
    fn grep_filters_lines() {
        let doc = "the quick fox\nslow turtle\nquick brown dog";
        let recs = grep_map(doc, "quick");
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|(k, _)| {
            std::str::from_utf8(k).unwrap().contains("quick")
        }));
        assert!(grep_map(doc, "zebra").is_empty());
    }

    #[test]
    fn inverted_index_posting_lists() {
        let r1 = inverted_index_map(1, "hadoop shuffle hadoop");
        let r2 = inverted_index_map(2, "shuffle merge");
        assert_eq!(r1.len(), 2, "duplicate words deduplicated per doc");
        let shuffle_postings: Vec<Vec<u8>> = r1
            .iter()
            .chain(r2.iter())
            .filter(|(k, _)| k == b"shuffle")
            .map(|(_, v)| v.clone())
            .collect();
        assert_eq!(inverted_index_reduce(&shuffle_postings), vec![1, 2]);
    }

    #[test]
    fn sequence_count_trigrams() {
        let recs = sequence_count_map("a b c d");
        let keys: Vec<String> = recs
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys, vec!["a b c", "b c d"]);
        assert!(sequence_count_map("a b").is_empty());
    }

    #[test]
    fn adjacency_list_builds_neighbours() {
        let recs = adjacency_map("1 2\n1 3\n2 3\n1 2\nbad-line");
        let n1: Vec<Vec<u8>> = recs
            .iter()
            .filter(|(k, _)| k == b"1")
            .map(|(_, v)| v.clone())
            .collect();
        assert_eq!(
            adjacency_reduce(&n1),
            vec![b"2".to_vec(), b"3".to_vec()],
            "sorted and deduplicated"
        );
    }

    #[test]
    fn selfjoin_generates_candidate_pairs() {
        let recs = selfjoin_map("a,b,c\na,b,d\na,b,e\nx\n");
        assert_eq!(recs.len(), 3);
        assert!(recs.iter().all(|(k, _)| k == b"a,b"));
        let values: Vec<Vec<u8>> = recs.iter().map(|(_, v)| v.clone()).collect();
        let pairs = selfjoin_reduce(&values);
        // 3 values -> 3 ordered pairs: (c,d), (c,e), (d,e).
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0], (b"c".to_vec(), b"d".to_vec()));
    }

    #[test]
    fn selfjoin_is_quadratic_in_shared_prefixes() {
        // This is why SelfJoin is shuffle-heavy: n values with one key
        // produce n(n-1)/2 output pairs.
        let values: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8]).collect();
        assert_eq!(selfjoin_reduce(&values).len(), 45);
    }

    #[test]
    fn sum_reduce_handles_short_values() {
        // Tolerates values narrower than 8 bytes (e.g. single-byte counts).
        assert_eq!(sum_reduce(&[vec![1], vec![2], vec![3]]), 6);
    }
}
