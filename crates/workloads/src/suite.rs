//! Job specifications for every benchmark in the paper's evaluation.

use jbs_des::SimTime;
use jbs_mapred::JobSpec;

/// Input size used for the Tarazu suite in Sec. V-F: 30 GB.
pub const BENCH_INPUT_BYTES: u64 = 30 << 30;

/// The benchmarks of Figures 7–12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Terasort: intermediate data equals input (the paper's main
    /// data-intensive workload).
    Terasort,
    /// Tarazu SelfJoin on database data (shuffle-heavy).
    SelfJoin,
    /// Tarazu InvertedIndex on wikipedia data (shuffle-heavy).
    InvertedIndex,
    /// Tarazu SequenceCount on wikipedia data (shuffle-heavy).
    SequenceCount,
    /// Tarazu AdjacencyList on database data (the most shuffle- and
    /// merge-intensive; JBS's best case at 66.3 % improvement).
    AdjacencyList,
    /// Hadoop WordCount (tiny intermediate data — no JBS gain expected).
    WordCount,
    /// Hadoop Grep (tiny intermediate data — no JBS gain expected).
    Grep,
}

impl Benchmark {
    /// The six benchmarks of Fig. 12, in the paper's bar order.
    pub fn figure12() -> [Benchmark; 6] {
        [
            Benchmark::SelfJoin,
            Benchmark::InvertedIndex,
            Benchmark::SequenceCount,
            Benchmark::AdjacencyList,
            Benchmark::WordCount,
            Benchmark::Grep,
        ]
    }

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Benchmark::Terasort => "Terasort",
            Benchmark::SelfJoin => "SelfJoin",
            Benchmark::InvertedIndex => "InvertedIndex",
            Benchmark::SequenceCount => "SequenceCount",
            Benchmark::AdjacencyList => "AdjacencyList",
            Benchmark::WordCount => "WordCount",
            Benchmark::Grep => "Grep",
        }
    }

    /// True for the benchmarks whose MapTasks "generate a lot of
    /// intermediate data to be shuffled" (Sec. V-F, first type).
    pub fn is_shuffle_heavy(self) -> bool {
        !matches!(self, Benchmark::WordCount | Benchmark::Grep)
    }

    /// The job specification at `input_bytes` of input.
    ///
    /// Ratios are modeled after the Tarazu characterization: the four
    /// shuffle-heavy benchmarks emit at least as much intermediate data as
    /// they read (AdjacencyList the most, with the smallest records, which
    /// is why its shuffle/merge dominates and JBS helps most);
    /// WordCount/Grep combine away almost everything map-side.
    pub fn spec(self, input_bytes: u64) -> JobSpec {
        let (shuffle, output, map_cpu, reduce_cpu, record): (f64, f64, f64, f64, u64) =
            match self {
                Benchmark::Terasort => (1.0, 1.0, 10.0e-9, 3.0e-9, 100),
                Benchmark::SelfJoin => (1.25, 0.25, 6.0e-9, 5.0e-9, 60),
                Benchmark::InvertedIndex => (1.05, 0.30, 9.0e-9, 6.0e-9, 40),
                Benchmark::SequenceCount => (1.60, 0.40, 10.0e-9, 6.0e-9, 48),
                Benchmark::AdjacencyList => (2.10, 0.50, 7.0e-9, 8.0e-9, 32),
                Benchmark::WordCount => (0.06, 0.30, 12.0e-9, 4.0e-9, 20),
                Benchmark::Grep => (0.01, 0.50, 8.0e-9, 3.0e-9, 80),
            };
        JobSpec {
            name: self.label().to_string(),
            input_bytes,
            shuffle_ratio: shuffle,
            output_ratio: output,
            map_cpu_per_byte: map_cpu,
            reduce_cpu_per_byte: reduce_cpu,
            avg_record_bytes: record,
            task_init: SimTime::from_millis(1500),
            task_cleanup: SimTime::from_millis(500),
        }
    }

    /// The paper's standard 30 GB Tarazu input.
    pub fn paper_spec(self) -> JobSpec {
        self.spec(BENCH_INPUT_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure12_order_matches_paper() {
        let labels: Vec<_> = Benchmark::figure12().iter().map(|b| b.label()).collect();
        assert_eq!(
            labels,
            vec![
                "SelfJoin",
                "InvertedIndex",
                "SequenceCount",
                "AdjacencyList",
                "WordCount",
                "Grep"
            ]
        );
    }

    #[test]
    fn shuffle_heavy_classification() {
        assert!(Benchmark::SelfJoin.is_shuffle_heavy());
        assert!(Benchmark::AdjacencyList.is_shuffle_heavy());
        assert!(!Benchmark::WordCount.is_shuffle_heavy());
        assert!(!Benchmark::Grep.is_shuffle_heavy());
    }

    #[test]
    fn shuffle_ratios_match_the_two_types() {
        for b in Benchmark::figure12() {
            let s = b.paper_spec();
            assert!(s.validate().is_ok(), "{:?}", b);
            if b.is_shuffle_heavy() {
                assert!(s.shuffle_ratio > 0.9, "{:?} ratio {}", b, s.shuffle_ratio);
            } else {
                assert!(s.shuffle_ratio < 0.1, "{:?} ratio {}", b, s.shuffle_ratio);
            }
        }
    }

    #[test]
    fn adjacency_list_is_the_heaviest() {
        let adj = Benchmark::AdjacencyList.paper_spec();
        for b in Benchmark::figure12() {
            if b != Benchmark::AdjacencyList {
                assert!(adj.shuffle_ratio >= b.paper_spec().shuffle_ratio);
            }
        }
    }

    #[test]
    fn terasort_matches_mapred_builtin() {
        let a = Benchmark::Terasort.spec(32 << 30);
        let b = JobSpec::terasort(32 << 30);
        assert_eq!(a.shuffle_ratio, b.shuffle_ratio);
        assert_eq!(a.avg_record_bytes, b.avg_record_bytes);
    }

    #[test]
    fn paper_input_is_30gb() {
        assert_eq!(BENCH_INPUT_BYTES, 30 << 30);
        assert_eq!(Benchmark::Grep.paper_spec().input_bytes, 30 << 30);
    }
}
