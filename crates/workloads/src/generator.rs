//! Real data generators for the loopback dataplane and the examples.

use jbs_des::DetRng;

/// Terasort key length (10 bytes, as in the TeraGen format).
pub const TERASORT_KEY_LEN: usize = 10;
/// Terasort record length (100 bytes: 10-byte key + 90-byte payload).
pub const TERASORT_RECORD_LEN: usize = 100;

/// Generate `n` Teragen-style records: a 10-byte random key and a 90-byte
/// payload. Deterministic in the RNG seed.
pub fn gen_terasort_records(n: usize, rng: &mut DetRng) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..n)
        .map(|_| {
            let mut key = vec![0u8; TERASORT_KEY_LEN];
            rng.fill_bytes(&mut key);
            // Keys are printable in TeraGen; map into ' '..'~' for realism.
            for b in key.iter_mut() {
                *b = b' ' + (*b % 95);
            }
            let mut val = vec![0u8; TERASORT_RECORD_LEN - TERASORT_KEY_LEN];
            rng.fill_bytes(&mut val);
            (key, val)
        })
        .collect()
}

/// A small embedded vocabulary for synthetic "wikipedia-like" text.
const VOCAB: [&str; 64] = [
    "the", "of", "and", "a", "in", "to", "is", "was", "it", "for", "with", "as", "on", "by",
    "at", "from", "that", "this", "are", "an", "be", "or", "which", "but", "not", "his", "her",
    "they", "have", "has", "had", "were", "been", "their", "its", "more", "other", "when",
    "there", "can", "also", "into", "only", "some", "than", "most", "time", "first", "world",
    "system", "data", "network", "cluster", "node", "merge", "shuffle", "hadoop", "java",
    "memory", "disk", "performance", "bandwidth", "latency", "protocol",
];

/// Generate roughly `bytes` of whitespace-separated synthetic text with a
/// Zipf-like word distribution (as natural language has). Deterministic in
/// the RNG seed.
pub fn gen_text(bytes: usize, rng: &mut DetRng) -> String {
    let mut out = String::with_capacity(bytes + 16);
    while out.len() < bytes {
        let w = VOCAB[rng.zipf(VOCAB.len() as u64, 0.8) as usize];
        out.push_str(w);
        out.push(' ');
    }
    out
}

/// Split text into (word, 1) pairs — the WordCount map function.
pub fn wordcount_map(text: &str) -> Vec<(Vec<u8>, Vec<u8>)> {
    text.split_whitespace()
        .map(|w| (w.as_bytes().to_vec(), vec![1u8]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terasort_records_have_the_right_shape() {
        let mut rng = DetRng::new(1);
        let recs = gen_terasort_records(100, &mut rng);
        assert_eq!(recs.len(), 100);
        for (k, v) in &recs {
            assert_eq!(k.len(), TERASORT_KEY_LEN);
            assert_eq!(k.len() + v.len(), TERASORT_RECORD_LEN);
            assert!(k.iter().all(|&b| (b' '..=b'~').contains(&b)));
        }
    }

    #[test]
    fn terasort_records_are_deterministic_and_distinct() {
        let a = gen_terasort_records(50, &mut DetRng::new(9));
        let b = gen_terasort_records(50, &mut DetRng::new(9));
        assert_eq!(a, b);
        let mut keys: Vec<_> = a.iter().map(|(k, _)| k.clone()).collect();
        keys.sort();
        keys.dedup();
        assert!(keys.len() > 45, "keys should be near-unique");
    }

    #[test]
    fn text_is_roughly_the_requested_size_and_skewed() {
        let mut rng = DetRng::new(3);
        let text = gen_text(10_000, &mut rng);
        assert!(text.len() >= 10_000 && text.len() < 10_100);
        let words = wordcount_map(&text);
        // Zipf skew: the most common word should dominate.
        let mut counts = std::collections::HashMap::new();
        for (w, _) in &words {
            *counts.entry(w.clone()).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        let mean = words.len() as u32 / counts.len() as u32;
        assert!(max > mean * 3, "max {max} vs mean {mean}");
    }

    #[test]
    fn wordcount_map_emits_one_pair_per_word() {
        let pairs = wordcount_map("a b a");
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0].0, b"a");
        assert_eq!(pairs[0].1, vec![1]);
    }
}
