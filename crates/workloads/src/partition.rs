//! Partitioners: how map output keys choose their reducer.

use jbs_des::DetRng;

/// Assigns a reducer to each key.
pub trait Partitioner {
    /// Partition index in `[0, partitions)` for `key`.
    fn partition(&self, key: &[u8]) -> usize;
    /// Number of partitions.
    fn partitions(&self) -> usize;
}

/// Hadoop's default `HashPartitioner` (FNV-1a here rather than Java's
/// `hashCode`, but with the same near-uniform behaviour).
#[derive(Debug, Clone)]
pub struct HashPartitioner {
    n: usize,
}

impl HashPartitioner {
    /// A hash partitioner over `n >= 1` partitions.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        HashPartitioner { n }
    }
}

impl Partitioner for HashPartitioner {
    fn partition(&self, key: &[u8]) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h % self.n as u64) as usize
    }

    fn partitions(&self) -> usize {
        self.n
    }
}

/// Terasort's sampled range partitioner: sample keys, sort them, pick
/// `n - 1` evenly spaced split points, and route each key to the range it
/// falls in. Keeps reducer output globally sorted.
#[derive(Debug, Clone)]
pub struct RangePartitioner {
    splits: Vec<Vec<u8>>,
}

impl RangePartitioner {
    /// Build from a sample of keys (need not be sorted).
    pub fn from_sample(mut sample: Vec<Vec<u8>>, partitions: usize) -> Self {
        assert!(partitions >= 1);
        sample.sort();
        let mut splits = Vec::with_capacity(partitions.saturating_sub(1));
        if !sample.is_empty() {
            for i in 1..partitions {
                let idx = i * sample.len() / partitions;
                splits.push(sample[idx.min(sample.len() - 1)].clone());
            }
        }
        RangePartitioner { splits }
    }

    /// Sample `k` keys from `keys` with a deterministic RNG and build.
    pub fn sampled(keys: &[Vec<u8>], k: usize, partitions: usize, rng: &mut DetRng) -> Self {
        let sample: Vec<Vec<u8>> = (0..k.min(keys.len()))
            .map(|_| keys[rng.uniform_u64(0, keys.len() as u64) as usize].clone())
            .collect();
        Self::from_sample(sample, partitions)
    }
}

impl Partitioner for RangePartitioner {
    fn partition(&self, key: &[u8]) -> usize {
        // First split point greater than the key defines the partition.
        self.splits.partition_point(|s| s.as_slice() <= key)
    }

    fn partitions(&self) -> usize {
        self.splits.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::gen_terasort_records;

    #[test]
    fn hash_partitioner_is_deterministic_and_in_range() {
        let p = HashPartitioner::new(44);
        assert_eq!(p.partitions(), 44);
        for key in [b"alpha".to_vec(), b"beta".to_vec(), vec![0, 255, 3]] {
            let a = p.partition(&key);
            assert_eq!(a, p.partition(&key));
            assert!(a < 44);
        }
    }

    #[test]
    fn hash_partitioner_is_roughly_uniform() {
        let p = HashPartitioner::new(8);
        let mut rng = DetRng::new(5);
        let mut counts = [0usize; 8];
        for (k, _) in gen_terasort_records(8000, &mut rng) {
            counts[p.partition(&k)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_partitioner_preserves_key_order() {
        let mut rng = DetRng::new(6);
        let recs = gen_terasort_records(5000, &mut rng);
        let keys: Vec<Vec<u8>> = recs.iter().map(|(k, _)| k.clone()).collect();
        let p = RangePartitioner::sampled(&keys, 1000, 16, &mut rng);
        assert_eq!(p.partitions(), 16);
        // Order property: k1 <= k2 implies partition(k1) <= partition(k2).
        let mut sorted = keys.clone();
        sorted.sort();
        let parts: Vec<usize> = sorted.iter().map(|k| p.partition(k)).collect();
        assert!(parts.windows(2).all(|w| w[0] <= w[1]));
        // Balance: every partition gets something with 5000 keys over 16.
        let mut counts = [0usize; 16];
        for k in &keys {
            counts[p.partition(k)] += 1;
        }
        let nonempty = counts.iter().filter(|&&c| c > 0).count();
        assert!(nonempty >= 14, "only {nonempty} partitions used");
    }

    #[test]
    fn range_partitioner_single_partition() {
        let p = RangePartitioner::from_sample(vec![b"x".to_vec()], 1);
        assert_eq!(p.partitions(), 1);
        assert_eq!(p.partition(b"anything"), 0);
    }

    #[test]
    fn range_partitioner_empty_sample_degenerates() {
        let p = RangePartitioner::from_sample(vec![], 4);
        assert_eq!(p.partition(b"k"), 0);
    }
}
