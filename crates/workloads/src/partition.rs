//! Partitioners: how map output keys choose their reducer.

use jbs_des::DetRng;

/// Assigns a reducer to each key.
pub trait Partitioner {
    /// Partition index in `[0, partitions)` for `key`.
    fn partition(&self, key: &[u8]) -> usize;
    /// Number of partitions.
    fn partitions(&self) -> usize;
}

/// Hadoop's default `HashPartitioner` (FNV-1a here rather than Java's
/// `hashCode`, but with the same near-uniform behaviour).
#[derive(Debug, Clone)]
pub struct HashPartitioner {
    n: usize,
}

impl HashPartitioner {
    /// A hash partitioner over `n >= 1` partitions.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        HashPartitioner { n }
    }
}

impl Partitioner for HashPartitioner {
    fn partition(&self, key: &[u8]) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h % self.n as u64) as usize
    }

    fn partitions(&self) -> usize {
        self.n
    }
}

/// Terasort's sampled range partitioner: sample keys, sort them, pick
/// `n - 1` evenly spaced split points, and route each key to the range it
/// falls in. Keeps reducer output globally sorted.
#[derive(Debug, Clone)]
pub struct RangePartitioner {
    splits: Vec<Vec<u8>>,
}

impl RangePartitioner {
    /// Build from a sample of keys (need not be sorted).
    pub fn from_sample(mut sample: Vec<Vec<u8>>, partitions: usize) -> Self {
        assert!(partitions >= 1);
        sample.sort();
        let mut splits = Vec::with_capacity(partitions.saturating_sub(1));
        if !sample.is_empty() {
            for i in 1..partitions {
                let idx = i * sample.len() / partitions;
                splits.push(sample[idx.min(sample.len() - 1)].clone());
            }
        }
        RangePartitioner { splits }
    }

    /// Sample `k` keys from `keys` with a deterministic RNG and build.
    pub fn sampled(keys: &[Vec<u8>], k: usize, partitions: usize, rng: &mut DetRng) -> Self {
        let sample: Vec<Vec<u8>> = (0..k.min(keys.len()))
            .map(|_| keys[rng.uniform_u64(0, keys.len() as u64) as usize].clone())
            .collect();
        Self::from_sample(sample, partitions)
    }
}

impl Partitioner for RangePartitioner {
    fn partition(&self, key: &[u8]) -> usize {
        // First split point greater than the key defines the partition.
        self.splits.partition_point(|s| s.as_slice() <= key)
    }

    fn partitions(&self) -> usize {
        self.splits.len() + 1
    }
}

/// A Zipf-skewed partitioner: keys are hashed uniformly, then mapped
/// through the inverse CDF of a Zipf(θ) distribution over partition
/// indices, so partition 0 is the hottest and the tail decays as
/// `1 / (i+1)^θ`. Deterministic per key (the same key always lands on
/// the same reducer — it is a partitioner, not a sampler), which makes
/// it the workload driver for skew-sensitive claims like the hybrid
/// store's huge-partition limit.
#[derive(Debug, Clone)]
pub struct ZipfPartitioner {
    /// Cumulative probability up to and including each partition.
    cdf: Vec<f64>,
}

impl ZipfPartitioner {
    /// A Zipf partitioner over `n >= 1` partitions with skew `theta > 0`
    /// (larger θ = more skew; θ → 0 approaches uniform).
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 1);
        assert!(theta > 0.0);
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfPartitioner { cdf }
    }
}

impl Partitioner for ZipfPartitioner {
    fn partition(&self, key: &[u8]) -> usize {
        // FNV-1a hash -> uniform fraction in [0, 1) -> inverse CDF.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }

    fn partitions(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::gen_terasort_records;

    #[test]
    fn hash_partitioner_is_deterministic_and_in_range() {
        let p = HashPartitioner::new(44);
        assert_eq!(p.partitions(), 44);
        for key in [b"alpha".to_vec(), b"beta".to_vec(), vec![0, 255, 3]] {
            let a = p.partition(&key);
            assert_eq!(a, p.partition(&key));
            assert!(a < 44);
        }
    }

    #[test]
    fn hash_partitioner_is_roughly_uniform() {
        let p = HashPartitioner::new(8);
        let mut rng = DetRng::new(5);
        let mut counts = [0usize; 8];
        for (k, _) in gen_terasort_records(8000, &mut rng) {
            counts[p.partition(&k)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_partitioner_preserves_key_order() {
        let mut rng = DetRng::new(6);
        let recs = gen_terasort_records(5000, &mut rng);
        let keys: Vec<Vec<u8>> = recs.iter().map(|(k, _)| k.clone()).collect();
        let p = RangePartitioner::sampled(&keys, 1000, 16, &mut rng);
        assert_eq!(p.partitions(), 16);
        // Order property: k1 <= k2 implies partition(k1) <= partition(k2).
        let mut sorted = keys.clone();
        sorted.sort();
        let parts: Vec<usize> = sorted.iter().map(|k| p.partition(k)).collect();
        assert!(parts.windows(2).all(|w| w[0] <= w[1]));
        // Balance: every partition gets something with 5000 keys over 16.
        let mut counts = [0usize; 16];
        for k in &keys {
            counts[p.partition(k)] += 1;
        }
        let nonempty = counts.iter().filter(|&&c| c > 0).count();
        assert!(nonempty >= 14, "only {nonempty} partitions used");
    }

    #[test]
    fn range_partitioner_single_partition() {
        let p = RangePartitioner::from_sample(vec![b"x".to_vec()], 1);
        assert_eq!(p.partitions(), 1);
        assert_eq!(p.partition(b"anything"), 0);
    }

    #[test]
    fn range_partitioner_empty_sample_degenerates() {
        let p = RangePartitioner::from_sample(vec![], 4);
        assert_eq!(p.partition(b"k"), 0);
    }

    #[test]
    fn zipf_partitioner_is_deterministic_and_in_range() {
        let p = ZipfPartitioner::new(8, 1.2);
        assert_eq!(p.partitions(), 8);
        for key in [b"alpha".to_vec(), b"beta".to_vec(), vec![0, 255, 3]] {
            let a = p.partition(&key);
            assert_eq!(a, p.partition(&key), "same key, same reducer");
            assert!(a < 8);
        }
    }

    #[test]
    fn zipf_partitioner_skews_toward_partition_zero() {
        let p = ZipfPartitioner::new(8, 1.2);
        let mut rng = DetRng::new(11);
        let mut counts = [0usize; 8];
        for (k, _) in gen_terasort_records(8000, &mut rng) {
            counts[p.partition(&k)] += 1;
        }
        // Partition 0 holds the head of the distribution: strictly the
        // largest, and several times the coldest partition.
        let hottest = counts[0];
        assert!(counts.iter().skip(1).all(|&c| c < hottest), "{counts:?}");
        let coldest = counts.iter().copied().min().unwrap_or(0);
        assert!(
            hottest > 4 * coldest.max(1),
            "expected heavy skew: {counts:?}"
        );
        // Still a total function: every key lands somewhere.
        assert_eq!(counts.iter().sum::<usize>(), 8000);
    }

    #[test]
    fn zipf_low_theta_approaches_uniform() {
        let skewed = ZipfPartitioner::new(8, 1.5);
        let mild = ZipfPartitioner::new(8, 0.1);
        let mut rng = DetRng::new(12);
        let recs = gen_terasort_records(8000, &mut rng);
        let share = |p: &ZipfPartitioner| {
            let mut c = [0usize; 8];
            for (k, _) in &recs {
                c[p.partition(k)] += 1;
            }
            c[0] as f64 / 8000.0
        };
        assert!(share(&skewed) > 2.0 * share(&mild));
    }
}
