//! The NetMerger: JBS's native client-side component.
//!
//! One NetMerger per node replaces the MOFCopier threads of *every*
//! ReduceTask on that node (Sec. III-C):
//!
//! * **Consolidation** — all segments needed by all local ReduceTasks flow
//!   through this one process, so the connection count is per node pair,
//!   not per MOFCopier.
//! * **Grouping** — fetch requests are grouped by target remote node;
//!   within a group they are ordered by arrival (here: MOF commit time).
//! * **Balanced injection** — a round-robin scan across groups spreads
//!   requests over remote nodes, "mitigating the impact of burst requests
//!   from an aggressive ReduceTask".
//!
//! This module is pure scheduling state; the engine in [`super`] drives it
//! against the simulated cluster.

use jbs_des::SimTime;
use std::collections::HashMap;

/// One segment to fetch.
///
/// The network-levitated merge fetches each segment's *header* (the first
/// transport buffer) as soon as its MOF commits, so the merge's priority
/// queue can be built — but "levitates" the segment body on the remote
/// disk until the merge phase actually streams it (after the last MOF
/// commits). `body_gate` encodes that barrier; set it to `SimTime::ZERO`
/// for eager fetching.
#[derive(Debug, Clone)]
pub struct SegTask {
    /// MOF id the segment lives in.
    pub mof: usize,
    /// Destination reducer (a ReduceTask local to this NetMerger).
    pub reducer: usize,
    /// Absolute byte offset of the segment inside the MOF file.
    pub seg_off: u64,
    /// Segment length.
    pub bytes: u64,
    /// Bytes already fetched.
    pub fetched: u64,
    /// When the MOF committed (header fetchable after this).
    pub ready: SimTime,
    /// Earliest time the segment *body* (beyond the first buffer) may be
    /// streamed — the start of the merge phase.
    pub body_gate: SimTime,
}

/// Per-remote-node request group.
#[derive(Debug, Clone)]
pub struct Group {
    /// The remote node this group fetches from.
    pub remote: usize,
    /// Segments, ordered by `(ready, mof)` — arrival order.
    pub segs: Vec<SegTask>,
    cur: usize,
    /// Segment most recently picked by `next_action` (may be past `cur`
    /// when the head is body-gated but a later header is fetchable).
    active: usize,
}

impl Group {
    fn is_done(&self) -> bool {
        self.cur >= self.segs.len()
    }
}

/// What the NetMerger wants to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextAction {
    /// Fetch one chunk: `(group index, chunk offset within segment, len)`.
    Chunk {
        /// Index into the merger's group list.
        group: usize,
        /// Segment-relative offset of the chunk.
        chunk_off: u64,
        /// Chunk length.
        len: u64,
    },
    /// Nothing fetchable yet; retry at this time (earliest MOF commit).
    WaitUntil(SimTime),
    /// All segments fetched.
    Done,
}

/// Scheduling state of one node's NetMerger.
pub struct NetMerger {
    /// The node this NetMerger runs on.
    pub node: usize,
    groups: Vec<Group>,
    rr: usize,
    round_robin: bool,
    buffer_bytes: u64,
    remaining_segments: usize,
    /// Pre-merge staging budget per reducer (see `JbsConfig`).
    prefetch_budget: u64,
    fetched_per_reducer: HashMap<usize, u64>,
}

impl NetMerger {
    /// Build a merger over per-remote groups. Each group's segments must be
    /// sorted by arrival (`ready`, then MOF id); [`NetMerger::new`] sorts
    /// them to enforce this.
    pub fn new(node: usize, mut groups: Vec<Group>, buffer_bytes: u64, round_robin: bool) -> Self {
        for g in &mut groups {
            g.segs.sort_by_key(|s| (s.ready, s.mof, s.reducer));
            g.cur = 0;
        }
        // Drop zero-byte segments up front; they need no fetching.
        for g in &mut groups {
            g.segs.retain(|s| s.bytes > 0);
        }
        let remaining = groups.iter().map(|g| g.segs.len()).sum();
        NetMerger {
            node,
            groups,
            rr: 0,
            round_robin,
            buffer_bytes,
            remaining_segments: remaining,
            prefetch_budget: u64::MAX,
            fetched_per_reducer: HashMap::new(),
        }
    }

    /// Cap pre-merge body staging at `budget` bytes per reducer.
    pub fn with_prefetch_budget(mut self, budget: u64) -> Self {
        self.prefetch_budget = budget;
        self
    }

    /// Convenience constructor used by the engine.
    pub fn group(remote: usize, segs: Vec<SegTask>) -> Group {
        Group {
            remote,
            segs,
            cur: 0,
            active: 0,
        }
    }

    /// When the head of a group may fetch its next chunk: the header is
    /// available at MOF commit; bodies stream eagerly while the reducer's
    /// staging budget lasts, then levitate until the merge phase.
    fn effective_ready(
        seg: &SegTask,
        fetched_per_reducer: &HashMap<usize, u64>,
        budget: u64,
    ) -> SimTime {
        let staged = fetched_per_reducer.get(&seg.reducer).copied().unwrap_or(0);
        if seg.fetched == 0 || staged < budget {
            seg.ready
        } else {
            seg.ready.max(seg.body_gate)
        }
    }

    /// Decide the next chunk to inject at time `now`.
    pub fn next_action(&mut self, now: SimTime) -> NextAction {
        if self.remaining_segments == 0 {
            return NextAction::Done;
        }
        let n = self.groups.len();
        let mut earliest = SimTime::MAX;
        for step in 0..n {
            let gi = if self.round_robin {
                (self.rr + step) % n
            } else {
                step
            };
            let g = &mut self.groups[gi];
            while !g.is_done() && g.segs[g.cur].fetched >= g.segs[g.cur].bytes {
                g.cur += 1;
            }
            // With the body gate, a group's head may be gated while a later
            // header is fetchable; scan a small window past the head.
            let Some(cur) = (g.cur < g.segs.len()).then_some(g.cur) else {
                continue;
            };
            // Scan up to 64 *incomplete* segments past the head: completed
            // segments (eagerly staged earlier) must not consume the
            // window, or fetchable headers further along would be missed.
            let mut pick = None;
            let mut scanned = 0usize;
            let mut si = cur;
            while si < g.segs.len() && scanned < 64 {
                let seg = &g.segs[si];
                if seg.fetched >= seg.bytes {
                    si += 1;
                    continue;
                }
                scanned += 1;
                let ready =
                    Self::effective_ready(seg, &self.fetched_per_reducer, self.prefetch_budget);
                if ready <= now {
                    pick = Some(si);
                    break;
                }
                earliest = earliest.min(ready);
                si += 1;
            }
            if let Some(si) = pick {
                let g = &mut self.groups[gi];
                let seg = &g.segs[si];
                let chunk_off = seg.fetched;
                let len = self.buffer_bytes.min(seg.bytes - seg.fetched);
                g.active = si;
                if self.round_robin {
                    self.rr = (gi + 1) % n;
                }
                return NextAction::Chunk {
                    group: gi,
                    chunk_off,
                    len,
                };
            }
        }
        if earliest == SimTime::MAX {
            NextAction::Done
        } else {
            NextAction::WaitUntil(earliest)
        }
    }

    /// Record that `len` bytes of the segment picked by the last
    /// `next_action` on `group` were fetched. Returns `Some((reducer,
    /// mof))` when that completes the segment.
    pub fn complete_chunk(&mut self, group: usize, len: u64) -> Option<(usize, usize)> {
        let g = &mut self.groups[group];
        let seg = &mut g.segs[g.active];
        *self.fetched_per_reducer.entry(seg.reducer).or_insert(0) += len;
        seg.fetched += len;
        debug_assert!(seg.fetched <= seg.bytes);
        if seg.fetched == seg.bytes {
            self.remaining_segments -= 1;
            let done = (seg.reducer, seg.mof);
            while g.cur < g.segs.len() && g.segs[g.cur].fetched >= g.segs[g.cur].bytes {
                g.cur += 1;
            }
            Some(done)
        } else {
            None
        }
    }

    /// The remote node of a group.
    pub fn remote_of(&self, group: usize) -> usize {
        self.groups[group].remote
    }

    /// Segment the last `next_action` on `group` picked.
    pub fn head_of(&self, group: usize) -> &SegTask {
        let g = &self.groups[group];
        &g.segs[g.active]
    }

    /// Segments not yet fully fetched.
    pub fn remaining_segments(&self) -> usize {
        self.remaining_segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(mof: usize, reducer: usize, bytes: u64, ready_s: u64) -> SegTask {
        SegTask {
            mof,
            reducer,
            seg_off: 0,
            bytes,
            fetched: 0,
            ready: SimTime::from_secs(ready_s),
            body_gate: SimTime::ZERO,
        }
    }

    fn merger(round_robin: bool) -> NetMerger {
        let groups = vec![
            NetMerger::group(1, vec![seg(0, 0, 300, 0), seg(2, 0, 100, 0)]),
            NetMerger::group(2, vec![seg(1, 0, 200, 0)]),
        ];
        NetMerger::new(0, groups, 100, round_robin)
    }

    #[test]
    fn round_robin_alternates_groups() {
        let mut m = merger(true);
        let mut picks = Vec::new();
        for _ in 0..4 {
            if let NextAction::Chunk { group, .. } = m.next_action(SimTime::ZERO) {
                picks.push(group);
                m.complete_chunk(group, 100);
            }
        }
        assert_eq!(picks, vec![0, 1, 0, 1]);
    }

    #[test]
    fn fifo_mode_drains_first_group_first() {
        let mut m = merger(false);
        let mut picks = Vec::new();
        for _ in 0..4 {
            if let NextAction::Chunk { group, .. } = m.next_action(SimTime::ZERO) {
                picks.push(group);
                m.complete_chunk(group, 100);
            }
        }
        assert_eq!(picks, vec![0, 0, 0, 0]);
    }

    #[test]
    fn waits_for_earliest_unready_mof() {
        let groups = vec![NetMerger::group(1, vec![seg(0, 0, 100, 5), seg(1, 0, 100, 3)])];
        let mut m = NetMerger::new(0, groups, 100, true);
        // Segments resorted by ready time: head is the ready=3 one.
        match m.next_action(SimTime::ZERO) {
            NextAction::WaitUntil(t) => assert_eq!(t, SimTime::from_secs(3)),
            other => panic!("expected wait, got {other:?}"),
        }
        match m.next_action(SimTime::from_secs(4)) {
            NextAction::Chunk { .. } => {}
            other => panic!("expected chunk, got {other:?}"),
        }
    }

    #[test]
    fn chunking_respects_buffer_size() {
        let groups = vec![NetMerger::group(1, vec![seg(0, 0, 250, 0)])];
        let mut m = NetMerger::new(0, groups, 100, true);
        let mut lens = Vec::new();
        loop {
            match m.next_action(SimTime::ZERO) {
                NextAction::Chunk { group, len, .. } => {
                    lens.push(len);
                    m.complete_chunk(group, len);
                }
                NextAction::Done => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(lens, vec![100, 100, 50]);
        assert_eq!(m.remaining_segments(), 0);
    }

    #[test]
    fn segment_completion_reports_reducer_and_mof() {
        let groups = vec![NetMerger::group(1, vec![seg(7, 3, 100, 0)])];
        let mut m = NetMerger::new(0, groups, 100, true);
        if let NextAction::Chunk { group, len, .. } = m.next_action(SimTime::ZERO) {
            assert_eq!(m.complete_chunk(group, len), Some((3, 7)));
        } else {
            panic!("expected chunk");
        }
        assert_eq!(m.next_action(SimTime::ZERO), NextAction::Done);
    }

    #[test]
    fn zero_byte_segments_are_dropped() {
        let groups = vec![NetMerger::group(1, vec![seg(0, 0, 0, 0)])];
        let mut m = NetMerger::new(0, groups, 100, true);
        assert_eq!(m.next_action(SimTime::ZERO), NextAction::Done);
    }

    #[test]
    fn chunk_offsets_advance_sequentially() {
        let groups = vec![NetMerger::group(1, vec![seg(0, 0, 300, 0)])];
        let mut m = NetMerger::new(0, groups, 100, true);
        let mut offs = Vec::new();
        while let NextAction::Chunk { group, chunk_off, len } = m.next_action(SimTime::ZERO) {
            offs.push(chunk_off);
            m.complete_chunk(group, len);
        }
        assert_eq!(offs, vec![0, 100, 200]);
    }
}
