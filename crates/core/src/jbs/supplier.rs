//! The MOFSupplier: JBS's native server-side component.
//!
//! One MOFSupplier runs per node, launched by the TaskTracker, and replaces
//! every HttpServlet (Sec. III-A). It keeps an [`IndexCache`] for segment
//! identification and a DataCache into which a disk prefetch thread reads
//! *batches* of segment data, grouped by target MOF and ordered by segment
//! offset, so the disk sees long sequential runs instead of the interleaved
//! small reads of concurrent servlets (Fig. 5 vs. Fig. 4).

use crate::config::JbsConfig;
use crate::indexcache::IndexCache;
use jbs_des::{CpuMeter, SimTime};
use jbs_disk::NodeStorage;
use jbs_jvm::PathCosts;
use jbs_mapred::sim::plan::MofInfo;
use std::collections::HashMap;

/// Read-ahead state for one (MOF, reducer) segment.
#[derive(Debug, Clone, Copy, Default)]
struct Prefetched {
    /// Bytes of the segment already staged in the DataCache.
    end: u64,
    /// When the staged bytes became available.
    ready: SimTime,
}

/// Per-node MOFSupplier state.
pub struct MofSupplier {
    index_cache: IndexCache,
    prefetched: HashMap<(usize, usize), Prefetched>,
    costs: PathCosts,
    bytes_served: u64,
    disk_reads: u64,
}

impl MofSupplier {
    /// A supplier for a job with `reducers` partitions.
    pub fn new(reducers: usize) -> Self {
        MofSupplier {
            index_cache: IndexCache::standard(reducers),
            prefetched: HashMap::new(),
            costs: PathCosts::native_c(),
            bytes_served: 0,
            disk_reads: 0,
        }
    }

    /// Stage `[chunk_off, chunk_off + len)` (segment-relative) of reducer
    /// `reducer`'s segment in `mof`, arriving as a request at `arrival`.
    /// Returns when the bytes are in the DataCache ready to transmit.
    ///
    /// With `group_by_mof` the prefetch server reads `prefetch_batch`
    /// transport buffers ahead in one sequential sweep; without it every
    /// chunk is its own disk request (the grouping ablation).
    #[allow(clippy::too_many_arguments)]
    pub fn stage_chunk(
        &mut self,
        arrival: SimTime,
        mof: &MofInfo,
        reducer: usize,
        seg_off: u64,
        chunk_off: u64,
        len: u64,
        cfg: &JbsConfig,
        storage: &mut NodeStorage,
        cpu: &mut CpuMeter,
    ) -> SimTime {
        debug_assert!(len > 0);
        let seg_bytes = mof.seg_bytes[reducer];
        debug_assert!(chunk_off + len <= seg_bytes);

        // Identify the segment via the IndexCache (disk read on miss).
        let mut t = self.index_cache.lookup(arrival, mof.index_file, storage);

        let entry = self
            .prefetched
            .entry((mof.mof_id, reducer))
            .or_default();
        if chunk_off + len > entry.end {
            let batch = if cfg.group_by_mof {
                cfg.prefetch_batch as u64 * cfg.buffer_bytes
            } else {
                len
            };
            let read_cpu_per_byte = self.costs.read_mode.cpu_per_byte();
            let call_overhead = self.costs.read_mode.call_overhead();
            while entry.end < chunk_off + len {
                let read_len = batch.min(seg_bytes - entry.end);
                let io = storage.read(t, mof.file, seg_off + entry.end, read_len);
                let cpu_dur = call_overhead
                    + SimTime::from_secs_f64(read_len as f64 * read_cpu_per_byte);
                cpu.charge_thread(io.completed, cpu_dur);
                let done = io.completed + cpu_dur;
                entry.end += read_len;
                entry.ready = done;
                t = done;
                self.disk_reads += 1;
            }
        }
        self.bytes_served += len;
        t.max(entry.ready)
    }

    /// Total payload bytes staged.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }

    /// Number of disk read batches issued.
    pub fn disk_reads(&self) -> u64 {
        self.disk_reads
    }

    /// IndexCache hit count.
    pub fn index_hits(&self) -> u64 {
        self.index_cache.hits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jbs_disk::{DiskParams, FileId};

    fn mof(bytes_per_seg: u64, reducers: usize) -> MofInfo {
        MofInfo {
            mof_id: 0,
            node: 0,
            file: FileId(10),
            index_file: FileId(11),
            ready: SimTime::ZERO,
            seg_bytes: vec![bytes_per_seg; reducers],
        }
    }

    fn setup() -> (NodeStorage, CpuMeter, JbsConfig) {
        (
            NodeStorage::new(2, DiskParams::sata_500gb(), 64 << 20),
            CpuMeter::sar(24),
            JbsConfig::default(),
        )
    }

    #[test]
    fn first_chunk_triggers_batched_prefetch_later_chunks_are_staged() {
        let (mut st, mut cpu, cfg) = setup();
        let m = mof(4 << 20, 2);
        let mut s = MofSupplier::new(2);
        let b = cfg.buffer_bytes;
        let t1 = s.stage_chunk(SimTime::ZERO, &m, 0, 0, 0, b, &cfg, &mut st, &mut cpu);
        assert!(t1 > SimTime::ZERO, "cold read costs disk time");
        let reads_after_first = s.disk_reads();
        assert_eq!(reads_after_first, 1);
        // The next 7 chunks (prefetch_batch = 8) are already staged.
        for i in 1..8 {
            let t = s.stage_chunk(t1, &m, 0, 0, i * b, b, &cfg, &mut st, &mut cpu);
            assert_eq!(t, t1, "chunk {i} must be served from the DataCache");
        }
        assert_eq!(s.disk_reads(), reads_after_first);
        // Chunk 8 needs the next batch.
        let t9 = s.stage_chunk(t1, &m, 0, 0, 8 * b, b, &cfg, &mut st, &mut cpu);
        assert!(t9 > t1);
        assert_eq!(s.disk_reads(), 2);
    }

    #[test]
    fn grouping_off_reads_per_chunk() {
        let (mut st, mut cpu, mut cfg) = setup();
        cfg.group_by_mof = false;
        let m = mof(1 << 20, 1);
        let mut s = MofSupplier::new(1);
        let b = cfg.buffer_bytes;
        let mut t = SimTime::ZERO;
        for i in 0..8 {
            t = s.stage_chunk(t, &m, 0, 0, i * b, b, &cfg, &mut st, &mut cpu);
        }
        assert_eq!(s.disk_reads(), 8, "one disk request per chunk");
    }

    #[test]
    fn page_cache_hit_still_counts_service() {
        let (mut st, mut cpu, cfg) = setup();
        // Pre-warm the page cache as a freshly written MOF would.
        st.write(SimTime::ZERO, FileId(10), 0, 4 << 20);
        let m = mof(4 << 20, 1);
        let mut s = MofSupplier::new(1);
        let t = s.stage_chunk(
            SimTime::from_secs(1),
            &m,
            0,
            0,
            0,
            cfg.buffer_bytes,
            &cfg,
            &mut st,
            &mut cpu,
        );
        // Warm MOF: only index read + CPU, far below a cold seek.
        assert!(t < SimTime::from_secs_f64(1.05), "warm staging at {t}");
        assert_eq!(s.bytes_served(), cfg.buffer_bytes);
    }

    #[test]
    fn index_cache_hits_after_first_touch() {
        let (mut st, mut cpu, cfg) = setup();
        let m = mof(1 << 20, 1);
        let mut s = MofSupplier::new(1);
        s.stage_chunk(SimTime::ZERO, &m, 0, 0, 0, cfg.buffer_bytes, &cfg, &mut st, &mut cpu);
        let hits0 = s.index_hits();
        s.stage_chunk(
            SimTime::from_secs(1),
            &m,
            0,
            0,
            cfg.buffer_bytes,
            cfg.buffer_bytes,
            &cfg,
            &mut st,
            &mut cpu,
        );
        assert_eq!(s.index_hits(), hits0 + 1);
    }

    #[test]
    fn batch_never_reads_past_segment_end() {
        let (mut st, mut cpu, cfg) = setup();
        // Segment smaller than one prefetch batch.
        let m = mof(100 << 10, 1);
        let mut s = MofSupplier::new(1);
        s.stage_chunk(SimTime::ZERO, &m, 0, 0, 0, 100 << 10, &cfg, &mut st, &mut cpu);
        assert_eq!(s.disk_reads(), 1);
        assert_eq!(s.bytes_served(), 100 << 10);
    }
}
