//! The JBS shuffle engine: NetMerger + MOFSupplier, JVM-bypassed.
//!
//! The engine drives one [`NetMerger`] and one [`MofSupplier`] per node
//! against the simulated cluster with a single global event queue. Each
//! event is a free transport buffer on some node's NetMerger; handling it
//! injects the next fetch chunk chosen by the round-robin scheduler, walks
//! the chunk through connection acquisition, request latency, supplier
//! staging (IndexCache + batched prefetch), transmit CPU, the wire, and
//! receive+merge CPU, then frees the buffer at completion. The number of
//! buffers per node — DataCache bytes over transport-buffer size — is the
//! pipelining window (Fig. 11).
//!
//! Everything runs on the native-C cost table ([`PathCosts::native_c`]):
//! no stream-read tax, no allocation, no GC, and only 3 threads per side.

pub mod netmerger;
pub mod supplier;

use crate::config::JbsConfig;
use jbs_des::{EventQueue, SimTime};
use jbs_jvm::PathCosts;
use jbs_mapred::sim::{ShuffleEngine, ShuffleOutcome, ShufflePlan, SimCluster};
use jbs_net::ConnectionManager;
use netmerger::{Group, NetMerger, NextAction, SegTask};
use supplier::MofSupplier;

/// CPU per byte of the network-levitated merge (priority-queue streaming
/// merge of incoming buffers).
const MERGE_CPU_PER_RECORD: f64 = 40e-9;

/// Latency of the final merge flush once a reducer's last chunk lands.
const FINAL_FLUSH: SimTime = SimTime::from_millis(10);

/// Background threads per node (3 NetMerger data threads + 3 MOFSupplier
/// threads, Sec. V-D).
const NATIVE_THREADS_PER_NODE: f64 = 6.0;

/// The JVM-Bypass Shuffling engine.
pub struct JbsShuffle {
    cfg: JbsConfig,
    label: String,
    /// Sim-time structured trace (disabled unless [`JbsShuffle::traced`]).
    trace: jbs_obs::Trace,
    /// Drives the trace's manual clock to each event's sim time, keeping
    /// recorded timestamps deterministic across runs.
    clock: Option<jbs_obs::ManualClock>,
}

impl Default for JbsShuffle {
    fn default() -> Self {
        Self::new()
    }
}

impl JbsShuffle {
    /// JBS with the paper's default configuration.
    pub fn new() -> Self {
        Self::with_config(JbsConfig::default())
    }

    /// JBS with an explicit configuration (buffer sweeps, ablations).
    pub fn with_config(cfg: JbsConfig) -> Self {
        cfg.validate().expect("invalid JBS config");
        JbsShuffle {
            cfg,
            label: "JBS".to_string(),
            trace: jbs_obs::Trace::disabled(),
            clock: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &JbsConfig {
        &self.cfg
    }

    /// Record up to `capacity` sim events against a [`jbs_obs::ManualClock`]
    /// set to each event's sim time — identical runs yield byte-identical
    /// traces (see the `traced_run_is_deterministic` test).
    pub fn traced(mut self, capacity: usize) -> Self {
        let clock = jbs_obs::ManualClock::new();
        self.trace = jbs_obs::Trace::recording_with(capacity, clock.clock());
        self.clock = Some(clock);
        self
    }

    /// The engine's trace handle (disabled unless [`JbsShuffle::traced`]).
    pub fn trace(&self) -> &jbs_obs::Trace {
        &self.trace
    }
}

impl ShuffleEngine for JbsShuffle {
    fn name(&self) -> &str {
        &self.label
    }

    fn run(&mut self, cluster: &mut SimCluster, plan: &ShufflePlan) -> ShuffleOutcome {
        let slaves = cluster.cfg.slaves;
        let reducers = plan.reducers.len();
        let costs = PathCosts::native_c();
        let record = plan.avg_record_bytes.max(1);

        // Absolute segment offsets inside each MOF (prefix sums).
        let seg_off: Vec<Vec<u64>> = plan
            .mofs
            .iter()
            .map(|m| {
                let mut acc = 0u64;
                m.seg_bytes
                    .iter()
                    .map(|&b| {
                        let o = acc;
                        acc += b;
                        o
                    })
                    .collect()
            })
            .collect();

        // Each client node learns of a committed MOF at its next
        // TaskCompletionEvents poll; the merge phase begins once the last
        // notification lands. Segment bodies levitate on remote disks until
        // then (SC'11 algorithm), modulo the eager staging budget.
        let mut mergers: Vec<NetMerger> = (0..slaves)
            .map(|client| {
                let mut hb_rng = cluster.rng.fork(0x3B5 + client as u64);
                let visible: Vec<SimTime> = plan
                    .mofs
                    .iter()
                    .map(|m| {
                        m.ready
                            + SimTime::from_nanos(
                                hb_rng.uniform_u64(
                                    0,
                                    self.cfg.notification_latency.as_nanos().max(1),
                                ),
                            )
                    })
                    .collect();
                let barrier = visible
                    .iter()
                    .copied()
                    .fold(SimTime::ZERO, SimTime::max);
                let groups: Vec<Group> = (0..slaves)
                    .map(|remote| {
                        let segs: Vec<SegTask> = plan
                            .mofs
                            .iter()
                            .filter(|m| m.node == remote)
                            .flat_map(|m| {
                                plan.reducers
                                    .iter()
                                    .filter(|r| r.node == client)
                                    .map(|r| SegTask {
                                        mof: m.mof_id,
                                        reducer: r.id,
                                        seg_off: seg_off[m.mof_id][r.id],
                                        bytes: m.seg_bytes[r.id],
                                        fetched: 0,
                                        ready: visible[m.mof_id],
                                        body_gate: barrier,
                                    })
                                    .collect::<Vec<_>>()
                            })
                            .collect();
                        NetMerger::group(remote, segs)
                    })
                    .collect();
                NetMerger::new(
                    client,
                    groups,
                    self.cfg.buffer_bytes,
                    self.cfg.round_robin_injection,
                )
                .with_prefetch_budget(self.cfg.prefetch_budget_per_reducer)
            })
            .collect();

        let mut suppliers: Vec<MofSupplier> =
            (0..slaves).map(|_| MofSupplier::new(reducers)).collect();
        let mut conns: Vec<ConnectionManager> = (0..slaves)
            .map(|_| {
                ConnectionManager::with_capacity(
                    cluster.cfg.protocol.params(),
                    self.cfg.max_connections,
                )
            })
            .collect();
        // Serialization point per server for the no-pipelining ablation.
        let mut server_free = vec![SimTime::ZERO; slaves];

        let mut last_done = vec![SimTime::ZERO; reducers];
        let mut bytes_fetched = 0u64;
        let mut first_activity = vec![SimTime::MAX; slaves];
        let mut last_activity = vec![SimTime::ZERO; slaves];

        // Each transport buffer is an event chain: `Inject` decides the
        // next chunk, pays the request trip and stages it on the supplier;
        // `Send` puts the staged chunk on the wire and hands it to the
        // merge. The split keeps NIC submissions in arrival-time order
        // (FIFO resources serve in submission order), which matters when
        // supplier staging times vary between cache hits and disk reads.
        enum Ev {
            /// A free transport buffer on `client`'s NetMerger.
            Inject { client: usize },
            /// A staged chunk leaving `remote` for `client`.
            Send {
                client: usize,
                remote: usize,
                reducer: usize,
                len: u64,
            },
        }
        let mut q: EventQueue<Ev> = EventQueue::new();
        for client in 0..slaves {
            for _ in 0..self.cfg.pool_buffers() {
                q.push(SimTime::ZERO, Ev::Inject { client });
            }
        }

        while let Some((t, ev)) = q.pop() {
            // Pin the trace clock to this event's sim time so every event
            // recorded while handling it carries a deterministic timestamp.
            if let Some(clock) = &self.clock {
                clock.set(t.as_nanos());
            }
            match ev {
                Ev::Inject { client } => match mergers[client].next_action(t) {
                    NextAction::Done => {} // buffer retires
                    NextAction::WaitUntil(w) => q.push(w, Ev::Inject { client }),
                    NextAction::Chunk {
                        group,
                        chunk_off,
                        len,
                    } => {
                        let remote = mergers[client].remote_of(group);
                        let (mof_id, reducer, seg_abs) = {
                            let head = mergers[client].head_of(group);
                            (head.mof, head.reducer, head.seg_off)
                        };
                        self.trace.instant(
                            "sim.inject",
                            jbs_obs::Entity::node(client as u64),
                            remote as u64,
                            len,
                        );
                        // Mark the range taken now so concurrent buffers
                        // pick disjoint chunks; completion time is recorded
                        // at Send.
                        mergers[client].complete_chunk(group, len);

                        // Connection (consolidated: one per pair, cached).
                        let acq = conns[client].acquire(t, client as u32, remote as u32);
                        if acq.established {
                            cluster.cpu[client].charge_thread(t, acq.cpu_each_side);
                            cluster.cpu[remote].charge_thread(t, acq.cpu_each_side);
                        }

                        // Fetch request to the supplier.
                        let req_cpu = costs.per_message_cpu;
                        cluster.cpu[client].charge_thread(acq.ready, req_cpu);
                        let mut t_req = acq.ready + req_cpu;
                        if client != remote {
                            t_req += cluster.fabric.control_one_way();
                        }

                        // Supplier stages the chunk (IndexCache + prefetch).
                        let staged = suppliers[remote].stage_chunk(
                            t_req,
                            &plan.mofs[mof_id],
                            reducer,
                            seg_abs,
                            chunk_off,
                            len,
                            &self.cfg,
                            &mut cluster.storage[remote],
                            &mut cluster.cpu[remote],
                        );

                        // Transmit-side CPU (native path; protocol copies
                        // are paid inside the fabric's copy engine).
                        let tx_cpu = costs.send_cpu(len) + cluster.fabric.params().tx_cpu(len);
                        let send_from = if self.cfg.pipelined_prefetch {
                            staged
                        } else {
                            // Ablation: the server thread serializes
                            // read+xmit (stock HttpServlet behaviour).
                            staged.max(server_free[remote])
                        };
                        cluster.cpu[remote].charge_thread(send_from, tx_cpu);
                        if !self.cfg.pipelined_prefetch {
                            // Approximation: hold the servlet until the
                            // staged chunk has also cleared the wire once.
                            server_free[remote] =
                                send_from + tx_cpu + cluster.fabric.params().wire_time(len);
                        }
                        first_activity[client] = first_activity[client].min(t);
                        first_activity[remote] = first_activity[remote].min(t_req);
                        q.push(
                            send_from + tx_cpu,
                            Ev::Send {
                                client,
                                remote,
                                reducer,
                                len,
                            },
                        );
                    }
                },
                Ev::Send {
                    client,
                    remote,
                    reducer,
                    len,
                } => {
                    self.trace.instant(
                        "sim.send",
                        jbs_obs::Entity::node(remote as u64),
                        client as u64,
                        len,
                    );
                    let timing = cluster.fabric.transfer(t, remote, client, len);

                    // Receive + levitated merge on the client.
                    let merge_cpu = SimTime::from_secs_f64(
                        (len / record).max(1) as f64 * MERGE_CPU_PER_RECORD,
                    );
                    let rx_cpu = costs.recv_cpu(len) + timing.rx_cpu + merge_cpu;
                    cluster.cpu[client].charge_thread(timing.arrived, rx_cpu);
                    let done = timing.arrived + rx_cpu;

                    bytes_fetched += len;
                    last_activity[client] = last_activity[client].max(done);
                    last_activity[remote] = last_activity[remote].max(timing.tx_done);
                    last_done[reducer] = last_done[reducer].max(done);
                    q.push(done, Ev::Inject { client });
                }
            }
        }

        // Background thread overhead over each node's active shuffle window.
        for node in 0..slaves {
            if first_activity[node] < last_activity[node] {
                let span = last_activity[node] - first_activity[node];
                cluster.cpu[node].charge(
                    first_activity[node],
                    span,
                    NATIVE_THREADS_PER_NODE * costs.per_thread_overhead,
                );
            }
        }

        // A reducer is ready once its last chunk is merged; it cannot be
        // earlier than the last MOF commit (all maps feed all reducers).
        let commit_barrier = plan.last_mof_ready();
        let ready = (0..reducers)
            .map(|r| last_done[r].max(commit_barrier) + FINAL_FLUSH)
            .collect();
        let (established, evicted) = conns
            .iter()
            .fold((0, 0), |(e, v), c| {
                (e + c.stats().established, v + c.stats().evicted)
            });

        ShuffleOutcome {
            ready,
            bytes_fetched,
            spilled_bytes: 0, // the network-levitated merge never spills
            connections_established: established,
            connections_evicted: evicted,
            engine: self.label.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jbs_mapred::{ClusterConfig, JobSimulator, JobSpec};
    use jbs_net::Protocol;

    fn run_gb(gb_x10: u64, protocol: Protocol) -> jbs_mapred::JobResult {
        let sim = JobSimulator::new(
            ClusterConfig::tiny(protocol),
            JobSpec::terasort(gb_x10 << 27), // gb_x10 * 128 MiB
        );
        sim.run(&mut JbsShuffle::new())
    }

    #[test]
    fn completes_and_moves_all_bytes() {
        let r = run_gb(8, Protocol::Rdma); // 1 GiB
        assert_eq!(r.engine, "JBS");
        let expect = 1u64 << 30;
        let diff = (r.bytes_shuffled as i64 - expect as i64).unsigned_abs();
        assert!(diff < 64, "shuffled {} vs {expect}", r.bytes_shuffled);
        assert_eq!(r.spilled_bytes, 0);
        assert!(r.job_time > r.map_phase_end);
    }

    #[test]
    fn consolidated_connections_per_node_pair() {
        let r = run_gb(8, Protocol::Rdma);
        // 4 nodes: at most 4x4 = 16 node pairs (including loopback).
        assert!(r.connections_established <= 16, "{}", r.connections_established);
        assert_eq!(r.connections_evicted, 0);
    }

    #[test]
    fn deterministic() {
        let a = run_gb(4, Protocol::IpoIb);
        let b = run_gb(4, Protocol::IpoIb);
        assert_eq!(a.job_time, b.job_time);
    }

    #[test]
    fn rdma_beats_ipoib() {
        let ipoib = run_gb(16, Protocol::IpoIb);
        let rdma = run_gb(16, Protocol::Rdma);
        assert!(
            rdma.job_time < ipoib.job_time,
            "RDMA {} vs IPoIB {}",
            rdma.job_time,
            ipoib.job_time
        );
    }

    fn shuffle_only(mut cfg: JbsConfig, protocol: Protocol) -> SimTime {
        use jbs_mapred::sim::SimCluster;
        cfg.notification_latency = SimTime::ZERO;
        let mut cluster = SimCluster::new(ClusterConfig::tiny(protocol), 1);
        let plan = ShufflePlan::synthetic(4, 4, 2, 4 << 20, 100);
        cluster.warm_mofs(&plan); // fresh MOFs sit in the page cache
        let mut engine = JbsShuffle::with_config(cfg);
        engine.run(&mut cluster, &plan).all_ready()
    }

    #[test]
    fn tiny_buffers_hurt() {
        // Fig. 11's left edge: 8 KB buffers pay far more per-message
        // overhead than the 128 KB default.
        let small = shuffle_only(JbsConfig::with_buffer(8 << 10), Protocol::Rdma);
        let default = shuffle_only(JbsConfig::default(), Protocol::Rdma);
        assert!(
            small.as_secs_f64() > default.as_secs_f64() * 1.3,
            "8KB {small} vs 128KB {default}"
        );
    }

    #[test]
    fn oversized_buffers_reduce_pipelining() {
        // Fig. 11's right edge: with the DataCache fixed, huge buffers
        // leave too few in flight.
        let default = shuffle_only(JbsConfig::default(), Protocol::Rdma);
        let huge = shuffle_only(JbsConfig::with_buffer(4 << 20), Protocol::Rdma);
        assert!(
            huge > default,
            "4MB buffers {huge} should be slower than 128KB {default}"
        );
    }

    #[test]
    fn ablations_do_not_help() {
        let sim = JobSimulator::new(
            ClusterConfig::tiny(Protocol::IpoIb),
            JobSpec::terasort(1 << 30),
        );
        let full = sim.run(&mut JbsShuffle::new());
        let no_prefetch = JbsConfig {
            pipelined_prefetch: false,
            ..JbsConfig::default()
        };
        let ablated = sim.run(&mut JbsShuffle::with_config(no_prefetch));
        assert!(
            ablated.shuffle_all_ready >= full.shuffle_all_ready,
            "no-prefetch {} vs full {}",
            ablated.shuffle_all_ready,
            full.shuffle_all_ready
        );
    }

    #[test]
    fn traced_run_is_deterministic() {
        use jbs_mapred::sim::SimCluster;
        let traced_jsonl = || {
            let mut cluster = SimCluster::new(ClusterConfig::tiny(Protocol::Rdma), 1);
            let plan = ShufflePlan::synthetic(4, 4, 2, 1 << 20, 100);
            cluster.warm_mofs(&plan);
            let mut engine = JbsShuffle::new().traced(1 << 16);
            engine.run(&mut cluster, &plan);
            (engine.trace().snapshot().len(), engine.trace().to_jsonl())
        };
        let (n, a) = traced_jsonl();
        let (_, b) = traced_jsonl();
        assert!(n > 0, "traced run recorded nothing");
        assert_eq!(a, b, "identical runs must yield byte-identical traces");
        // Every injected chunk eventually goes on the wire, byte for byte.
        let q = jbs_obs::TraceQuery::new(
            jbs_obs::jsonl::parse_jsonl(&a).expect("trace round-trips"),
        );
        let injected: u64 = q.values_b("sim.inject").iter().sum();
        let sent: u64 = q.values_b("sim.send").iter().sum();
        assert_eq!(injected, sent);
        assert!(q.entities("sim.inject").len() >= 2, "multiple nodes traced");
    }

    #[test]
    fn untraced_engine_records_nothing() {
        let mut engine = JbsShuffle::new();
        assert!(!engine.trace().is_enabled());
        let mut cluster =
            jbs_mapred::sim::SimCluster::new(ClusterConfig::tiny(Protocol::Rdma), 1);
        let plan = ShufflePlan::synthetic(2, 2, 2, 1 << 20, 100);
        cluster.warm_mofs(&plan);
        engine.run(&mut cluster, &plan);
        assert!(engine.trace().snapshot().is_empty());
    }

    #[test]
    fn config_accessor() {
        let e = JbsShuffle::with_config(JbsConfig::with_buffer(64 << 10));
        assert_eq!(e.config().buffer_bytes, 64 << 10);
    }
}
