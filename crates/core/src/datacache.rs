//! The DataCache: a fixed pool of transport buffers.
//!
//! "With dedicated memory space as the DataCache ... segments for several
//! requests are prefetched to the DataCache" (Sec. III-B). In the
//! simulation the pool is a counting resource over simulated time: a
//! transfer acquires a buffer (waiting if all are in flight) and releases
//! it when the receiver has drained it. The pool size — DataCache bytes
//! divided by the transport buffer size — is the pipelining window, which
//! is exactly why oversized buffers degrade JBS in Fig. 11: "the use of
//! very large buffers increases the contention between communication
//! threads, and reduces the pipelining effects of many buffers".

use jbs_des::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pool of identical transport buffers tracked in simulated time.
pub struct DataCache {
    free_at: BinaryHeap<Reverse<SimTime>>,
    buffers: usize,
    buffer_bytes: u64,
    outstanding: usize,
    acquisitions: u64,
    total_wait: SimTime,
}

impl DataCache {
    /// A pool of `buffers` buffers of `buffer_bytes` each.
    pub fn new(buffers: usize, buffer_bytes: u64) -> Self {
        assert!(buffers >= 1, "pool needs at least one buffer");
        let mut free_at = BinaryHeap::with_capacity(buffers);
        for _ in 0..buffers {
            free_at.push(Reverse(SimTime::ZERO));
        }
        DataCache {
            free_at,
            buffers,
            buffer_bytes,
            outstanding: 0,
            acquisitions: 0,
            total_wait: SimTime::ZERO,
        }
    }

    /// Acquire a buffer at `now`; returns when one is actually available
    /// (≥ `now`). Must be paired with [`DataCache::release`].
    pub fn acquire(&mut self, now: SimTime) -> SimTime {
        let Reverse(free) = self.free_at.pop().expect("pool exhausted: release missing");
        self.outstanding += 1;
        self.acquisitions += 1;
        let start = now.max(free);
        self.total_wait += start.saturating_sub(now);
        start
    }

    /// Return a buffer to the pool, free again at `when`.
    pub fn release(&mut self, when: SimTime) {
        assert!(self.outstanding > 0, "release without acquire");
        self.outstanding -= 1;
        self.free_at.push(Reverse(when));
    }

    /// Pool size in buffers.
    pub fn buffers(&self) -> usize {
        self.buffers
    }

    /// Size of each buffer.
    pub fn buffer_bytes(&self) -> u64 {
        self.buffer_bytes
    }

    /// Buffers currently checked out.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Mean time an acquire had to wait for a free buffer — the pipeline
    /// stall metric reported by the buffer-size experiments.
    pub fn mean_wait(&self) -> SimTime {
        if self.acquisitions == 0 {
            SimTime::ZERO
        } else {
            self.total_wait / self.acquisitions
        }
    }

    /// Total acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_is_immediate_while_pool_has_buffers() {
        let mut dc = DataCache::new(2, 128 << 10);
        assert_eq!(dc.acquire(SimTime::from_secs(1)), SimTime::from_secs(1));
        assert_eq!(dc.acquire(SimTime::from_secs(1)), SimTime::from_secs(1));
        assert_eq!(dc.outstanding(), 2);
    }

    #[test]
    fn exhausted_pool_waits_for_release() {
        let mut dc = DataCache::new(1, 128 << 10);
        let t = dc.acquire(SimTime::ZERO);
        assert_eq!(t, SimTime::ZERO);
        dc.release(SimTime::from_secs(5));
        let t2 = dc.acquire(SimTime::from_secs(1));
        assert_eq!(t2, SimTime::from_secs(5), "must wait for the release");
        assert_eq!(dc.mean_wait(), SimTime::from_secs(2)); // (0 + 4)/2
    }

    #[test]
    fn earliest_released_buffer_is_handed_out() {
        let mut dc = DataCache::new(2, 4096);
        dc.acquire(SimTime::ZERO);
        dc.acquire(SimTime::ZERO);
        dc.release(SimTime::from_secs(10));
        dc.release(SimTime::from_secs(3));
        assert_eq!(dc.acquire(SimTime::ZERO), SimTime::from_secs(3));
    }

    #[test]
    fn accounting() {
        let mut dc = DataCache::new(4, 64 << 10);
        assert_eq!(dc.buffers(), 4);
        assert_eq!(dc.buffer_bytes(), 64 << 10);
        dc.acquire(SimTime::ZERO);
        assert_eq!(dc.acquisitions(), 1);
        dc.release(SimTime::ZERO);
        assert_eq!(dc.outstanding(), 0);
        assert_eq!(DataCache::new(1, 1).mean_wait(), SimTime::ZERO);
    }

    #[test]
    #[should_panic]
    fn over_release_panics() {
        let mut dc = DataCache::new(1, 1);
        dc.release(SimTime::ZERO);
    }

    #[test]
    #[should_panic]
    fn zero_buffers_rejected() {
        let _ = DataCache::new(0, 1);
    }
}
