//! The stock Hadoop shuffle: HttpServlets and MOFCopiers inside the JVM.
//!
//! This is the engine JBS is measured against. Its behaviour follows
//! Sec. II-B and Fig. 4:
//!
//! * every fetch is an HTTP request over its own TCP connection;
//! * the servlet identifies the segment via the IndexCache, then
//!   **serializes** disk read and network transmit chunk by chunk — no
//!   batching, no prefetch, no cross-request disk locality;
//! * every byte moves through Java streams (the [`jbs_jvm::ReadMode::JavaStream`]
//!   CPU tax) and inflates the heap, driving stop-the-world GC pauses in
//!   both the TaskTracker JVM (server side) and the ReduceTask JVM
//!   (client side);
//! * each ReduceTask runs several MOFCopier threads (default 5 parallel
//!   copies) plus merge threads — more than 8 shuffle threads per
//!   ReduceTask (Sec. V-D);
//! * fetched segments accumulate in the reduce JVM's shuffle buffer and
//!   spill to disk under pressure, followed by a multi-pass disk merge.

use crate::indexcache::IndexCache;
use jbs_des::{EventQueue, SimTime};
use jbs_jvm::{GcModel, GcParams, PathCosts};
use jbs_mapred::merge::merge_passes;
use jbs_mapred::sim::{ShuffleEngine, ShuffleOutcome, ShufflePlan, SimCluster};

/// Hadoop's default `mapred.reduce.parallel.copies`.
const PARALLEL_COPIES: usize = 5;

/// Fraction of the reduce JVM heap used as the shuffle buffer
/// (`mapred.job.shuffle.input.buffer.percent` = 0.70).
const SHUFFLE_BUFFER_FRAC: f64 = 0.70;

/// In-memory merge trigger (`mapred.job.shuffle.merge.percent` = 0.66).
const MERGE_TRIGGER_FRAC: f64 = 0.66;

/// A segment larger than this fraction of the buffer goes straight to disk.
const DIRECT_TO_DISK_FRAC: f64 = 0.25;

/// Merge fan-in (`io.sort.factor`).
const MERGE_FANIN: usize = 10;

/// CPU per record of the reduce-side merge: Hadoop's IFile merge
/// deserializes every record into objects, compares through the raw
/// comparator and re-serializes — several hundred nanoseconds per record
/// in the 0.20-era JVM. Benchmarks with tiny records (AdjacencyList: 32 B)
/// are dominated by this, which is why they are JBS's best case.
const MERGE_CPU_PER_RECORD: f64 = 900e-9;

/// Per-record CPU on the MOFCopier receive path (record boundary parsing +
/// buffer object churn).
const RX_CPU_PER_RECORD: f64 = 300e-9;

/// Cores a stop-the-world collection occupies while it runs.
const GC_PARALLELISM: f64 = 2.0;

/// Disk I/O unit during reduce-side spills and merge passes.
const SPILL_IO_UNIT: u64 = 4 << 20;

/// Tuning knobs for the baseline engine (exposed for tests/ablations).
#[derive(Debug, Clone)]
pub struct HadoopConfig {
    /// MOFCopier threads per ReduceTask.
    pub parallel_copies: usize,
    /// Reduce JVM heap (drives the shuffle buffer size and GC).
    pub reduce_heap_bytes: u64,
    /// MOFCopiers learn about completed maps by polling the TaskTracker
    /// for TaskCompletionEvents (every few seconds in Hadoop 0.20), so a
    /// committed MOF becomes fetchable only at the next poll. Set to zero
    /// for micro-benchmarks that fetch directly.
    pub heartbeat: SimTime,
}

impl Default for HadoopConfig {
    fn default() -> Self {
        HadoopConfig {
            parallel_copies: PARALLEL_COPIES,
            reduce_heap_bytes: 1 << 30,
            heartbeat: SimTime::from_secs(3),
        }
    }
}

/// The stock Hadoop shuffle engine.
pub struct HadoopShuffle {
    cfg: HadoopConfig,
}

impl Default for HadoopShuffle {
    fn default() -> Self {
        Self::new()
    }
}

impl HadoopShuffle {
    /// Default Hadoop 0.20.3 configuration.
    pub fn new() -> Self {
        HadoopShuffle {
            cfg: HadoopConfig::default(),
        }
    }

    /// Explicit configuration.
    pub fn with_config(cfg: HadoopConfig) -> Self {
        assert!(cfg.parallel_copies >= 1);
        HadoopShuffle { cfg }
    }
}

struct SegFetch {
    mof: usize,
    seg_off: u64,
    bytes: u64,
    ready: SimTime,
}

struct ReducerState {
    node: usize,
    segs: Vec<SegFetch>,
    next: usize,
    in_mem: u64,
    disk_runs: usize,
    spilled: u64,
    spill_file_bytes: u64,
    last_fetch_done: SimTime,
    gc: GcModel,
}

impl ShuffleEngine for HadoopShuffle {
    fn name(&self) -> &str {
        "Hadoop"
    }

    fn run(&mut self, cluster: &mut SimCluster, plan: &ShufflePlan) -> ShuffleOutcome {
        let slaves = cluster.cfg.slaves;
        let costs = PathCosts::java();
        let read_mode = costs.read_mode;
        let chunk_size = read_mode.io_unit();
        let record = plan.avg_record_bytes.max(1);
        let buffer = (self.cfg.reduce_heap_bytes as f64 * SHUFFLE_BUFFER_FRAC) as u64;

        // Absolute segment offsets inside each MOF.
        let seg_off: Vec<Vec<u64>> = plan
            .mofs
            .iter()
            .map(|m| {
                let mut acc = 0u64;
                m.seg_bytes
                    .iter()
                    .map(|&b| {
                        let o = acc;
                        acc += b;
                        o
                    })
                    .collect()
            })
            .collect();

        let mut reducers: Vec<ReducerState> = plan
            .reducers
            .iter()
            .map(|r| {
                let mut hb_rng = cluster.rng.fork(0xbea7 + r.id as u64);
                let mut segs: Vec<SegFetch> = plan
                    .mofs
                    .iter()
                    .filter(|m| m.seg_bytes[r.id] > 0)
                    .map(|m| SegFetch {
                        mof: m.mof_id,
                        seg_off: seg_off[m.mof_id][r.id],
                        bytes: m.seg_bytes[r.id],
                        // Visible at the next heartbeat after commit.
                        ready: m.ready
                            + SimTime::from_nanos(
                                hb_rng.uniform_u64(0, self.cfg.heartbeat.as_nanos().max(1)),
                            ),
                    })
                    .collect();
                segs.sort_by_key(|s| (s.ready, s.mof));
                ReducerState {
                    node: r.node,
                    segs,
                    next: 0,
                    in_mem: 0,
                    disk_runs: 0,
                    spilled: 0,
                    spill_file_bytes: 0,
                    last_fetch_done: SimTime::ZERO,
                    gc: GcModel::new(GcParams::task_jvm_1g()),
                }
            })
            .collect();

        // Server-side state: IndexCache + TaskTracker JVM GC per node.
        let mut server_index: Vec<IndexCache> = (0..slaves)
            .map(|_| IndexCache::standard(plan.reducers.len()))
            .collect();
        let mut server_gc: Vec<GcModel> = (0..slaves)
            .map(|_| GcModel::new(GcParams::task_jvm_1g()))
            .collect();
        let spill_files: Vec<jbs_disk::FileId> =
            (0..reducers.len()).map(|_| cluster.alloc_file()).collect();

        let proto = cluster.cfg.protocol.params();
        let mut connections = 0u64;
        let mut bytes_fetched = 0u64;
        let mut first_activity = vec![SimTime::MAX; slaves];
        let mut last_activity = vec![SimTime::ZERO; slaves];

        // One event chain per MOFCopier thread. Fig. 4: within a request
        // the servlet first *reads* the whole segment through the Java
        // stream (chunked disk I/O + stream CPU, serialized), then
        // *transmits* it (chunked wire sends, paced by the socket drain).
        // Each event moves one chunk so concurrent chains interleave on
        // the shared disks and NICs; the Read/Xmit split also keeps FIFO
        // resource submissions in arrival-time order.
        enum Step {
            /// Pick the copier's next segment.
            Claim,
            /// Issue the serialized disk read + stream CPU for one chunk.
            Read { seg_idx: usize, off: u64 },
            /// Segment is read; transmit the next chunk. `recv_cursor` is
            /// the client-side stream-processing frontier.
            Xmit {
                seg_idx: usize,
                off: u64,
                recv_cursor: SimTime,
            },
        }
        let mut q: EventQueue<(usize, Step)> = EventQueue::new();
        for (ri, _) in plan.reducers.iter().enumerate() {
            for _ in 0..self.cfg.parallel_copies {
                q.push(SimTime::ZERO, (ri, Step::Claim));
            }
        }

        while let Some((t, (ri, step))) = q.pop() {
            let rn = reducers[ri].node;
            match step {
                Step::Claim => {
                    let (seg_idx, ready) = {
                        let r = &reducers[ri];
                        match r.segs.get(r.next) {
                            None => continue, // copier retires
                            Some(s) => (r.next, s.ready),
                        }
                    };
                    if ready > t {
                        q.push(ready, (ri, Step::Claim));
                        continue;
                    }
                    reducers[ri].next += 1;
                    let mof_id = reducers[ri].segs[seg_idx].mof;
                    let sn = plan.mofs[mof_id].node;

                    // Per-fetch HTTP connection (no reuse) + servlet dispatch.
                    connections += 1;
                    cluster.cpu[rn].charge_thread(t, proto.setup_cpu);
                    cluster.cpu[sn].charge_thread(t, proto.setup_cpu);
                    let mut cursor = t + proto.setup_elapsed();
                    cluster.cpu[sn].charge_thread(cursor, costs.per_message_cpu);
                    cursor += costs.per_message_cpu;
                    // IndexCache lookup (disk on miss).
                    cursor = server_index[sn].lookup(
                        cursor,
                        plan.mofs[mof_id].index_file,
                        &mut cluster.storage[sn],
                    );
                    first_activity[rn] = first_activity[rn].min(t);
                    first_activity[sn] = first_activity[sn].min(t);
                    q.push(cursor, (ri, Step::Read { seg_idx, off: 0 }));
                }
                Step::Read { seg_idx, off } => {
                    let (mof_id, seg_abs, seg_bytes) = {
                        let s = &reducers[ri].segs[seg_idx];
                        (s.mof, s.seg_off, s.bytes)
                    };
                    let sn = plan.mofs[mof_id].node;
                    let chunk = chunk_size.min(seg_bytes - off);
                    let io =
                        cluster.storage[sn].read(t, plan.mofs[mof_id].file, seg_abs + off, chunk);
                    // Java stream read CPU + GC pressure on the TaskTracker.
                    let read_cpu = read_mode.call_overhead()
                        + SimTime::from_secs_f64(chunk as f64 * read_mode.cpu_per_byte());
                    let srv_pause =
                        server_gc[sn].allocate((chunk as f64 * read_mode.alloc_per_byte()) as u64);
                    cluster.cpu[sn].charge_thread(io.completed, read_cpu);
                    if srv_pause > SimTime::ZERO {
                        cluster.cpu[sn].charge(io.completed + read_cpu, srv_pause, GC_PARALLELISM);
                    }
                    let after_read = io.completed + read_cpu + srv_pause;
                    if off + chunk < seg_bytes {
                        // Keep reading: the segment is not in the send
                        // buffer yet (Fig. 4 serializes Read before Xmit).
                        q.push(
                            after_read,
                            (
                                ri,
                                Step::Read {
                                    seg_idx,
                                    off: off + chunk,
                                },
                            ),
                        );
                    } else {
                        q.push(
                            after_read,
                            (
                                ri,
                                Step::Xmit {
                                    seg_idx,
                                    off: 0,
                                    recv_cursor: SimTime::ZERO,
                                },
                            ),
                        );
                    }
                }
                Step::Xmit {
                    seg_idx,
                    off,
                    recv_cursor,
                } => {
                    let (mof_id, seg_bytes) = {
                        let s = &reducers[ri].segs[seg_idx];
                        (s.mof, s.bytes)
                    };
                    let sn = plan.mofs[mof_id].node;
                    let chunk = chunk_size.min(seg_bytes - off);

                    // Send-side stream CPU, then the wire.
                    let tx_cpu = costs.send_cpu(chunk) + proto.tx_cpu(chunk);
                    cluster.cpu[sn].charge_thread(t, tx_cpu);
                    let timing = cluster.fabric.transfer(t + tx_cpu, sn, rn, chunk);

                    // Client-side stream processing is serialized per
                    // copier: it drains arrivals at the JVM receive rate,
                    // paying per-record parsing on top of per-byte costs.
                    let rx_cpu = costs.recv_cpu(chunk)
                        + timing.rx_cpu
                        + SimTime::from_secs_f64(
                            (chunk / record).max(1) as f64 * RX_CPU_PER_RECORD,
                        );
                    let cli_pause = reducers[ri].gc.allocate(costs.alloc_bytes(chunk));
                    let rx_start = timing.arrived.max(recv_cursor);
                    cluster.cpu[rn].charge_thread(rx_start, rx_cpu);
                    if cli_pause > SimTime::ZERO {
                        cluster.cpu[rn].charge(rx_start + rx_cpu, cli_pause, GC_PARALLELISM);
                    }
                    let cursor = rx_start + rx_cpu + cli_pause;
                    bytes_fetched += chunk;
                    last_activity[sn] = last_activity[sn].max(timing.tx_done);
                    last_activity[rn] = last_activity[rn].max(cursor);

                    if off + chunk < seg_bytes {
                        // Next send is paced by the socket drain (tx side),
                        // while the receiver keeps processing in parallel.
                        q.push(
                            timing.tx_done,
                            (
                                ri,
                                Step::Xmit {
                                    seg_idx,
                                    off: off + chunk,
                                    recv_cursor: cursor,
                                },
                            ),
                        );
                        continue;
                    }

                    // --- Segment complete: shuffle buffer / spill ---------
                    // Spill writes are buffered and issued in SPILL_IO_UNIT
                    // chunks so concurrent fetch chains can interleave on
                    // the disk arm.
                    let spill = |bytes: u64,
                                     at: SimTime,
                                     r: &mut ReducerState,
                                     cluster: &mut SimCluster| {
                        let mut woff = r.spill_file_bytes;
                        let end = woff + bytes;
                        while woff < end {
                            let unit = SPILL_IO_UNIT.min(end - woff);
                            cluster.storage[rn].write(at, spill_files[ri], woff, unit);
                            woff += unit;
                        }
                        r.spill_file_bytes = end;
                        r.spilled += bytes;
                        r.disk_runs += 1;
                    };
                    let r = &mut reducers[ri];
                    if seg_bytes as f64 > buffer as f64 * DIRECT_TO_DISK_FRAC {
                        spill(seg_bytes, cursor, r, cluster);
                    } else {
                        r.in_mem += seg_bytes;
                        if r.in_mem as f64 > buffer as f64 * MERGE_TRIGGER_FRAC {
                            let bytes = r.in_mem;
                            r.in_mem = 0;
                            spill(bytes, cursor, r, cluster);
                        }
                    }
                    r.last_fetch_done = r.last_fetch_done.max(cursor);
                    q.push(cursor, (ri, Step::Claim));
                }
            }
        }

        // --- Final multi-pass disk merge per reducer ---------------------
        let barrier = plan.last_mof_ready();
        let mut ready_times = Vec::with_capacity(reducers.len());
        let mut spilled_total = 0u64;
        for (ri, r) in reducers.iter_mut().enumerate() {
            let mut t = r.last_fetch_done.max(barrier);
            let rn = r.node;
            if r.disk_runs > 0 {
                let runs = r.disk_runs + usize::from(r.in_mem > 0);
                // Hadoop merges just enough of the smallest runs to bring
                // the count under io.sort.factor (an intermediate merge of
                // roughly (runs - fanin + 1)/runs of the data), then the
                // final pass streams everything into the reduce function.
                // A single disk run needs no intermediate pass at all —
                // the final pass streams it directly.
                debug_assert!(runs >= 1);
                debug_assert!(runs == 1 || merge_passes(runs, MERGE_FANIN) >= 1);
                let intermediate_bytes = if runs > MERGE_FANIN {
                    let k = runs - MERGE_FANIN + 1;
                    (r.spill_file_bytes as f64 * k as f64 / runs as f64) as u64
                } else {
                    0
                };
                let merge_io = |bytes: u64,
                                    write_back: bool,
                                    mut t: SimTime,
                                    cluster: &mut SimCluster,
                                    gc: &mut jbs_jvm::GcModel| {
                    let mut off = 0u64;
                    while off < bytes {
                        let chunk = SPILL_IO_UNIT.min(bytes - off);
                        let io = cluster.storage[rn].read(t, spill_files[ri], off, chunk);
                        let cpu = SimTime::from_secs_f64(
                            (chunk / record).max(1) as f64 * MERGE_CPU_PER_RECORD,
                        ) + SimTime::from_secs_f64(
                            chunk as f64 * read_mode.cpu_per_byte(),
                        );
                        cluster.cpu[rn].charge_thread(io.completed, cpu);
                        let pause =
                            gc.allocate((chunk as f64 * read_mode.alloc_per_byte()) as u64);
                        if pause > SimTime::ZERO {
                            cluster.cpu[rn].charge(io.completed + cpu, pause, GC_PARALLELISM);
                        }
                        t = io.completed + cpu + pause;
                        if write_back {
                            cluster.storage[rn].write(t, spill_files[ri], off, chunk);
                        }
                        off += chunk;
                    }
                    t
                };
                if intermediate_bytes > 0 {
                    t = merge_io(intermediate_bytes, true, t, cluster, &mut r.gc);
                }
                t = merge_io(r.spill_file_bytes, false, t, cluster, &mut r.gc);
                cluster.storage[rn].invalidate(spill_files[ri]);
            }
            spilled_total += r.spilled;
            ready_times.push(t);
        }

        // --- Background JVM thread overhead -------------------------------
        let java_threads = self.cfg.parallel_copies as f64
            + costs.shuffle_threads_per_reducetask as f64;
        let threads_per_node =
            java_threads * cluster.cfg.reduce_slots as f64 + 4.0 /* servlets */;
        for node in 0..slaves {
            if first_activity[node] < last_activity[node] {
                let span = last_activity[node] - first_activity[node];
                cluster.cpu[node].charge(
                    first_activity[node],
                    span,
                    threads_per_node * costs.per_thread_overhead,
                );
            }
        }

        ShuffleOutcome {
            ready: ready_times,
            bytes_fetched,
            spilled_bytes: spilled_total,
            connections_established: connections,
            connections_evicted: connections, // per-fetch connections close
            engine: "Hadoop".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jbs::JbsShuffle;
    use jbs_mapred::{ClusterConfig, JobSimulator, JobSpec};
    use jbs_net::Protocol;

    fn sim(bytes: u64, protocol: Protocol) -> JobSimulator {
        JobSimulator::new(ClusterConfig::tiny(protocol), JobSpec::terasort(bytes))
    }

    #[test]
    fn completes_and_conserves_bytes() {
        let r = sim(1 << 30, Protocol::IpoIb).run(&mut HadoopShuffle::new());
        assert_eq!(r.engine, "Hadoop");
        let diff = (r.bytes_shuffled as i64 - (1i64 << 30)).unsigned_abs();
        assert!(diff < 64, "shuffled {}", r.bytes_shuffled);
    }

    #[test]
    fn opens_a_connection_per_fetch() {
        let r = sim(1 << 30, Protocol::IpoIb).run(&mut HadoopShuffle::new());
        // tiny cluster: 16 MOFs x 8 reducers = 128 non-empty segments.
        assert_eq!(r.connections_established, 128);
    }

    #[test]
    fn jbs_beats_hadoop_on_fast_networks() {
        // 6 GiB over the tiny cluster (1 GB page cache per node) is the
        // disk-bound regime where JVM-bypass matters; at tiny cached sizes
        // the two engines are within noise, as the paper reports.
        let s = sim(6 << 30, Protocol::IpoIb);
        let hadoop = s.run(&mut HadoopShuffle::new());
        let jbs = s.run(&mut JbsShuffle::new());
        assert!(
            jbs.job_time.as_secs_f64() < hadoop.job_time.as_secs_f64() * 0.95,
            "JBS {} vs Hadoop {}",
            jbs.job_time,
            hadoop.job_time
        );
    }

    fn shuffle_gain(protocol: Protocol) -> f64 {
        use jbs_mapred::sim::SimCluster;
        use jbs_mapred::ShufflePlan;
        let plan = ShufflePlan::synthetic(4, 4, 2, 4 << 20, 100);
        let mut c1 = SimCluster::new(ClusterConfig::tiny(protocol), 1);
        c1.warm_mofs(&plan);
        let hadoop = HadoopShuffle::new().run(&mut c1, &plan).all_ready();
        let mut c2 = SimCluster::new(ClusterConfig::tiny(protocol), 1);
        c2.warm_mofs(&plan);
        let jbs_cfg = crate::JbsConfig {
            notification_latency: SimTime::ZERO,
            ..crate::JbsConfig::default()
        };
        let jbs = JbsShuffle::with_config(jbs_cfg).run(&mut c2, &plan).all_ready();
        hadoop.as_secs_f64() / jbs.as_secs_f64()
    }

    #[test]
    fn jbs_gap_shrinks_on_1gige() {
        // Sec. II-B / Fig. 2: the 1GigE wire hides the JVM overhead, so
        // JBS's shuffle-phase advantage must be larger on InfiniBand.
        let gain_slow = shuffle_gain(Protocol::Tcp1GigE);
        let gain_fast = shuffle_gain(Protocol::IpoIb);
        assert!(
            gain_fast > gain_slow,
            "gain on IB {gain_fast:.3} should exceed gain on 1GigE {gain_slow:.3}"
        );
    }

    #[test]
    fn hadoop_uses_more_cpu_than_jbs() {
        let s = sim(2 << 30, Protocol::IpoIb);
        let hadoop = s.run(&mut HadoopShuffle::new());
        let jbs = s.run(&mut JbsShuffle::new());
        let h_cpu: f64 = hadoop.cpu.iter().map(|m| m.busy_core_secs()).sum();
        let j_cpu: f64 = jbs.cpu.iter().map(|m| m.busy_core_secs()).sum();
        assert!(h_cpu > j_cpu, "Hadoop {h_cpu} vs JBS {j_cpu} core-secs");
    }

    #[test]
    fn large_inputs_spill() {
        // Shrink the reduce heap so the tiny job spills.
        let s = sim(1 << 30, Protocol::IpoIb);
        let mut engine = HadoopShuffle::with_config(HadoopConfig {
            reduce_heap_bytes: 64 << 20,
            ..HadoopConfig::default()
        });
        let r = s.run(&mut engine);
        assert!(r.spilled_bytes > 0, "expected reduce-side spills");
    }

    #[test]
    fn deterministic() {
        let s = sim(1 << 30, Protocol::Sdp);
        let a = s.run(&mut HadoopShuffle::new());
        let b = s.run(&mut HadoopShuffle::new());
        assert_eq!(a.job_time, b.job_time);
    }
}
