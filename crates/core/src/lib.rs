//! # jbs-core — JVM-Bypass Shuffling
//!
//! The paper's contribution, implemented as two plug-in shuffle engines for
//! the `jbs-mapred` runtime (the [`jbs_mapred::ShuffleEngine`] boundary is
//! this reproduction's MAPREDUCE-4049 "pluggable shuffle"):
//!
//! * [`HadoopShuffle`] — the stock path: per-TaskTracker **HttpServlets**
//!   answer fetch requests by reading MOF segments with Java streams and
//!   pushing them through the JVM socket stack, fully serialized per
//!   request (Fig. 4); per-ReduceTask **MOFCopiers** fetch concurrently,
//!   spill to disk under memory pressure, and multi-pass merge. Every byte
//!   pays the JVM tax (`jbs-jvm`): stream-read CPU, allocation-driven GC
//!   pauses, and 8+ shuffle threads per ReduceTask.
//!
//! * [`JbsShuffle`] — JVM-Bypass Shuffling: a native **MOFSupplier** per
//!   node with an [`IndexCache`] and a [`DataCache`] that groups fetch
//!   requests by MOF, prefetches batches round-robin, and transmits
//!   asynchronously (Fig. 5); a native **NetMerger** per node that
//!   consolidates the fetch traffic of all local ReduceTasks, injects
//!   requests round-robin across remote nodes, and merges segments with
//!   the network-levitated merge (no reduce-side spilling). Connections
//!   are cached and capped at 512 with LRU teardown; both TCP-like and
//!   RDMA-like protocols are driven through the same code (Sec. III–IV).
//!
//! [`EngineKind`] enumerates the test cases of Table I and builds the
//! matching engine + cluster protocol pair.

pub mod baseline;
pub mod config;
pub mod datacache;
pub mod engine_kind;
pub mod indexcache;
pub mod jbs;

pub use baseline::HadoopShuffle;
pub use config::JbsConfig;
pub use datacache::DataCache;
pub use engine_kind::EngineKind;
pub use indexcache::IndexCache;
pub use jbs::JbsShuffle;
