//! The IndexCache: cached MOF index entries.
//!
//! "An IndexCache is usually maintained to cache the entries from the Index
//! file and speed up the identification of MOF segments" (Sec. III-B).
//! Both the stock HttpServlet path and JBS's MOFSupplier use one; a miss
//! costs an index-file disk read, a hit costs nothing but a lookup.

use jbs_des::lru::LruCache;
use jbs_des::SimTime;
use jbs_disk::{FileId, NodeStorage};

/// Per-node cache of MOF index files.
pub struct IndexCache {
    cache: LruCache<FileId, ()>,
    index_bytes: u64,
}

impl IndexCache {
    /// A cache holding up to `capacity` MOF indexes, each `index_bytes`
    /// on disk (24 bytes per reducer plus header/CRC).
    pub fn new(capacity: usize, index_bytes: u64) -> Self {
        IndexCache {
            cache: LruCache::new(capacity),
            index_bytes,
        }
    }

    /// The standard sizing: 1000 indexes for a job with `reducers`
    /// partitions (Hadoop's `mapred.tasktracker.indexcache.mb` default
    /// comfortably holds this many).
    pub fn standard(reducers: usize) -> Self {
        IndexCache::new(1000, 24 * reducers as u64 + 16)
    }

    /// Look up the index for `mof_index_file` at `now`; on a miss, read it
    /// from `storage` and cache it. Returns when the entry is available.
    pub fn lookup(
        &mut self,
        now: SimTime,
        mof_index_file: FileId,
        storage: &mut NodeStorage,
    ) -> SimTime {
        if self.cache.touch(&mof_index_file) {
            return now;
        }
        let io = storage.read(now, mof_index_file, 0, self.index_bytes);
        self.cache.insert(mof_index_file, ());
        io.completed
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.cache.misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jbs_disk::DiskParams;

    fn storage() -> NodeStorage {
        NodeStorage::new(1, DiskParams::sata_500gb(), 16 << 20)
    }

    #[test]
    fn first_lookup_reads_disk_then_hits() {
        let mut s = storage();
        let mut ic = IndexCache::standard(44);
        let t0 = SimTime::from_secs(1);
        let t1 = ic.lookup(t0, FileId(7), &mut s);
        assert!(t1 > t0, "miss must cost disk time");
        let t2 = ic.lookup(t1, FileId(7), &mut s);
        assert_eq!(t2, t1, "hit is free");
        assert_eq!(ic.hits(), 1);
        assert_eq!(ic.misses(), 1);
    }

    #[test]
    fn capacity_eviction_forces_reread() {
        let mut s = storage();
        let mut ic = IndexCache::new(2, 1072);
        ic.lookup(SimTime::ZERO, FileId(1), &mut s);
        ic.lookup(SimTime::from_secs(1), FileId(2), &mut s);
        ic.lookup(SimTime::from_secs(2), FileId(3), &mut s); // evicts 1
        // FileId(1) falls out of the IndexCache. (The page cache may still
        // hold the file's blocks, so the re-read can be cheap — but the
        // IndexCache itself must miss.)
        let misses_before = ic.misses();
        ic.lookup(SimTime::from_secs(3), FileId(1), &mut s);
        assert_eq!(ic.misses(), misses_before + 1);
    }

    #[test]
    fn index_size_matches_reducer_count() {
        let ic = IndexCache::standard(44);
        assert_eq!(ic.index_bytes, 24 * 44 + 16);
    }
}
