//! The test-case matrix of Table I: engine × protocol × network.

use crate::baseline::HadoopShuffle;
use crate::config::JbsConfig;
use crate::jbs::JbsShuffle;
use jbs_mapred::sim::ShuffleEngine;
use jbs_net::Protocol;

/// One test case: which shuffle engine on which protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Hadoop on 1GigE (TCP/IP).
    HadoopOn1GigE,
    /// Hadoop on 10GigE (TCP/IP).
    HadoopOn10GigE,
    /// Hadoop on IPoIB (InfiniBand).
    HadoopOnIpoIb,
    /// Hadoop on SDP (InfiniBand).
    HadoopOnSdp,
    /// JBS on 1GigE (TCP/IP).
    JbsOn1GigE,
    /// JBS on 10GigE (TCP/IP).
    JbsOn10GigE,
    /// JBS on IPoIB (InfiniBand).
    JbsOnIpoIb,
    /// JBS on RoCE (10GigE).
    JbsOnRoce,
    /// JBS on RDMA (InfiniBand).
    JbsOnRdma,
}

impl EngineKind {
    /// The rows of Table I, in paper order (the paper's table omits
    /// "JBS on 1GigE", which appears only in Fig. 7b; [`EngineKind::all`]
    /// includes it).
    pub fn table1() -> [EngineKind; 8] {
        [
            EngineKind::HadoopOn1GigE,
            EngineKind::HadoopOn10GigE,
            EngineKind::HadoopOnIpoIb,
            EngineKind::HadoopOnSdp,
            EngineKind::JbsOn10GigE,
            EngineKind::JbsOnIpoIb,
            EngineKind::JbsOnRoce,
            EngineKind::JbsOnRdma,
        ]
    }

    /// Every test case, including JBS on 1GigE.
    pub fn all() -> [EngineKind; 9] {
        [
            EngineKind::HadoopOn1GigE,
            EngineKind::HadoopOn10GigE,
            EngineKind::HadoopOnIpoIb,
            EngineKind::HadoopOnSdp,
            EngineKind::JbsOn1GigE,
            EngineKind::JbsOn10GigE,
            EngineKind::JbsOnIpoIb,
            EngineKind::JbsOnRoce,
            EngineKind::JbsOnRdma,
        ]
    }

    /// The transport protocol this case runs on.
    pub fn protocol(self) -> Protocol {
        match self {
            EngineKind::HadoopOn1GigE | EngineKind::JbsOn1GigE => Protocol::Tcp1GigE,
            EngineKind::HadoopOn10GigE | EngineKind::JbsOn10GigE => Protocol::Tcp10GigE,
            EngineKind::HadoopOnIpoIb | EngineKind::JbsOnIpoIb => Protocol::IpoIb,
            EngineKind::HadoopOnSdp => Protocol::Sdp,
            EngineKind::JbsOnRoce => Protocol::RoCE,
            EngineKind::JbsOnRdma => Protocol::Rdma,
        }
    }

    /// True for the JVM-bypassed cases.
    pub fn is_jbs(self) -> bool {
        matches!(
            self,
            EngineKind::JbsOn1GigE
                | EngineKind::JbsOn10GigE
                | EngineKind::JbsOnIpoIb
                | EngineKind::JbsOnRoce
                | EngineKind::JbsOnRdma
        )
    }

    /// The paper's test-case name, e.g. "Hadoop on IPoIB".
    pub fn label(self) -> String {
        let engine = if self.is_jbs() { "JBS" } else { "Hadoop" };
        format!("{} on {}", engine, self.protocol().label())
    }

    /// Build the shuffle engine for this case with default settings.
    pub fn build(self) -> Box<dyn ShuffleEngine> {
        if self.is_jbs() {
            Box::new(JbsShuffle::new())
        } else {
            Box::new(HadoopShuffle::new())
        }
    }

    /// Build the JBS cases with an explicit JBS configuration (buffer
    /// sweeps, ablations); baseline cases ignore the config.
    pub fn build_with(self, cfg: JbsConfig) -> Box<dyn ShuffleEngine> {
        if self.is_jbs() {
            Box::new(JbsShuffle::with_config(cfg))
        } else {
            Box::new(HadoopShuffle::new())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jbs_net::Network;

    #[test]
    fn table1_has_the_papers_rows() {
        let labels: Vec<String> = EngineKind::table1().iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Hadoop on 1GigE",
                "Hadoop on 10GigE",
                "Hadoop on IPoIB",
                "Hadoop on SDP",
                "JBS on 10GigE",
                "JBS on IPoIB",
                "JBS on RoCE",
                "JBS on RDMA",
            ]
        );
    }

    #[test]
    fn networks_match_table1() {
        assert_eq!(EngineKind::HadoopOnSdp.protocol().network(), Network::InfiniBand);
        assert_eq!(EngineKind::JbsOnRoce.protocol().network(), Network::TenGigE);
        assert_eq!(EngineKind::JbsOnRdma.protocol().network(), Network::InfiniBand);
        assert_eq!(EngineKind::HadoopOn1GigE.protocol().network(), Network::OneGigE);
    }

    #[test]
    fn build_produces_matching_engines() {
        assert_eq!(EngineKind::JbsOnRdma.build().name(), "JBS");
        assert_eq!(EngineKind::HadoopOnIpoIb.build().name(), "Hadoop");
        let cfg = JbsConfig::with_buffer(64 << 10);
        assert_eq!(EngineKind::JbsOnIpoIb.build_with(cfg.clone()).name(), "JBS");
        assert_eq!(EngineKind::HadoopOnSdp.build_with(cfg).name(), "Hadoop");
    }

    #[test]
    fn jbs_flag() {
        for k in EngineKind::all() {
            assert_eq!(k.is_jbs(), k.label().starts_with("JBS"), "{k:?}");
        }
    }
}
