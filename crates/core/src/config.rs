//! JBS tuning knobs and their paper defaults.

use jbs_des::SimTime;
use jbs_net::conn::DEFAULT_MAX_CONNECTIONS;

/// Configuration of the JBS library (Sec. IV, Sec. V-E).
#[derive(Debug, Clone)]
pub struct JbsConfig {
    /// Transport buffer size. "We choose the default transport buffer size
    /// as 128 KB for the JBS library" (Sec. V-E).
    pub buffer_bytes: u64,
    /// Total DataCache memory per NetMerger/MOFSupplier process; divided by
    /// `buffer_bytes` this bounds the number of in-flight transfers, which
    /// is what makes very large buffers *reduce* pipelining (Fig. 11).
    pub datacache_bytes: u64,
    /// Segments-worth of read-ahead the MOFSupplier's disk prefetch server
    /// issues per group visit, in transport buffers.
    pub prefetch_batch: u32,
    /// Live-connection cap before LRU teardown (Sec. IV-A: 512).
    pub max_connections: usize,
    /// Round-robin injection across per-remote-node request groups
    /// (disable for the fairness ablation; FIFO across all groups then).
    pub round_robin_injection: bool,
    /// Group fetch requests by target MOF on the supplier (disable for the
    /// grouping ablation; arrival order then).
    pub group_by_mof: bool,
    /// Pipelined prefetching into the DataCache (disable for the prefetch
    /// ablation; the supplier then serializes read and transmit per
    /// request like the stock HttpServlet, Fig. 4).
    pub pipelined_prefetch: bool,
    /// Segment-body bytes per reducer the NetMerger may stage *before* the
    /// merge phase starts. Headers always stream at MOF commit; bodies
    /// levitate on remote disks once this staging memory is full — the
    /// SC'11 network-levitated merge with a bounded eager window.
    pub prefetch_budget_per_reducer: u64,
    /// JBS plugs into Hadoop, so the NetMerger learns of completed
    /// MapTasks through the same TaskCompletionEvents polling as stock
    /// MOFCopiers (~3 s in Hadoop 0.20). Zero for micro-benchmarks that
    /// fetch directly.
    pub notification_latency: SimTime,
    /// Retries a fetch attempts after a transient failure (connect
    /// refusal, timeout, reset, corrupt frame) before surfacing the
    /// error to the merge. 0 disables retry.
    pub fetch_retry_max: u32,
    /// Backoff before the first fetch retry; doubles per retry.
    pub fetch_backoff_base: SimTime,
    /// Upper clamp on any single fetch-retry backoff sleep.
    pub fetch_backoff_max: SimTime,
    /// Per-request read/write deadline on the real dataplane.
    pub fetch_io_timeout: SimTime,
    /// End-to-end integrity on the real dataplane: fetch in the v3 wire
    /// dialect so every chunk payload arrives CRC32C-sealed and is
    /// verified before the merge admits it. `false` pins peers to the
    /// checksum-free v2 dialect (legacy fleets, overhead measurement).
    pub checksum: bool,
    /// MOFSupplier admission control: fetch jobs one peer may hold
    /// in flight (queued + staging) before further requests are shed
    /// with a retryable `Busy` pushback instead of stalling everyone.
    pub max_inflight_per_peer: u64,
    /// Consecutive connection-level failures before a supplier's
    /// circuit breaker opens and new fetch ops for it fail fast
    /// (half-open probes re-admit it). 0 disables the breaker.
    pub breaker_threshold: u32,
    /// How long a draining MOFSupplier waits for in-flight exchanges
    /// to finish before hard-closing the remaining connections.
    pub drain_timeout: SimTime,
    /// Memory budget of the supplier-side hybrid store's MEMORY tier
    /// (Uniffle-style MEMORY_LOCALFILE): incoming partition writes
    /// buffer here until the watermarks spill them.
    pub hybrid_memory_budget: u64,
    /// Fraction of `hybrid_memory_budget` at which the memory tier
    /// trips a spill to LOCALFILE.
    pub memory_spill_high_watermark: f64,
    /// Fraction of `hybrid_memory_budget` a tripped spill flushes down
    /// to before stopping.
    pub memory_spill_low_watermark: f64,
    /// Per-partition memory cap: a partition buffering more than this
    /// is force-spilled even below the high watermark, so one skewed
    /// reducer cannot monopolize the memory tier.
    pub huge_partition_limit: u64,
    /// Crash-consistent spills: every LOCALFILE commit is fsynced and
    /// recorded in the store's durable manifest, so a killed supplier
    /// can be rebuilt from its surviving directory
    /// (`HybridStore::recover`) instead of losing its local tier.
    /// `false` keeps the volatile fast path (no syncs, no manifest).
    pub durable_spill: bool,
    /// Manifest records per fsync when `durable_spill` is on (>= 1).
    /// `1` forces every record down before its commit publishes; larger
    /// values batch the barriers — a crash may then lose the last
    /// unsynced records, which recovery treats as cleanly absent.
    pub manifest_sync_interval: u64,
    /// Event-loop threads the real-dataplane MOFSupplier runs; admitted
    /// connections are sharded across them round-robin. One reactor
    /// saturates loopback; more help only past several NICs' worth of
    /// concurrent reducers.
    pub reactor_threads: usize,
    /// Disk IO scheduler permits for staging/segment reads. Bounds how
    /// many reads hit the disk at once so a prefetch burst keeps its
    /// sequential head position. 0 disables arbitration for the class.
    pub io_read_permits: usize,
    /// Disk IO scheduler permits for hybrid-store spill appends. Keeps
    /// a spill burst from stealing the disk head from the prefetcher.
    /// 0 disables arbitration for the class.
    pub io_append_permits: usize,
    /// Address of the cluster control plane's supplier registry.
    /// `None` runs registry-less (static addressing, no replica
    /// failover) — the stock single-job deployment.
    pub registry_addr: Option<std::net::SocketAddr>,
    /// Spacing between a supplier's heartbeats into the registry.
    pub heartbeat_interval: SimTime,
    /// Copies of each segment written across the cluster (primary
    /// included). 1 disables replication.
    pub replication_factor: u32,
    /// Heartbeat intervals a supplier may miss before the registry
    /// marks it unhealthy and routes fetches to its replicas.
    pub unhealthy_after_missed: u32,
}

impl Default for JbsConfig {
    fn default() -> Self {
        JbsConfig {
            buffer_bytes: 128 << 10,
            datacache_bytes: 8 << 20,
            prefetch_batch: 8,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            round_robin_injection: true,
            group_by_mof: true,
            pipelined_prefetch: true,
            prefetch_budget_per_reducer: 256 << 20,
            notification_latency: SimTime::from_secs(3),
            fetch_retry_max: 4,
            fetch_backoff_base: SimTime::from_millis(10),
            fetch_backoff_max: SimTime::from_millis(500),
            fetch_io_timeout: SimTime::from_secs(5),
            checksum: true,
            max_inflight_per_peer: 256,
            breaker_threshold: 8,
            drain_timeout: SimTime::from_secs(5),
            hybrid_memory_budget: 64 << 20,
            memory_spill_high_watermark: 0.5,
            memory_spill_low_watermark: 0.2,
            huge_partition_limit: 16 << 20,
            durable_spill: false,
            manifest_sync_interval: 1,
            reactor_threads: 1,
            io_read_permits: 4,
            io_append_permits: 2,
            registry_addr: None,
            heartbeat_interval: SimTime::from_millis(500),
            replication_factor: 2,
            unhealthy_after_missed: 3,
        }
    }
}

impl JbsConfig {
    /// The default configuration with a different transport buffer size
    /// (the Fig. 11 sweep).
    pub fn with_buffer(buffer_bytes: u64) -> Self {
        JbsConfig {
            buffer_bytes,
            ..Self::default()
        }
    }

    /// Number of in-flight transport buffers the DataCache supports.
    pub fn pool_buffers(&self) -> usize {
        ((self.datacache_bytes / self.buffer_bytes).max(1)) as usize
    }

    /// Sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        if self.buffer_bytes == 0 {
            return Err("buffer size must be positive".into());
        }
        if self.datacache_bytes < self.buffer_bytes {
            return Err("DataCache smaller than one buffer".into());
        }
        if self.max_connections == 0 {
            return Err("connection cap must be positive".into());
        }
        if self.prefetch_batch == 0 {
            return Err("prefetch batch must be positive".into());
        }
        if self.fetch_backoff_base > self.fetch_backoff_max {
            return Err("fetch backoff base exceeds its max".into());
        }
        if self.fetch_io_timeout == SimTime::ZERO {
            return Err("fetch i/o timeout must be positive".into());
        }
        if self.max_inflight_per_peer == 0 {
            return Err("per-peer in-flight cap must be positive".into());
        }
        if self.drain_timeout == SimTime::ZERO {
            return Err("drain timeout must be positive".into());
        }
        if self.hybrid_memory_budget == 0 {
            return Err("hybrid memory budget must be positive".into());
        }
        if !(self.memory_spill_low_watermark > 0.0
            && self.memory_spill_low_watermark < self.memory_spill_high_watermark
            && self.memory_spill_high_watermark <= 1.0)
        {
            return Err("spill watermarks must satisfy 0 < low < high <= 1".into());
        }
        if self.huge_partition_limit == 0 {
            return Err("huge-partition limit must be positive".into());
        }
        if self.manifest_sync_interval == 0 {
            return Err("manifest sync interval must be at least 1".into());
        }
        if self.reactor_threads == 0 {
            return Err("reactor thread count must be positive".into());
        }
        if self.heartbeat_interval == SimTime::ZERO {
            return Err("heartbeat interval must be positive".into());
        }
        if self.replication_factor == 0 {
            return Err("replication factor must be at least 1".into());
        }
        if self.unhealthy_after_missed == 0 {
            return Err("unhealthy-after-missed must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = JbsConfig::default();
        assert_eq!(c.buffer_bytes, 128 << 10);
        assert_eq!(c.max_connections, 512);
        assert!(c.round_robin_injection && c.group_by_mof && c.pipelined_prefetch);
        assert!(c.checksum, "integrity on by default");
        assert_eq!(c.max_inflight_per_peer, 256);
        assert_eq!(c.breaker_threshold, 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn robustness_knob_validation() {
        let c = JbsConfig {
            max_inflight_per_peer: 0,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_err());
        let c = JbsConfig {
            drain_timeout: SimTime::ZERO,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_err());
        // Breaker threshold 0 is a valid "disabled" setting.
        let c = JbsConfig {
            breaker_threshold: 0,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn hybrid_knob_validation() {
        let c = JbsConfig::default();
        assert_eq!(c.hybrid_memory_budget, 64 << 20);
        assert_eq!(c.memory_spill_high_watermark, 0.5);
        assert_eq!(c.memory_spill_low_watermark, 0.2);
        assert_eq!(c.huge_partition_limit, 16 << 20);
        let c = JbsConfig {
            hybrid_memory_budget: 0,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_err());
        // Inverted watermarks are rejected.
        let c = JbsConfig {
            memory_spill_high_watermark: 0.1,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_err());
        let c = JbsConfig {
            memory_spill_high_watermark: 1.5,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_err());
        let c = JbsConfig {
            huge_partition_limit: 0,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn durability_knob_validation() {
        let c = JbsConfig::default();
        assert!(!c.durable_spill, "volatile fast path is the default");
        assert_eq!(c.manifest_sync_interval, 1);
        // Batched barriers are legal at any interval >= 1...
        let c = JbsConfig {
            durable_spill: true,
            manifest_sync_interval: 8,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_ok());
        // ...but an interval of 0 never is, durable or not.
        let c = JbsConfig {
            manifest_sync_interval: 0,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn reactor_knob_validation() {
        let c = JbsConfig::default();
        assert_eq!(c.reactor_threads, 1);
        assert_eq!(c.io_read_permits, 4);
        assert_eq!(c.io_append_permits, 2);
        let c = JbsConfig {
            reactor_threads: 0,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_err());
        // Zero permits means "unlimited class", a valid disable setting.
        let c = JbsConfig {
            io_read_permits: 0,
            io_append_permits: 0,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn control_plane_knob_validation() {
        let c = JbsConfig::default();
        assert_eq!(c.registry_addr, None, "registry-less by default");
        assert_eq!(c.heartbeat_interval, SimTime::from_millis(500));
        assert_eq!(c.replication_factor, 2);
        assert_eq!(c.unhealthy_after_missed, 3);
        let c = JbsConfig {
            heartbeat_interval: SimTime::ZERO,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_err());
        let c = JbsConfig {
            replication_factor: 0,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_err());
        let c = JbsConfig {
            unhealthy_after_missed: 0,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_err());
        // RF=1 is valid: replication disabled.
        let c = JbsConfig {
            replication_factor: 1,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn pool_buffer_math() {
        assert_eq!(JbsConfig::default().pool_buffers(), 64);
        assert_eq!(JbsConfig::with_buffer(512 << 10).pool_buffers(), 16);
        assert_eq!(JbsConfig::with_buffer(8 << 20).pool_buffers(), 1);
    }

    #[test]
    fn bigger_buffers_mean_fewer_in_flight() {
        // The Fig. 11 mechanism in one assert.
        let small = JbsConfig::with_buffer(8 << 10).pool_buffers();
        let large = JbsConfig::with_buffer(512 << 10).pool_buffers();
        assert!(small > large * 16);
    }

    #[test]
    fn validation() {
        let c = JbsConfig {
            buffer_bytes: 0,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_err());
        let c = JbsConfig {
            datacache_bytes: JbsConfig::default().buffer_bytes - 1,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_err());
        let c = JbsConfig {
            max_connections: 0,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_err());
        let c = JbsConfig {
            prefetch_batch: 0,
            ..JbsConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
